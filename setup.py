"""Setup shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which need ``bdist_wheel``) fail offline.
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the legacy
``develop`` path; all metadata lives in ``setup.cfg``.
"""

from setuptools import setup

setup()
