"""Setup shim.

All project metadata lives in ``pyproject.toml`` (PEP 621).  This file
exists only because the execution environment ships setuptools without
the ``wheel`` package, so PEP 660 editable installs (which need
``bdist_wheel``) fail offline; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``develop`` path.
"""

from setuptools import setup

setup()
