#!/usr/bin/env python3
"""The paper's §VI benchmark-class study: scientific vs. multimedia.

Reproduces the discussion around Fig 6: scientific applications (WATER-NS,
FMM, VOLREND) expose decay-induced misses through dependent access
patterns and pay large IPC penalties, while multimedia (mpeg2enc,
mpeg2dec, facerec) shrugs decay off — which is why the paper recommends
Selective Decay specifically for multimedia.

Prints per-benchmark energy/IPC for aggressive Decay (64K) and Selective
Decay (64K), then the per-class averages and the paper's recommendation
logic applied to the measured numbers.
"""

import argparse

from repro import CMPConfig, TechniqueConfig, simulate, get_workload
from repro.power import EnergyModel, energy_reduction
from repro.workloads.registry import MULTIMEDIA, SCIENTIFIC


def evaluate(workload_name: str, scale: float, mb: int) -> dict:
    """Baseline-relative metrics for decay64K and sel_decay64K."""
    wl = get_workload(workload_name, scale=scale)
    base_cfg = CMPConfig().with_total_l2_mb(mb)
    base = simulate(base_cfg, wl, warmup_fraction=0.17)
    base_e = EnergyModel(base_cfg).evaluate(base)
    out = {}
    decay_cycles = max(64, int(64_000 * scale))
    for name in ("decay", "selective_decay"):
        cfg = base_cfg.with_technique(
            TechniqueConfig(name=name, decay_cycles=decay_cycles))
        res = simulate(cfg, wl, warmup_fraction=0.17)
        e = EnergyModel(cfg).evaluate(res)
        out[name] = {
            "ipc_loss": 1 - res.ipc / base.ipc,
            "energy_red": energy_reduction(base_e, e),
        }
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.05)
    ap.add_argument("--mb", type=int, default=4)
    args = ap.parse_args()

    classes = [("scientific", SCIENTIFIC), ("multimedia", MULTIMEDIA)]
    per_class = {}
    print(f"{'benchmark':12s} {'decay64K':>22s} {'sel_decay64K':>22s}")
    print(f"{'':12s} {'E-red':>10s} {'IPC-loss':>11s} "
          f"{'E-red':>10s} {'IPC-loss':>11s}")
    print("-" * 60)
    for cls_name, names in classes:
        rows = []
        for name in names:
            m = evaluate(name, args.scale, args.mb)
            rows.append(m)
            print(f"{name:12s} {m['decay']['energy_red']:10.1%} "
                  f"{m['decay']['ipc_loss']:11.1%} "
                  f"{m['selective_decay']['energy_red']:10.1%} "
                  f"{m['selective_decay']['ipc_loss']:11.1%}")
        per_class[cls_name] = {
            tech: {
                k: sum(r[tech][k] for r in rows) / len(rows)
                for k in ("ipc_loss", "energy_red")
            }
            for tech in ("decay", "selective_decay")
        }
        print("-" * 60)

    print("\nper-class averages:")
    for cls_name, avg in per_class.items():
        print(f"  {cls_name:11s} decay64K: {avg['decay']['energy_red']:.1%} "
              f"energy at {avg['decay']['ipc_loss']:.1%} IPC loss; "
              f"SD64K: {avg['selective_decay']['energy_red']:.1%} at "
              f"{avg['selective_decay']['ipc_loss']:.1%}")

    sci = per_class["scientific"]
    mm = per_class["multimedia"]
    print("\npaper's conclusions, applied to measured numbers:")
    print(f"  scientific suffers more from decay than multimedia: "
          f"{sci['decay']['ipc_loss']:.1%} vs {mm['decay']['ipc_loss']:.1%} "
          f"-> {'holds' if sci['decay']['ipc_loss'] > mm['decay']['ipc_loss'] else 'FAILS'}")
    gap = mm["decay"]["energy_red"] - mm["selective_decay"]["energy_red"]
    print(f"  for multimedia, SD costs only {gap:.1%} energy vs Decay while "
          f"cutting IPC loss to {mm['selective_decay']['ipc_loss']:.1%} "
          f"-> {'holds' if gap < 0.08 else 'FAILS'}")


if __name__ == "__main__":
    main()
