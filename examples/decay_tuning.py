#!/usr/bin/env python3
"""Decay-time tuning study: where is the Energy-Delay sweet spot?

The paper observes that "larger decay time might be a better choice from
the Energy-Delay point of view" (§VI).  This example sweeps decay times
from 16K to 1M cycles on one benchmark and reports the best Energy-Delay
product per technique — expressed entirely through the declarative spec
API: every (technique × decay-time) combination is a custom technique
table in one :class:`~repro.harness.spec.ExperimentSpec`, executed by a
stock cached :class:`~repro.harness.SweepRunner`, with EDP derived from
the per-point metrics.  The spec can be saved with ``--save`` and
replayed verbatim via ``repro-cmp run``.
"""

import argparse

from repro.harness import ResultQuery, SweepRunner, save_spec
from repro.harness.spec import ExperimentSpec
from repro.sim.config import TechniqueConfig

NOMINAL_DECAYS = (16_000, 32_000, 64_000, 128_000, 256_000, 512_000,
                  1_024_000)

TECH_NAMES = ("decay", "selective_decay")


def build_spec(workload: str, total_mb: int, scale: float) -> ExperimentSpec:
    """One spec spanning both techniques × all decay times (+ baseline)."""
    custom = {}
    labels = []
    for name in TECH_NAMES:
        for nominal in NOMINAL_DECAYS:
            label = f"{name}@{nominal // 1000}K"
            labels.append(label)
            custom[label] = TechniqueConfig(
                name=name,
                # custom technique cycles are literal, so apply the
                # harness's time-dilation explicitly to keep the study
                # aligned with the scaled workloads
                decay_cycles=max(64, int(nominal * scale)),
            )
    return ExperimentSpec(
        name=f"decay_tuning_{workload}_{total_mb}mb",
        description=(
            "Decay-time sensitivity sweep for the Energy-Delay study "
            "(paper SVI): both decay techniques from 16K to 1M cycles."
        ),
        workloads=(workload,),
        sizes_mb=(total_mb,),
        techniques=("baseline", *labels),
        custom_techniques=custom,
        run={"scale": scale},
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="volrend")
    ap.add_argument("--mb", type=int, default=4)
    ap.add_argument("--scale", type=float, default=0.05)
    ap.add_argument("--save", type=str, default=None, metavar="PATH",
                    help="write the generated spec file (toml/json)")
    args = ap.parse_args()

    spec = build_spec(args.workload, args.mb, args.scale)
    if args.save:
        print(f"spec written to {save_spec(spec, args.save)}\n")

    runner = SweepRunner(scale=args.scale, cache_dir=None, verbose=False)
    metrics = runner.run_spec(spec)

    print(f"{args.workload}, {args.mb}MB total, baseline EDP normalized "
          f"to 1.0\n")
    print(f"{'decay':>8s} {'technique':16s} {'energy':>8s} {'delay':>8s} "
          f"{'EDP':>8s}")
    print("-" * 55)

    best = {}
    for name in TECH_NAMES:
        for nominal in NOMINAL_DECAYS:
            label = f"{name}@{nominal // 1000}K"
            # the same ResultQuery selection the CLI/HTTP layers execute
            (m,) = ResultQuery(techniques=(label,)).apply(metrics)
            # energy ratio and delay ratio from the relative metrics:
            # instructions are fixed per workload, so the cycle (delay)
            # ratio is the inverse IPC ratio
            energy = 1.0 - m.energy_reduction
            delay = 1.0 / (1.0 - m.ipc_loss)
            edp = energy * delay
            print(f"{nominal // 1000:>6d}K {name:16s} {energy:8.3f} "
                  f"{delay:8.3f} {edp:8.3f}")
            if name not in best or edp < best[name][1]:
                best[name] = (nominal, edp)
        print("-" * 55)

    for name, (nominal, edp) in best.items():
        print(f"best EDP for {name}: decay={nominal // 1000}K "
              f"(EDP {edp:.3f} of baseline)")


if __name__ == "__main__":
    main()
