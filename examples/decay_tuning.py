#!/usr/bin/env python3
"""Decay-time tuning study: where is the Energy-Delay sweet spot?

The paper observes that "larger decay time might be a better choice from
the Energy-Delay point of view" (§VI).  This example sweeps decay times
from 16K to 1M cycles on one benchmark, computes an Energy-Delay product
for each point, and reports the best setting per technique — the kind of
downstream design-space exploration the library is built for.
"""

import argparse

from repro import CMPConfig, TechniqueConfig, simulate, get_workload
from repro.power import EnergyModel

NOMINAL_DECAYS = (16_000, 32_000, 64_000, 128_000, 256_000, 512_000,
                  1_024_000)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="volrend")
    ap.add_argument("--mb", type=int, default=4)
    ap.add_argument("--scale", type=float, default=0.05)
    args = ap.parse_args()

    wl = get_workload(args.workload, scale=args.scale)
    base_cfg = CMPConfig().with_total_l2_mb(args.mb)
    base = simulate(base_cfg, wl, warmup_fraction=0.17)
    base_e = EnergyModel(base_cfg).evaluate(base)
    base_edp = base_e.total * base.total_cycles

    print(f"{args.workload}, {args.mb}MB total, baseline EDP normalized "
          f"to 1.0\n")
    print(f"{'decay':>8s} {'technique':16s} {'energy':>8s} {'delay':>8s} "
          f"{'EDP':>8s}")
    print("-" * 55)

    best = {}
    for name in ("decay", "selective_decay"):
        for nominal in NOMINAL_DECAYS:
            tech = TechniqueConfig(
                name=name,
                decay_cycles=max(64, int(nominal * args.scale)))
            cfg = base_cfg.with_technique(tech)
            res = simulate(cfg, wl, warmup_fraction=0.17)
            e = EnergyModel(cfg).evaluate(res)
            energy = e.total / base_e.total
            delay = res.total_cycles / base.total_cycles
            edp = energy * delay
            print(f"{nominal // 1000:>6d}K {name:16s} {energy:8.3f} "
                  f"{delay:8.3f} {edp:8.3f}")
            key = (name,)
            if key not in best or edp < best[key][1]:
                best[key] = (nominal, edp)
        print("-" * 55)

    for (name,), (nominal, edp) in best.items():
        print(f"best EDP for {name}: decay={nominal // 1000}K "
              f"(EDP {edp:.3f} of baseline)")


if __name__ == "__main__":
    main()
