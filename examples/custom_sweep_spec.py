#!/usr/bin/env python3
"""A non-paper scenario as a declarative experiment spec.

The paper evaluates a 4-core CMP with decay times of 512K/128K/64K cycles
and ideal per-line timers.  This example authors a scenario the paper
never ran — an **8-core** CMP, **off-grid** decay times (24K and 96K
cycles, literal, between the paper's grid points), and the Kaxiras
**hierarchical counter** hardware instead of ideal timers — purely as an
:class:`~repro.harness.spec.ExperimentSpec`, with zero new harness code:

1. build the spec programmatically (axes + custom technique tables),
2. round-trip it through a TOML file (what you would commit / ship to
   batch workers),
3. execute it with a stock runner and select results from the flat
   metric list.

Run with ``PYTHONPATH=src python examples/custom_sweep_spec.py``.
"""

import argparse
import os
import tempfile

from repro.harness import ResultQuery, SweepRunner, load_spec, save_spec
from repro.harness.spec import ExperimentSpec
from repro.sim.config import COUNTER_HIERARCHICAL, TechniqueConfig


def build_spec() -> ExperimentSpec:
    """The scenario: 8 cores, off-grid decay, hierarchical counters."""
    def hier_decay(name: str, cycles: int) -> TechniqueConfig:
        return TechniqueConfig(
            name=name,
            decay_cycles=cycles,
            counter_mode=COUNTER_HIERARCHICAL,
            counter_bits=2,
        )

    return ExperimentSpec(
        name="cmp8_hier_offgrid",
        description=(
            "8-core CMP with off-grid decay times (24K/96K cycles, "
            "literal) on hierarchical 2-bit counters - a sensitivity "
            "scenario outside the paper's 6x4x8 matrix."
        ),
        workloads=("uniform", "streaming", "pingpong"),
        sizes_mb=(2, 8),
        techniques=("baseline", "decay24K_hier", "decay96K_hier"),
        custom_techniques={
            # literal cycles: spec-local technique tables are never
            # scale-multiplied, unlike the paper's nominal labels
            "decay24K_hier": hier_decay("decay", 24_000),
            "decay96K_hier": hier_decay("decay", 96_000),
        },
        # every point of this scenario runs on 8 cores; scale/seed stay
        # replayable from the command line
        points=(),
        run={"n_cores": 8, "scale": 0.05},
        # streaming never fits in 2MB/8 cores; skip the noise row
        skip=({"workload": "streaming", "size_mb": 2},),
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=None,
                    help="override the spec's [run] scale")
    ap.add_argument("--keep", type=str, default=None, metavar="PATH",
                    help="also save the spec file here (e.g. my.toml)")
    args = ap.parse_args()

    spec = build_spec()

    # --- the file is the API: save, reload, prove nothing changed -----
    with tempfile.TemporaryDirectory() as tmp:
        path = args.keep or os.path.join(tmp, "cmp8_hier_offgrid.toml")
        save_spec(spec, path)
        reloaded = load_spec(path)
        assert reloaded == spec, "TOML round-trip must be lossless"
        if args.keep:
            print(f"spec written to {path}\n")

    ctx = spec.context(scale=args.scale)
    runner = SweepRunner(
        scale=ctx["scale"],
        n_cores=int(ctx["n_cores"]),
        cache_dir=None,
        verbose=False,
    )
    points = runner.expand_spec(spec)
    print(f"{spec.name}: {len(points)} points "
          f"(n_cores={ctx['n_cores']}, scale={ctx['scale']})\n")

    metrics = runner.run_spec(spec)
    print(f"{'point':32s} {'energy_red':>10s} {'ipc_loss':>9s} "
          f"{'occupancy':>10s}")
    print("-" * 64)
    for m in metrics:
        name = f"{m.workload} {m.total_mb}MB {m.technique}"
        print(f"{name:32s} {m.energy_reduction:10.1%} {m.ipc_loss:9.1%} "
              f"{m.occupancy:10.1%}")

    # selection is a ResultQuery - the same object `repro-cmp query`
    # and the HTTP /v1/query endpoint execute
    best = ResultQuery(sort=("-energy_reduction",), limit=2).apply(metrics)
    print("\nbiggest energy savers:")
    for m in best:
        print(f"  {m.workload} {m.total_mb}MB {m.technique}: "
              f"{m.energy_reduction:.1%} (ipc loss {m.ipc_loss:.1%})")

    print("\nOff-grid reading: the 24K hierarchical config decays harder "
          "than 96K (lower\noccupancy everywhere).  Where the working set "
          "is cold or shared (streaming,\npingpong) that buys large energy "
          "savings; where it stays hot (uniform) the\ndecay-induced misses "
          "swamp the leakage win - the trade-off behind the paper's\n"
          "observation that larger decay times win on Energy-Delay.")


if __name__ == "__main__":
    main()
