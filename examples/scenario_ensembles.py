#!/usr/bin/env python3
"""Scenario families + seed ensembles: CIs around the headline numbers.

The paper reports single numbers (protocol ~13% energy at ~0% IPC loss
at 4 MB); our synthetic workloads draw their access streams from seeded
RNGs, so each of those numbers really is one sample from a seed
distribution.  This example shows the scenario subsystem end to end:

1. mint a spec from a registered scenario family (a multi-program mix
   over the ``mix:`` workload layer),
2. wrap it in an :class:`~repro.scenarios.ensemble.EnsembleSpec` — N
   seed replicas, each an ordinary point list any backend can run,
3. aggregate the per-replica metrics into mean ± 95% CI rows and render
   them with :func:`~repro.harness.figures.ensemble_table`.

Run with ``PYTHONPATH=src python examples/scenario_ensembles.py``.
"""

import argparse

from repro.harness import SweepRunner
from repro.harness.figures import ensemble_table
from repro.scenarios import EnsembleSpec, build_scenario, run_ensemble


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--replicas", type=int, default=3,
                    help="seed replicas per point (default 3)")
    ap.add_argument("--scale", type=float, default=0.05,
                    help="workload time-dilation (default 0.05)")
    args = ap.parse_args()

    # one (scientific, multimedia) co-schedule, three techniques
    spec = build_scenario(
        "multiprogram_mix",
        pairs=[("water_ns", "mpeg2dec")],
        sizes_mb=(1,),
        techniques=("baseline", "protocol", "decay64K"),
    )
    ensemble = EnsembleSpec(spec=spec, replicas=args.replicas)

    runner = SweepRunner(scale=args.scale, cache_dir=None, verbose=False)
    seeds = ensemble.replica_seeds(runner.seed)
    print(f"{spec.name}: {len(spec.expand())} points x "
          f"{args.replicas} replicas (seeds {seeds})\n")

    result = run_ensemble(runner, ensemble)
    table = ensemble_table(
        spec.name,
        result.aggregated,
        title=f"{args.replicas}-replica ensemble, mean ± 95% CI",
    )
    print(table.render())

    print("\nReading: the ± columns are Student-t 95% confidence "
          "intervals over the seed\nreplicas — the spread the paper's "
          "single-run matrix cannot show.  A technique\nwhose CI "
          "straddles another's mean is not meaningfully different at "
          "this scale;\nmore replicas (or --scale closer to 1.0) "
          "tighten the intervals.")


if __name__ == "__main__":
    main()
