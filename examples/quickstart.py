#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under all four techniques.

Runs the WATER-NS model on a 4-core CMP with 4 MB of total private L2
(the paper's headline configuration) and prints the paper's headline
metrics — L2 occupation rate, miss rate, IPC loss and system energy
reduction — for the unoptimized baseline and the three techniques.

Takes about a minute.  Try different workloads/sizes::

    python examples/quickstart.py --workload mpeg2dec --mb 8 --scale 0.05
"""

import argparse
import time

from repro import CMPConfig, TechniqueConfig, simulate, get_workload
from repro.power import EnergyModel, energy_reduction


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="water_ns")
    ap.add_argument("--mb", type=int, default=4,
                    help="total L2 capacity in MB (paper: 1/2/4/8)")
    ap.add_argument("--scale", type=float, default=0.05,
                    help="workload time-dilation (1.0 = paper-equivalent)")
    args = ap.parse_args()

    print(f"workload={args.workload}  total L2={args.mb}MB  "
          f"scale={args.scale}\n")

    workload = get_workload(args.workload, scale=args.scale)
    techniques = [
        TechniqueConfig(name="baseline"),
        TechniqueConfig(name="protocol"),
        TechniqueConfig(name="decay",
                        decay_cycles=max(64, int(64_000 * args.scale))),
        TechniqueConfig(name="selective_decay",
                        decay_cycles=max(64, int(64_000 * args.scale))),
    ]

    base_result = base_energy = None
    header = (f"{'technique':18s} {'occupancy':>9s} {'L2 miss':>8s} "
              f"{'IPC loss':>9s} {'energy red.':>11s} {'peak T':>7s}")
    print(header)
    print("-" * len(header))
    for tech in techniques:
        cfg = CMPConfig().with_total_l2_mb(args.mb).with_technique(tech)
        t0 = time.time()
        result = simulate(cfg, workload, warmup_fraction=0.17)
        energy = EnergyModel(cfg).evaluate(result)
        if base_result is None:
            base_result, base_energy = result, energy
        ipc_loss = 1 - result.ipc / base_result.ipc
        red = energy_reduction(base_energy, energy)
        peak = max(energy.temperatures.values()) - 273.15
        print(f"{tech.label():18s} {result.occupancy:9.1%} "
              f"{result.l2_miss_rate:8.2%} {ipc_loss:9.1%} {red:11.1%} "
              f"{peak:6.1f}C   [{time.time() - t0:.1f}s]")

    print("\npaper (4MB, averaged over 6 benchmarks):")
    print("  protocol: 13% energy reduction, 0% IPC loss")
    print("  decay:    30% energy reduction, 8% IPC loss")
    print("  sel_decay: 21% energy reduction, 2% IPC loss")


if __name__ == "__main__":
    main()
