#!/usr/bin/env python3
"""Extending the library: define and register a custom workload.

Builds a synthetic "in-memory database" workload from the pattern
components — a hot index, point lookups with mid-range reuse, a scan
stream and a shared lock table — registers it, and compares the three
leakage techniques on it.  This is the path a downstream user takes to
evaluate the paper's techniques on their own access patterns.
"""

import argparse
from typing import List

from repro import CMPConfig, TechniqueConfig, simulate
from repro.workloads import (
    AddressSpace,
    ColdStream,
    HotSet,
    PhaseSpec,
    TrailingRevisit,
    lag_accesses,
    phased_workload,
    register_workload,
)
from repro.workloads.scaling import accesses_per_core, decay_unit


def build_memdb(n_cores: int = 4, scale: float = 1.0, seed: int = 1,
                line_bytes: int = 64):
    """An OLTP-ish mixture: B-tree index + scans + lock table."""
    total = accesses_per_core(scale)
    d_unit = decay_unit(scale)
    mean_gap = 9.0

    space = AddressSpace()
    locks = space.alloc_kb("lock-table", 16, shared=True)
    heaps = [space.alloc_kb(f"heap{c}", 512) for c in range(n_cores)]

    def phase_factory(cid: int) -> List[PhaseSpec]:
        s = seed * 7717 + cid * 89
        index = HotSet(heaps[cid], line_bytes, s + 1, hot_lines=24,
                       write_frac=0.25)
        scan = ColdStream(heaps[cid], line_bytes, s + 2, write_frac=0.1)
        # point lookups re-touch rows ~2 decay units after the scan
        lookups = TrailingRevisit(
            scan, s + 3,
            lag_cold_steps=max(1, int(lag_accesses(2.0 * d_unit, mean_gap)
                                      * 0.03)),
            write_frac=0.3, fallback=index)
        lock = HotSet(locks, line_bytes, s + 4, write_frac=0.5)
        spec = PhaseSpec(
            components=[index, scan, lookups, lock],
            weights=[0.72, 0.03, 0.15, 0.10],
            n_accesses=total // 4,
            mean_gap=mean_gap,
        )
        return [spec] * 4

    return phased_workload(
        name="memdb", suite="custom", kind="synthetic",
        phase_factory=phase_factory, n_cores=n_cores,
        accesses_per_core=total,
        footprint_bytes=heaps[0].size + locks.size,
        shared_bytes=locks.size, seed=seed,
        description="OLTP-ish: hot index, scans, lagged point lookups",
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.05)
    ap.add_argument("--mb", type=int, default=4)
    args = ap.parse_args()

    register_workload("memdb", build_memdb)
    wl = build_memdb(scale=args.scale)
    print(f"registered custom workload: {wl.meta.description}")
    print(f"footprint: {wl.meta.footprint_bytes // 1024} KB/core\n")

    base = None
    for tech in [TechniqueConfig(name="baseline"),
                 TechniqueConfig(name="protocol"),
                 TechniqueConfig(
                     name="decay",
                     decay_cycles=max(64, int(128_000 * args.scale))),
                 TechniqueConfig(
                     name="selective_decay",
                     decay_cycles=max(64, int(128_000 * args.scale)))]:
        cfg = CMPConfig().with_total_l2_mb(args.mb).with_technique(tech)
        res = simulate(cfg, wl, warmup_fraction=0.1)
        if base is None:
            base = res
        print(f"{tech.label():16s} occupancy={res.occupancy:6.1%} "
              f"miss={res.l2_miss_rate:6.2%} "
              f"IPC loss={1 - res.ipc / base.ipc:6.1%}")


if __name__ == "__main__":
    main()
