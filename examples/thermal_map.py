#!/usr/bin/env python3
"""Thermal study: per-block temperatures and the leakage-temperature loop.

Demonstrates the HotSpot-style side of the pipeline:

1. simulates one benchmark with activity sampling enabled;
2. prints the steady-state fixpoint temperatures per floorplan block for
   baseline vs. Decay (gating the L2 cools it, which lowers leakage
   further — the positive feedback the fixpoint captures);
3. renders an ASCII transient heat trace of the hottest core and its L2.
"""

import argparse
from dataclasses import replace

from repro import CMPConfig, TechniqueConfig, simulate, get_workload
from repro.power import EnergyModel


def spark(values, width=60) -> str:
    """Cheap ASCII sparkline."""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    pts = values[::step][:width]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))]
                   for v in pts)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="mpeg2enc")
    ap.add_argument("--mb", type=int, default=8)
    ap.add_argument("--scale", type=float, default=0.05)
    args = ap.parse_args()

    wl = get_workload(args.workload, scale=args.scale)
    sample_interval = 20_000

    results = {}
    for name in ("baseline", "decay"):
        cfg = CMPConfig(sample_interval=sample_interval) \
            .with_total_l2_mb(args.mb) \
            .with_technique(TechniqueConfig(
                name=name,
                decay_cycles=max(64, int(64_000 * args.scale))))
        res = simulate(cfg, wl, warmup_fraction=0.17)
        model = EnergyModel(cfg)
        bd = model.evaluate(res)
        results[name] = (cfg, res, model, bd)

    print(f"{args.workload}, {args.mb}MB total L2\n")
    print("steady-state fixpoint temperatures (C):")
    blocks = sorted(results["baseline"][3].temperatures)
    print(f"{'block':8s} {'baseline':>9s} {'decay':>9s} {'delta':>7s}")
    for b in blocks:
        tb = results["baseline"][3].temperatures[b] - 273.15
        td = results["decay"][3].temperatures[b] - 273.15
        print(f"{b:8s} {tb:9.1f} {td:9.1f} {td - tb:7.1f}")

    base_bd = results["baseline"][3]
    dec_bd = results["decay"][3]
    print(f"\nL2 leakage: baseline {base_bd.l2_leakage * 1e3:.2f} mJ "
          f"({base_bd.l2_leakage_share:.1%} of system) -> decay "
          f"{dec_bd.l2_leakage * 1e3:.2f} mJ "
          f"({dec_bd.l2_leakage_share:.1%})")

    cfg, res, model, _ = results["baseline"]
    trace = model.transient_temperatures(res)
    core0 = [t["core0"] - 273.15 for t in trace]
    l2_0 = [t["l2_0"] - 273.15 for t in trace]
    print(f"\ntransient warm-up over {len(trace)} intervals of "
          f"{sample_interval} cycles (baseline):")
    print(f"  core0 [{min(core0):5.1f}C..{max(core0):5.1f}C] "
          f"{spark(core0)}")
    print(f"  l2_0  [{min(l2_0):5.1f}C..{max(l2_0):5.1f}C] "
          f"{spark(l2_0)}")


if __name__ == "__main__":
    main()
