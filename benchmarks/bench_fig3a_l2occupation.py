"""Fig 3(a): L2 occupation rate — techniques x total cache size.

Paper reference: protocol 87->50% (1->8MB), decay 10->1%, sel_decay 50->18%.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig3a


def test_fig3a(benchmark, runner):
    """Regenerate Fig 3a over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig3a(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    # shape checks: decay gates most, protocol least aggressive
    last = table.columns[-1]
    col = table.columns.index(last)
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    assert val("decay64K") < val("sel_decay64K") < val("protocol")
    assert val("baseline") == 100.0
