"""Fig 5(b): IPC loss — techniques x total cache size.

Paper reference: @4MB: protocol 0%, decay 8%, sel_decay 2%.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig5b


def test_fig5b(benchmark, runner):
    """Regenerate Fig 5b over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig5b(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    col = len(table.columns) - 1
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    assert abs(val("protocol")) < 1e-6          # paper: 0%
    assert val("decay64K") > val("sel_decay64K")  # SD is the performance fix
