"""Ablation A3: the paper's §VI Selective-Decay trade-off claim.

"If comparing Decay 512K-decay time (less aggressive), and Selective Decay
64K-decay time (most aggressive), Selective Decay achieves 75% lower IPC
penalty than decay, while featuring 25% less energy saving (see 4MB-L2)."

This bench reproduces exactly that comparison pair.
"""

import pytest
from conftest import BENCH_SCALE, BENCHMARKS, show

from repro import CMPConfig, TechniqueConfig, simulate
from repro.harness.figures import FigureTable
from repro.power.energy import EnergyModel, energy_reduction
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for wname in BENCHMARKS:
        wl = get_workload(wname, scale=BENCH_SCALE)
        base_cfg = CMPConfig().with_total_l2_mb(4)
        base = simulate(base_cfg, wl, warmup_fraction=0.17)
        base_e = EnergyModel(base_cfg).evaluate(base)
        point = {}
        for label, tech in [
            ("decay512K", TechniqueConfig(
                name="decay",
                decay_cycles=max(64, int(512_000 * BENCH_SCALE)))),
            ("sel_decay64K", TechniqueConfig(
                name="selective_decay",
                decay_cycles=max(64, int(64_000 * BENCH_SCALE)))),
        ]:
            cfg = base_cfg.with_technique(tech)
            res = simulate(cfg, wl, warmup_fraction=0.17)
            e = EnergyModel(cfg).evaluate(res)
            point[label] = (1 - res.ipc / base.ipc,
                            energy_reduction(base_e, e))
        out[wname] = point
    return out


def test_sd64k_vs_decay512k(benchmark, comparison):
    """SD-64K must cut the IPC penalty while giving up some energy."""

    def render():
        t = FigureTable(
            "ablationA3",
            "Decay 512K vs Selective Decay 64K (paper SVI claim, 4MB)",
            list(comparison))
        for row, idx in (("decay512K ipc", 0), ("sd64K ipc", 0),
                         ("decay512K energy", 1), ("sd64K energy", 1)):
            label = row.split()[0]
            key = "decay512K" if label == "decay512K" else "sel_decay64K"
            t.add_row(row, [f"{comparison[w][key][idx] * 100:.1f}%"
                            for w in comparison])
        return t

    table = benchmark(render)
    show(table)

    avg_ipc = {
        k: sum(comparison[w][k][0] for w in comparison) / len(comparison)
        for k in ("decay512K", "sel_decay64K")
    }
    avg_red = {
        k: sum(comparison[w][k][1] for w in comparison) / len(comparison)
        for k in ("decay512K", "sel_decay64K")
    }
    # SD-64K has the lower IPC penalty ...
    assert avg_ipc["sel_decay64K"] < avg_ipc["decay512K"]
    # ... and gives up part of the energy saving.
    assert avg_red["sel_decay64K"] < avg_red["decay512K"]
