"""Fig 4(b): AMAT increase — techniques x total cache size.

Paper reference: decay-based ~10% avg; SD ~10% better than Decay.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig4b


def test_fig4b(benchmark, runner):
    """Regenerate Fig 4b over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig4b(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    col = len(table.columns) - 1
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    assert abs(val("protocol")) < 0.5
    assert val("decay64K") >= val("sel_decay64K") - 1e-6
