"""Fig 3(b): L2 miss rate — techniques x total cache size.

Paper reference: baseline/protocol ~0.5%, sel_decay ~1.5%, decay ~2%, flat in size.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig3b


def test_fig3b(benchmark, runner):
    """Regenerate Fig 3b over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig3b(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    col = len(table.columns) - 1
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    # more aggressive decay -> more misses; protocol == baseline
    assert val("decay64K") >= val("sel_decay64K") >= val("protocol") - 1e-6
    assert abs(val("protocol") - val("baseline")) < 0.2
