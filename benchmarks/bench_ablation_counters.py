"""Ablation A2: ideal decay timers vs. the hierarchical-counter hardware.

The paper assumes Kaxiras's hierarchical counters (global tick + 2-bit
per-line counters); their quantization gates lines up to 25 % *earlier*
than the nominal decay time.  This ablation measures how much that
hardware simplification costs/saves relative to ideal per-line timers.
"""

import pytest
from conftest import BENCH_SCALE, show

from repro import CMPConfig, TechniqueConfig, simulate
from repro.harness.figures import FigureTable
from repro.workloads.registry import get_workload

WORKLOAD = "water_ns"
BITS = (1, 2, 4)


@pytest.fixture(scope="module")
def results():
    wl = get_workload(WORKLOAD, scale=BENCH_SCALE)
    decay = max(64, int(64_000 * BENCH_SCALE))
    out = {}
    base_cfg = CMPConfig().with_total_l2_mb(4)
    base = simulate(base_cfg, wl, warmup_fraction=0.17)
    out["baseline_ipc"] = base.ipc
    cfg = base_cfg.with_technique(
        TechniqueConfig(name="decay", decay_cycles=decay))
    res = simulate(cfg, wl, warmup_fraction=0.17)
    out["ideal"] = (res.occupancy, 1 - res.ipc / base.ipc)
    for bits in BITS:
        cfg = base_cfg.with_technique(TechniqueConfig(
            name="decay", decay_cycles=decay,
            counter_mode="hierarchical", counter_bits=bits))
        res = simulate(cfg, wl, warmup_fraction=0.17)
        out[f"hier{bits}b"] = (res.occupancy, 1 - res.ipc / base.ipc)
    return out


def test_ablation_counter_architecture(benchmark, results):
    """Quantization gates earlier: occupancy <= ideal, IPC loss >= ideal."""

    def render():
        labels = ["ideal"] + [f"hier{b}b" for b in BITS]
        t = FigureTable("ablationA2",
                        f"decay counter architecture ({WORKLOAD}, 4MB, 64K)",
                        labels)
        t.add_row("occupancy",
                  [f"{results[k][0] * 100:.2f}%" for k in labels])
        t.add_row("ipc_loss",
                  [f"{results[k][1] * 100:.2f}%" for k in labels])
        return t

    table = benchmark(render)
    show(table)

    # Quantized timers never gate later than ideal -> occupancy at most
    # ideal's (small tolerance for run-length interactions).
    for bits in BITS:
        assert results[f"hier{bits}b"][0] <= results["ideal"][0] + 0.01
    # More counter bits converge toward the ideal timer.
    assert abs(results["hier4b"][0] - results["ideal"][0]) <= \
        abs(results["hier1b"][0] - results["ideal"][0]) + 1e-6
