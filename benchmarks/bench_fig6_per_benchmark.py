"""Fig 6(a)/(b): per-benchmark energy reduction and IPC loss at 4 MB.

Paper signatures checked here:

* 6(a): Protocol is nearly as good as Decay for mpeg2dec; Selective Decay
  trails plain Decay for mpeg2enc and FMM.
* 6(b): scientific benchmarks lose more IPC than multimedia; larger decay
  times visibly help VOLREND and mpeg2dec.
"""

import pytest
from conftest import BENCHMARKS, FIG6_MB, FULL, show

from repro.harness.figures import fig6a, fig6b


def _val(table, row, bench):
    col = table.columns.index(bench)
    return float(table.cells[row][col].rstrip("%"))


def test_fig6a_energy_per_benchmark(benchmark, runner):
    """Regenerate Fig 6(a)."""
    table = benchmark.pedantic(
        lambda: fig6a(runner, total_mb=FIG6_MB, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    if "mpeg2dec" in table.columns:
        # protocol within reach of decay for mpeg2dec (small footprint)
        assert _val(table, "protocol", "mpeg2dec") > 0
    if FULL and "mpeg2enc" in table.columns:
        assert _val(table, "sel_decay64K", "mpeg2enc") < \
            _val(table, "decay64K", "mpeg2enc")


def test_fig6b_ipc_per_benchmark(benchmark, runner):
    """Regenerate Fig 6(b)."""
    table = benchmark.pedantic(
        lambda: fig6b(runner, total_mb=FIG6_MB, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    for bench in table.columns:
        assert abs(_val(table, "protocol", bench)) < 1e-6
    if "water_ns" in table.columns and "facerec" in table.columns:
        # scientific hurt more than multimedia under aggressive decay
        assert _val(table, "decay64K", "water_ns") > \
            _val(table, "decay64K", "facerec")
    if "mpeg2dec" in table.columns:
        # larger decay visibly helps mpeg2dec
        assert _val(table, "decay512K", "mpeg2dec") < \
            _val(table, "decay64K", "mpeg2dec")
