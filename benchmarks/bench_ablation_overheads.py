"""Ablation A4: sensitivity to the Gated-Vdd overhead assumptions.

The paper charges +5 % leakage area (Powell's Gated-Vdd) and +1 cycle of
access latency on decay-enabled caches.  This ablation varies both to show
the conclusions are robust to the exact overhead numbers.
"""

from dataclasses import replace

import pytest
from conftest import BENCH_SCALE, show

from repro import CMPConfig, TechniqueConfig, simulate
from repro.harness.figures import FigureTable
from repro.power.energy import EnergyModel, energy_reduction
from repro.power.leakage import LeakageModel
from repro.workloads.registry import get_workload

WORKLOAD = "mpeg2dec"


@pytest.fixture(scope="module")
def base_pair():
    wl = get_workload(WORKLOAD, scale=BENCH_SCALE)
    base_cfg = CMPConfig().with_total_l2_mb(4)
    base = simulate(base_cfg, wl, warmup_fraction=0.17)
    return wl, base_cfg, base


def test_area_overhead_sensitivity(benchmark, base_pair):
    """Energy reduction vs. the Gated-Vdd area overhead (0/5/10 %)."""
    wl, base_cfg, base = base_pair
    tech = TechniqueConfig(name="decay",
                           decay_cycles=max(64, int(64_000 * BENCH_SCALE)))
    cfg = base_cfg.with_technique(tech)
    res = simulate(cfg, wl, warmup_fraction=0.17)

    def run():
        out = {}
        for overhead in (1.00, 1.05, 1.10):
            lk = LeakageModel(gated_vdd_area_overhead=overhead)
            base_e = EnergyModel(base_cfg, leakage=lk).evaluate(base)
            e = EnergyModel(cfg, leakage=lk).evaluate(res)
            out[overhead] = energy_reduction(base_e, e)
        return out

    reds = benchmark(run)
    t = FigureTable("ablationA4a",
                    f"Gated-Vdd area overhead ({WORKLOAD}, decay64K, 4MB)",
                    [f"{int((o - 1) * 100)}%" for o in reds])
    t.add_row("energy_red", [f"{v * 100:.1f}%" for v in reds.values()])
    show(t)
    vals = list(reds.values())
    # more overhead on the powered lines -> slightly less saving, but the
    # technique keeps most of its benefit
    assert vals[0] >= vals[1] >= vals[2]
    assert vals[2] > 0.5 * vals[0]


def test_wake_penalty_sensitivity(benchmark, base_pair):
    """IPC loss vs. the decay-cache access penalty (0/1/2 cycles)."""
    wl, base_cfg, base = base_pair
    tech = TechniqueConfig(name="decay",
                           decay_cycles=max(64, int(64_000 * BENCH_SCALE)))

    def run():
        out = {}
        for penalty in (0, 1, 2):
            cfg = replace(base_cfg,
                          l2=replace(base_cfg.l2,
                                     decay_access_penalty=penalty))
            cfg = cfg.with_technique(tech)
            res = simulate(cfg, wl, warmup_fraction=0.17)
            out[penalty] = 1 - res.ipc / base.ipc
        return out

    losses = benchmark.pedantic(run, iterations=1, rounds=1)
    t = FigureTable("ablationA4b",
                    f"decay access penalty ({WORKLOAD}, decay64K, 4MB)",
                    [f"+{p}cy" for p in losses])
    t.add_row("ipc_loss", [f"{v * 100:.2f}%" for v in losses.values()])
    show(t)
    vals = list(losses.values())
    # The penalty's direct cost is below the event-interleaving noise of a
    # discrete-event run (~0.5pp), so only require no *large* inversion...
    assert vals[0] <= vals[1] + 0.01
    assert vals[0] <= vals[2] + 0.01
    # ...and the paper's actual claim: the +1 cycle "comes up to be a not
    # appreciable contribution to the total execution time".
    assert max(vals) - min(vals) < 0.05
