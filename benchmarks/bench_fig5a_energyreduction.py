"""Fig 5(a): system energy reduction — techniques x total cache size.

Paper reference: @4MB: protocol 13%, decay 30%, sel_decay 21%; @8MB: 25/44/38%.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig5a


def test_fig5a(benchmark, runner):
    """Regenerate Fig 5a over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig5a(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    col = len(table.columns) - 1
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    # at the largest size decay saves most and everything saves something
    assert val("decay512K") > val("protocol") > 0
    assert val("sel_decay512K") > 0
