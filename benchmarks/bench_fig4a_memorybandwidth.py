"""Fig 4(a): memory bandwidth increase — techniques x total cache size.

Paper reference: decay up to ~200% @8MB, sel_decay about half, protocol ~0%.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

from conftest import BENCHMARKS, SIZES, show

from repro.harness.figures import fig4a


def test_fig4a(benchmark, runner):
    """Regenerate Fig 4a over the configured sweep matrix."""
    table = benchmark.pedantic(
        lambda: fig4a(runner, sizes=SIZES, benchmarks=BENCHMARKS),
        iterations=1, rounds=1)
    show(table)
    assert table.rows
    col = len(table.columns) - 1
    def val(row):
        return float(table.cells[row][col].rstrip("%"))
    # decay-class techniques add off-chip traffic; protocol adds none
    assert abs(val("protocol")) < 0.5
    assert val("decay64K") > val("protocol")
