"""Engineering benchmark: parallel sweep executor vs the serial runner.

Not a paper figure — demonstrates the
:class:`~repro.harness.executor.ParallelSweepRunner` speedup on a cold
cache and re-checks that parallel execution is result-identical to the
serial sweep it replaces.  The sweep matrix here is embarrassingly
parallel (every point is an independent simulation), so wall-clock should
scale near-linearly until the worker count reaches the physical core
count; past that, workers time-share and the speedup flattens.

Run standalone for a quick report::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py

or via pytest (``pytest benchmarks/bench_sweep_parallel.py -s``).
Environment knobs: ``REPRO_BENCH_SCALE`` (default 0.04; the ISSUE's
reference demonstration uses 0.1), ``REPRO_BENCH_JOBS`` (default 4).
"""

import os
import time

from repro.harness.executor import ParallelSweepRunner
from repro.harness.runner import SweepRunner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

#: small but multi-point matrix: 2 workloads × 2 sizes × 2 techniques
#: (+ the 4 baseline twins) = 12 simulations
BENCHMARKS = ("uniform", "pingpong")
SIZES = (1, 2)
TECHNIQUES = ("protocol", "decay64K")


def _sweep(runner):
    return runner.sweep(
        benchmarks=BENCHMARKS, sizes=SIZES, techniques=TECHNIQUES
    )


def run_comparison(jobs: int = JOBS, scale: float = SCALE):
    """Cold-cache serial vs parallel sweep; returns (speedup, n_points)."""
    serial = SweepRunner(scale=scale, cache_dir=None, verbose=False)
    t0 = time.perf_counter()
    serial_metrics = _sweep(serial)
    t_serial = time.perf_counter() - t0

    parallel = ParallelSweepRunner(
        scale=scale, cache_dir=None, verbose=False, jobs=jobs
    )
    t0 = time.perf_counter()
    parallel_metrics = _sweep(parallel)
    t_parallel = time.perf_counter() - t0

    assert parallel_metrics == serial_metrics, (
        "parallel sweep diverged from serial results"
    )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    print(
        f"\n[bench_sweep_parallel] scale={scale} jobs={jobs} "
        f"cores={os.cpu_count()}: serial {t_serial:.1f}s, "
        f"parallel {t_parallel:.1f}s, speedup {speedup:.2f}x",
        flush=True,
    )
    return speedup, len(parallel_metrics)


def test_parallel_sweep_speedup():
    """Parallel == serial results; wall-clock speedup on multi-core hosts."""
    speedup, n_points = run_comparison()
    assert n_points == len(BENCHMARKS) * len(SIZES) * len(TECHNIQUES)
    cores = os.cpu_count() or 1
    if cores >= 4 and JOBS >= 4:
        # the acceptance bar: >= 2x at 4 workers on a 4-core host
        assert speedup >= 2.0, f"expected >= 2x speedup, got {speedup:.2f}x"
    elif cores >= 2 and JOBS >= 2:
        assert speedup >= 1.2, f"expected some speedup, got {speedup:.2f}x"
    # single-core hosts: correctness checked, speedup not expected


if __name__ == "__main__":
    run_comparison()
