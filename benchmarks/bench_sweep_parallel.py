"""Engineering benchmark: parallel sweep executor vs the serial runner.

Not a paper figure — demonstrates the
:class:`~repro.harness.executor.ParallelSweepRunner` speedup on a cold
cache and re-checks that parallel execution is result-identical to the
serial sweep it replaces.  The sweep matrix here is embarrassingly
parallel (every point is an independent simulation), so wall-clock should
scale near-linearly until the worker count reaches the physical core
count; past that, workers time-share and the speedup flattens.

Also includes a micro-bench of the ``point_key`` cache-lookup hot path.
``SweepRunner.technique_configs()`` used to rebuild the full technique
dict (8 ``TechniqueConfig`` constructions, each with validation) on
*every* cache lookup; it is now memoized per runner, leaving one digest
+ one ``json.dumps`` per ``point_key`` — worth a multiple in lookups/s
on a warm cache, where a 192-point figure pass is pure key computation.

Run standalone for a quick report::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py

or via pytest (``pytest benchmarks/bench_sweep_parallel.py -s``).
Environment knobs: ``REPRO_BENCH_SCALE`` (default 0.04; the ISSUE's
reference demonstration uses 0.1), ``REPRO_BENCH_JOBS`` (default 4).
"""

import os
import time

from repro.harness.executor import ParallelSweepRunner
from repro.harness.runner import SweepRunner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

#: small but multi-point matrix: 2 workloads × 2 sizes × 2 techniques
#: (+ the 4 baseline twins) = 12 simulations
BENCHMARKS = ("uniform", "pingpong")
SIZES = (1, 2)
TECHNIQUES = ("protocol", "decay64K")


def _sweep(runner):
    return runner.sweep(
        benchmarks=BENCHMARKS, sizes=SIZES, techniques=TECHNIQUES
    )


def run_comparison(jobs: int = JOBS, scale: float = SCALE):
    """Cold-cache serial vs parallel sweep; returns (speedup, n_points)."""
    serial = SweepRunner(scale=scale, cache_dir=None, verbose=False)
    t0 = time.perf_counter()
    serial_metrics = _sweep(serial)
    t_serial = time.perf_counter() - t0

    parallel = ParallelSweepRunner(
        scale=scale, cache_dir=None, verbose=False, jobs=jobs
    )
    t0 = time.perf_counter()
    parallel_metrics = _sweep(parallel)
    t_parallel = time.perf_counter() - t0

    assert parallel_metrics == serial_metrics, (
        "parallel sweep diverged from serial results"
    )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    print(
        f"\n[bench_sweep_parallel] scale={scale} jobs={jobs} "
        f"cores={os.cpu_count()}: serial {t_serial:.1f}s, "
        f"parallel {t_parallel:.1f}s, speedup {speedup:.2f}x",
        flush=True,
    )
    return speedup, len(parallel_metrics)


def run_point_key_bench(iterations: int = 20_000):
    """Throughput of the ``point_key`` hot path (memoized technique table).

    A warm-cache figure pass is one ``point_key`` per lookup, so this is
    the per-point overhead floor of every cached sweep.  Returns
    (keys_per_second, point).
    """
    runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
    point = runner.point("uniform", 1, "decay64K")
    runner.point_key(point)  # warm the memoized technique table
    t0 = time.perf_counter()
    for _ in range(iterations):
        runner.point_key(point)
    dt = time.perf_counter() - t0
    rate = iterations / dt if dt > 0 else float("inf")
    print(
        f"[bench_sweep_parallel] point_key: {rate:,.0f} keys/s "
        f"({dt / iterations * 1e6:.1f} us/key, memoized technique table)",
        flush=True,
    )
    return rate, point


def test_parallel_sweep_speedup():
    """Parallel == serial results; wall-clock speedup on multi-core hosts."""
    speedup, n_points = run_comparison()
    assert n_points == len(BENCHMARKS) * len(SIZES) * len(TECHNIQUES)
    cores = os.cpu_count() or 1
    if cores >= 4 and JOBS >= 4:
        # the acceptance bar: >= 2x at 4 workers on a 4-core host
        assert speedup >= 2.0, f"expected >= 2x speedup, got {speedup:.2f}x"
    elif cores >= 2 and JOBS >= 2:
        assert speedup >= 1.2, f"expected some speedup, got {speedup:.2f}x"
    # single-core hosts: correctness checked, speedup not expected


def test_point_key_hot_path():
    """The memoized lookup path must stay cheap (no per-call table build)."""
    rate, point = run_point_key_bench(iterations=5_000)
    # generous floor: even constrained CI boxes clear 10k keys/s with the
    # memoized table; the pre-fix path (8 TechniqueConfig constructions
    # per call) sat well under it
    assert rate > 10_000, f"point_key too slow: {rate:,.0f} keys/s"


if __name__ == "__main__":
    run_comparison()
    run_point_key_bench()
