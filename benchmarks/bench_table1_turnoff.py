"""Table I — the turn-off legality matrix, plus protocol micro-benchmarks.

Regenerates the paper's Table I verbatim and benchmarks the protocol
decision engine (the per-access hot path of the simulator).
"""

from conftest import show

from repro.coherence.mesi import MESIProtocol
from repro.coherence.states import E, I, M, S
from repro.coherence.turnoff import TurnOffSequencer
from repro.harness.figures import table1


def test_table1_matrix(benchmark):
    """Render Table I (pure protocol logic, no simulation)."""
    table = benchmark(table1)
    show(table)
    cmp_dirty = table.cells["cmp-L1WT"][1]
    assert "write back" in cmp_dirty and "upper level" in cmp_dirty


def test_turnoff_sequencer_throughput(benchmark):
    """Turn-off decision rate (decay's per-event cost)."""
    seq = TurnOffSequencer()
    states = [M, E, S, I] * 250

    def run():
        gated = 0
        for s in states:
            _, r = seq.initiate(s)
            gated += r.gated
        return gated

    gated = benchmark(run)
    assert gated == len(states)


def test_snoop_table_throughput(benchmark):
    """Snoop-side decision rate (every bus transaction pays this)."""
    from repro.coherence.events import BUS_RD, BUS_RDX

    proto = MESIProtocol()
    cases = [(M, BUS_RD), (E, BUS_RDX), (S, BUS_RD), (I, BUS_RDX)] * 250

    def run():
        acc = 0
        for s, txn in cases:
            nxt, _ = proto.snoop(s, txn)
            acc += nxt
        return acc

    benchmark(run)
