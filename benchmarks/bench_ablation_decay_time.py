"""Ablation A1: decay-time sensitivity beyond the paper's three points.

The paper evaluates 64K/128K/512K; this ablation sweeps a wider range to
expose the energy/performance knee ("larger decay time might be a better
choice from the Energy-Delay point of view", §VI).
"""

import pytest
from conftest import BENCH_SCALE, show

from repro import CMPConfig, TechniqueConfig, simulate
from repro.harness.figures import FigureTable
from repro.power.energy import EnergyModel, energy_reduction
from repro.workloads.registry import get_workload
from repro.workloads.scaling import MIN_SUPPORTED_SCALE, NOMINAL_DECAY_SHORT

# Sweep points are clamped to the workload-model envelope: a scaled decay
# time below 64K x MIN_SUPPORTED_SCALE puts even hot-set reuse past the
# decay cliff, which no real benchmark exhibits (see workloads/scaling.py).
_CANDIDATES = (32_000, 64_000, 128_000, 256_000, 512_000, 1_024_000)
_FLOOR = NOMINAL_DECAY_SHORT * MIN_SUPPORTED_SCALE
DECAY_POINTS = tuple(d for d in _CANDIDATES if d * BENCH_SCALE >= _FLOOR)
WORKLOAD = "mpeg2dec"


@pytest.fixture(scope="module")
def sweep():
    wl = get_workload(WORKLOAD, scale=BENCH_SCALE)
    base_cfg = CMPConfig().with_total_l2_mb(4)
    base = simulate(base_cfg, wl, warmup_fraction=0.17)
    base_e = EnergyModel(base_cfg).evaluate(base)
    rows = {}
    for nominal in DECAY_POINTS:
        cfg = base_cfg.with_technique(TechniqueConfig(
            name="decay", decay_cycles=max(64, int(nominal * BENCH_SCALE))))
        res = simulate(cfg, wl, warmup_fraction=0.17)
        e = EnergyModel(cfg).evaluate(res)
        rows[nominal] = (
            res.occupancy,
            1 - res.ipc / base.ipc,
            energy_reduction(base_e, e),
        )
    return rows


def test_ablation_decay_time(benchmark, sweep):
    """Print the sweep and check the paper's qualitative knee."""

    def render():
        t = FigureTable(
            "ablationA1",
            f"decay-time sweep ({WORKLOAD}, 4MB, nominal cycles)",
            [f"{d // 1000}K" for d in DECAY_POINTS])
        t.add_row("occupancy",
                  [f"{sweep[d][0] * 100:.1f}%" for d in DECAY_POINTS])
        t.add_row("ipc_loss",
                  [f"{sweep[d][1] * 100:.1f}%" for d in DECAY_POINTS])
        t.add_row("energy_red",
                  [f"{sweep[d][2] * 100:.1f}%" for d in DECAY_POINTS])
        return t

    table = benchmark(render)
    show(table)

    losses = [sweep[d][1] for d in DECAY_POINTS]
    # IPC loss decreases (weakly) as decay time grows
    assert losses[0] >= losses[-1] - 1e-6
    # the magnitude of the decay time is "only slightly influential" on
    # energy (paper): the spread across points stays within 15 points
    reds = [sweep[d][2] for d in DECAY_POINTS]
    assert max(reds) - min(reds) < 0.15
