"""Shared configuration for the per-figure reproduction benches.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload time-dilation (default 0.04: CI-sized,
  each simulation point takes ~1 s; the EXPERIMENTS.md reference numbers
  were recorded at 0.1).
* ``REPRO_BENCH_FULL=1`` — full paper matrix (6 benchmarks × 4 sizes);
  default is a reduced matrix (3 benchmarks × {1,4} MB) so
  ``pytest benchmarks/ --benchmark-only`` completes in minutes.
* ``REPRO_BENCH_JOBS`` — sweep worker processes (default 0 = all cores;
  results are byte-identical to a serial sweep regardless).

All benches share the on-disk result cache (``.repro_cache``), so the
sweep is simulated once — in parallel, via the
:class:`~repro.harness.executor.ParallelSweepRunner` — and every figure
re-renders from cache.
"""

import os

import pytest

from repro.harness.executor import ParallelSweepRunner
from repro.workloads.registry import PAPER_BENCHMARKS

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0"))

SIZES = (1, 2, 4, 8) if FULL else (1, 4)
BENCHMARKS = tuple(PAPER_BENCHMARKS) if FULL else (
    "mpeg2dec", "water_ns", "facerec")

#: per-benchmark figure (fig6) runs at this single total size
FIG6_MB = 4


@pytest.fixture(scope="session")
def runner():
    """Session-wide parallel sweep runner with the shared cache."""
    return ParallelSweepRunner(scale=BENCH_SCALE, cache_dir=".repro_cache",
                               verbose=True, jobs=BENCH_JOBS or None)


#: rendered figures are also appended here (pytest captures stdout)
FIGURES_FILE = os.path.join(os.path.dirname(__file__), "..",
                            "bench_figures.txt")


def show(table):
    """Print a rendered figure and persist it to ``bench_figures.txt``.

    pytest captures stdout by default, so the benches also append every
    rendered table to a file in the repository root — that file is the
    regenerated-figures artifact referenced from EXPERIMENTS.md.
    """
    text = "\n" + table.render() + "\n"
    print(text)
    with open(FIGURES_FILE, "a") as fh:
        fh.write(f"[scale={BENCH_SCALE} full={FULL}]" + text)
