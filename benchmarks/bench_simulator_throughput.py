"""Engineering benchmark: simulator throughput (accesses/second).

Not a paper figure — tracks the performance of the per-access hot path
(the hpc-parallel guides' "profile before optimizing" baseline).  History
of observed numbers lives in EXPERIMENTS.md.
"""

import pytest

from repro import CMPConfig, TechniqueConfig, Simulator
from repro.workloads.registry import get_workload

SCALE = 0.04


@pytest.mark.parametrize("tech", ["baseline", "decay"])
def test_simulator_throughput(benchmark, tech):
    """End-to-end accesses/sec for one small run."""
    wl = get_workload("uniform", scale=SCALE)
    cfg = CMPConfig().with_total_l2_mb(1).with_technique(
        TechniqueConfig(name=tech, decay_cycles=max(64, int(64_000 * SCALE))))

    def run():
        return Simulator(cfg).run(wl)

    res = benchmark.pedantic(run, iterations=1, rounds=3)
    accesses = sum(c.loads + c.stores for c in res.cores)
    assert accesses == wl.meta.accesses_per_core * cfg.n_cores


def test_workload_generation_throughput(benchmark):
    """Generator-side records/sec (must not dominate simulation)."""
    wl = get_workload("water_ns", scale=SCALE)

    def drain():
        n = 0
        for stream in wl.streams(4):
            for _ in stream:
                n += 1
        return n

    n = benchmark.pedantic(drain, iterations=1, rounds=3)
    assert n >= 4 * wl.meta.accesses_per_core
