"""Engineering benchmark: simulator throughput (accesses/second).

Not a paper figure — tracks the performance of the per-access hot path
(the hpc-parallel guides' "profile before optimizing" baseline).  Two
modes exist:

* the pytest-benchmark tests below (small scale, CI-friendly);
* ``python benchmarks/bench_simulator_throughput.py --json`` — the
  perf-evidence loop of the flat-array engine: measures accesses/sec for
  the paper techniques at ``--scale 0.1`` and writes
  ``BENCH_simulator_throughput.json`` next to the repo root, pairing the
  measured numbers with the pinned seed-engine baseline
  (:data:`SEED_ENGINE_BASELINE`) so the speedup trend is tracked in-repo.
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro import CMPConfig, Simulator, TechniqueConfig
from repro.sim.config import BASELINE, paper_techniques
from repro.workloads.registry import get_workload

SCALE = 0.04

#: accesses/sec of the pre-flat-array (object-per-line) engine, measured
#: on the techniques/workload/scale of ``--json`` mode at the PR boundary.
#: These are the fixed "before" of the perf trajectory; re-measure only
#: when intentionally re-baselining (and say so in the commit).
SEED_ENGINE_BASELINE = {
    "scale": 0.1,
    "workload": "uniform",
    "warmup_fraction": 0.17,
    "techniques": {
        "baseline": {"accesses": 656383, "seconds": 25.9747, "accesses_per_sec": 25270.1},
        "protocol": {"accesses": 656383, "seconds": 32.6497, "accesses_per_sec": 20103.8},
        "decay64K": {"accesses": 663630, "seconds": 52.7863, "accesses_per_sec": 12572.0},
        "sel_decay64K": {"accesses": 660313, "seconds": 9.9813, "accesses_per_sec": 66155.3},
    },
    "aggregate": {"accesses": 2636709, "seconds": 121.392, "accesses_per_sec": 21720.6},
}

JSON_TECHNIQUES = tuple(SEED_ENGINE_BASELINE["techniques"])


@pytest.mark.parametrize("tech", ["baseline", "decay"])
def test_simulator_throughput(benchmark, tech):
    """End-to-end accesses/sec for one small run."""
    wl = get_workload("uniform", scale=SCALE)
    cfg = CMPConfig().with_total_l2_mb(1).with_technique(
        TechniqueConfig(name=tech, decay_cycles=max(64, int(64_000 * SCALE))))

    def run():
        return Simulator(cfg).run(wl)

    res = benchmark.pedantic(run, iterations=1, rounds=3)
    accesses = sum(c.loads + c.stores for c in res.cores)
    assert accesses == wl.meta.accesses_per_core * cfg.n_cores


def test_workload_generation_throughput(benchmark):
    """Generator-side records/sec (must not dominate simulation)."""
    wl = get_workload("water_ns", scale=SCALE)

    def drain():
        n = 0
        for stream in wl.streams(4):
            for _ in stream:
                n += 1
        return n

    n = benchmark.pedantic(drain, iterations=1, rounds=3)
    assert n >= 4 * wl.meta.accesses_per_core


# ---------------------------------------------------------------------------
# --json mode: before/after perf evidence
# ---------------------------------------------------------------------------
def measure_technique(label, scale, workload, warmup, rounds=2):
    """Best-of-``rounds`` wall time for one technique; returns a row dict."""
    table = {BASELINE: TechniqueConfig(name=BASELINE)}
    table.update(paper_techniques(scale))
    cfg = CMPConfig().with_total_l2_mb(1).with_technique(table[label])
    wl = get_workload(workload, scale=scale)
    best = None
    res = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        res = Simulator(cfg).run(wl, warmup_fraction=warmup)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    accesses = sum(c.loads + c.stores for c in res.cores)
    return {
        "accesses": accesses,
        "seconds": round(best, 4),
        "accesses_per_sec": round(accesses / best, 1),
    }


def run_json_bench(out_path, rounds=2, verbose=True):
    """Measure the paper techniques and write the before/after JSON."""
    seed = SEED_ENGINE_BASELINE
    scale = seed["scale"]
    workload = seed["workload"]
    warmup = seed["warmup_fraction"]

    techniques = {}
    agg_acc = 0
    agg_s = 0.0
    for label in JSON_TECHNIQUES:
        after = measure_technique(label, scale, workload, warmup, rounds)
        before = seed["techniques"][label]
        techniques[label] = {
            "before": before,
            "after": after,
            "speedup": round(after["accesses_per_sec"] / before["accesses_per_sec"], 2),
        }
        agg_acc += after["accesses"]
        agg_s += after["seconds"]
        if verbose:
            print(
                f"[bench_simulator_throughput] {label}: "
                f"{after['accesses_per_sec']:,.0f} acc/s "
                f"({techniques[label]['speedup']}x over seed)",
                flush=True,
            )

    agg_after = {
        "accesses": agg_acc,
        "seconds": round(agg_s, 4),
        "accesses_per_sec": round(agg_acc / agg_s, 1),
    }
    doc = {
        "bench": "simulator_throughput",
        "engine": "flat-array (struct-of-arrays columns, fused hot path)",
        "scale": scale,
        "workload": workload,
        "warmup_fraction": warmup,
        "techniques": techniques,
        "aggregate": {
            "before": seed["aggregate"],
            "after": agg_after,
            "speedup": round(
                agg_after["accesses_per_sec"]
                / seed["aggregate"]["accesses_per_sec"],
                2,
            ),
        },
    }
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    if verbose:
        print(
            f"[bench_simulator_throughput] aggregate "
            f"{agg_after['accesses_per_sec']:,.0f} acc/s "
            f"({doc['aggregate']['speedup']}x over seed) -> {out_path}"
        )
    return doc


def main(argv=None):
    """CLI entry point for the --json perf-evidence mode."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        action="store_true",
        help="measure the paper techniques and write the before/after JSON",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_simulator_throughput.json"
        ),
        help="output path (default: repo-root BENCH_simulator_throughput.json)",
    )
    parser.add_argument(
        "--rounds", type=int, default=2, help="timing rounds per technique (best-of)"
    )
    args = parser.parse_args(argv)
    if not args.json:
        parser.error("nothing to do: pass --json (or run under pytest-benchmark)")
    run_json_bench(os.path.normpath(args.out), rounds=args.rounds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
