"""Engineering benchmark: distribution overhead of the sweep backends.

Not a paper figure — runs the same cold-cache matrix through every
backend (local pool, socket work-stealing with spawned workers, batch
queue with sliced workers) and reports wall-clock next to the serial
runner, re-checking that all four produce identical metrics.  The
interesting number is the *overhead* of each transport over the local
pool: the socket coordinator adds per-task round trips, the batch
backend adds task-file emission plus manifest-driven shard ingest, and
both should stay small against simulation cost even at this tiny scale.

Run standalone for a quick report::

    PYTHONPATH=src python benchmarks/bench_sweep_backends.py

or via pytest (``pytest benchmarks/bench_sweep_backends.py -s``).
Environment knobs: ``REPRO_BENCH_SCALE`` (default 0.04),
``REPRO_BENCH_JOBS`` (default 2).
"""

import os
import tempfile
import time

from repro.harness.backends import BatchQueueBackend, SocketWorkStealingBackend
from repro.harness.executor import ParallelSweepRunner
from repro.harness.runner import SweepRunner

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))

#: 2 workloads × 1 size × 2 techniques (+2 baseline twins) = 6 simulations
BENCHMARKS = ("uniform", "pingpong")
SIZES = (1,)
TECHNIQUES = ("protocol", "decay64K")


def _sweep(runner):
    return runner.sweep(
        benchmarks=BENCHMARKS, sizes=SIZES, techniques=TECHNIQUES
    )


def _timed(runner):
    t0 = time.perf_counter()
    metrics = _sweep(runner)
    return time.perf_counter() - t0, metrics


def run_comparison(jobs: int = JOBS, scale: float = SCALE):
    """Cold-cache sweep through every backend; returns {name: seconds}."""
    times = {}
    t_serial, reference = _timed(
        SweepRunner(scale=scale, cache_dir=None, verbose=False)
    )
    times["serial"] = t_serial

    with tempfile.TemporaryDirectory() as tmp:
        backends = {
            "local": (None, os.path.join(tmp, "local")),
            "socket": (
                SocketWorkStealingBackend(spawn_workers=jobs, timeout=600),
                os.path.join(tmp, "socket"),
            ),
            "batch": (
                BatchQueueBackend(
                    queue_dir=os.path.join(tmp, "queue"),
                    spawn_workers=jobs,
                    timeout=600,
                ),
                os.path.join(tmp, "batch"),
            ),
        }
        for name, (backend, cache_dir) in backends.items():
            elapsed, metrics = _timed(
                ParallelSweepRunner(
                    scale=scale,
                    cache_dir=cache_dir,
                    verbose=False,
                    jobs=jobs,
                    backend=backend,
                )
            )
            assert metrics == reference, f"{name} diverged from serial"
            times[name] = elapsed

    report = ", ".join(f"{name} {t:.1f}s" for name, t in times.items())
    overhead = {
        name: times[name] - times["local"] for name in ("socket", "batch")
    }
    print(
        f"\n[bench_sweep_backends] scale={scale} jobs={jobs} "
        f"cores={os.cpu_count()}: {report}; overhead vs local: "
        f"socket +{overhead['socket']:.1f}s, batch +{overhead['batch']:.1f}s",
        flush=True,
    )
    return times


def test_backends_identical_and_overhead_bounded():
    """All backends agree with serial; transports add bounded overhead."""
    times = run_comparison()
    # the transports must not dominate: allow generous slack for CI noise,
    # but catch pathological regressions (e.g. a poll loop gone quadratic)
    for name in ("socket", "batch"):
        assert times[name] < times["serial"] + 30.0, (
            f"{name} backend took {times[name]:.1f}s vs serial "
            f"{times['serial']:.1f}s — transport overhead exploded"
        )


if __name__ == "__main__":
    run_comparison()
