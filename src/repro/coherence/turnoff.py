"""The turn-off primitive: Table I legality + the TC/TD sequencer.

Paper §III defines *when* a secondary-cache line may be switched off without
violating the consistency of the hierarchy.  Two artifacts live here:

* :func:`decide` — the full Table I decision matrix (uniprocessor vs.
  multiprocessor, write-back vs. write-through L1, clean vs. dirty line),
  used directly by the ``table1`` bench and the protocol test-suite;
* :class:`TurnOffSequencer` — drives a concrete L2 line through the
  Figure-2 extension: stationary state → TC/TD → (upper-level invalidation,
  memory writeback) → gated.  The CMP simulator resolves the sequence
  synchronously (atomic-bus abstraction) but every step is observable for
  tests, and a turn-off that lands on a transient line defers exactly as
  the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .events import A_DEFER, A_GATE, A_INV_UPPER, A_WRITEBACK
from .mesi import MESIProtocol
from .states import E, I, M, OFF, S, TC, TD, is_stationary, name

# ---------------------------------------------------------------------------
# Table I — the design-space matrix
# ---------------------------------------------------------------------------

#: System organisations of Table I's columns.
UNIPROCESSOR_WB = "uni-L1WB"    # single processor (or shared L2), write-back L1
UNIPROCESSOR_WT = "uni-L1WT"    # single processor (or shared L2), write-through L1
MULTIPROCESSOR_WT = "cmp-L1WT"  # private-L2 CMP, write-through L1 (the paper's design)

ORGANISATIONS = (UNIPROCESSOR_WB, UNIPROCESSOR_WT, MULTIPROCESSOR_WT)


@dataclass(frozen=True)
class TurnOffDecision:
    """Outcome of the Table I matrix for one (organisation, line state) cell.

    Attributes
    ----------
    allowed:
        The line may be turned off (all cells of Table I allow it, subject
        to the conditions below).
    needs_writeback:
        The freshest copy must be written back to memory first.
    needs_upper_invalidate:
        The corresponding L1 line must be invalidated (inclusion).
    requires_no_pending_write:
        Legal only when no buffered store to the line is still in flight
        (the write-buffer check of Table I's write-through columns).
    """

    allowed: bool
    needs_writeback: bool
    needs_upper_invalidate: bool
    requires_no_pending_write: bool

    def describe(self) -> str:
        """Paper-style cell text, e.g. ``"Turn off, but invalidate the upper level"``."""
        if not self.allowed:
            return "Not allowed"
        parts = ["Turn off"]
        if self.requires_no_pending_write:
            parts.append("if no pending write")
        if self.needs_writeback:
            parts.append("and write back")
        if self.needs_upper_invalidate:
            parts.append("but invalidate the upper level")
        return ", ".join(parts)


#: Table I verbatim.  Keys: (organisation, dirty).
_TABLE_I = {
    # Single processor (or shared L2), write-back L1
    (UNIPROCESSOR_WB, False): TurnOffDecision(True, False, False, False),
    (UNIPROCESSOR_WB, True): TurnOffDecision(True, True, False, False),
    # Single processor (or shared L2), write-through L1
    (UNIPROCESSOR_WT, False): TurnOffDecision(True, False, False, True),
    (UNIPROCESSOR_WT, True): TurnOffDecision(True, True, False, True),
    # Multiprocessor, private L2, write-through L1 (the configuration the
    # paper simulates).  Clean: L1 copy is clean too, but inclusion still
    # demands it be dropped.  Dirty: invalidate the upper level and write
    # the newest copy back before gating (Figure 2's TD does both).
    (MULTIPROCESSOR_WT, False): TurnOffDecision(True, False, True, True),
    (MULTIPROCESSOR_WT, True): TurnOffDecision(True, True, True, False),
}


def decide(organisation: str, dirty: bool) -> TurnOffDecision:
    """Look up Table I for ``organisation`` (see :data:`ORGANISATIONS`)."""
    try:
        return _TABLE_I[(organisation, dirty)]
    except KeyError:
        raise ValueError(
            f"unknown organisation {organisation!r}; choose from {ORGANISATIONS}"
        ) from None


def table_rows() -> list:
    """All six Table I cells as ``(organisation, dirty, decision)`` rows."""
    return [(org, dirty, _TABLE_I[(org, dirty)]) for org in ORGANISATIONS
            for dirty in (False, True)]


# ---------------------------------------------------------------------------
# Turn-off sequencing for the CMP simulator
# ---------------------------------------------------------------------------

#: Outcome codes of TurnOffSequencer.initiate.
DONE = "done"              #: line gated (possibly via an instantaneous transient)
IN_TRANSIENT = "transient"  #: line parked in TC/TD awaiting grant()
DEFERRED = "deferred"      #: line was mid-transaction; retry at stationary state
DENIED_PENDING = "denied-pending-write"  #: clean line with a buffered store in flight
ALREADY_OFF = "already-off"


@dataclass
class TurnOffResult:
    """What happened when a turn-off signal was raised on a line."""

    outcome: str
    transient: Optional[int] = None   # TC or TD when outcome == IN_TRANSIENT
    invalidate_upper: bool = False    # L1 copy must be dropped
    writeback: bool = False           # dirty data must go to memory

    @property
    def gated(self) -> bool:
        """True when the line ended up power-gated."""
        return self.outcome == DONE


class TurnOffSequencer:
    """Stateless driver of the Figure-2 turn-off sequence.

    ``initiate`` evaluates the signal against the current state; callers
    holding a line in TC/TD later call ``grant`` when the upper-level
    invalidation (and writeback, for TD) completes.  ``auto_grant=True``
    collapses the transient immediately — the mode the timing simulator
    uses under its atomic-bus abstraction (the latency cost of the L1
    invalidation and the writeback are charged by the hierarchy instead).
    """

    def __init__(self, protocol: Optional[MESIProtocol] = None) -> None:
        self.protocol = protocol or MESIProtocol()

    def initiate(
        self, state: int, pending_write: bool = False, auto_grant: bool = True
    ) -> tuple:
        """Raise the turn-off signal on a line in ``state``.

        Returns ``(new_state, TurnOffResult)``.  ``pending_write`` is the
        Table I write-buffer condition: a clean line with a buffered store
        in flight must not be gated (the drain would either miss or revive
        the line an instant later); the dirty (M) case proceeds regardless
        because the L1 invalidation intercepts the pending store.
        """
        if state == OFF:
            return OFF, TurnOffResult(ALREADY_OFF)
        if state in (S, E) and pending_write:
            return state, TurnOffResult(DENIED_PENDING)
        nxt, actions = self.protocol.turn_off(state)
        if actions & A_DEFER:
            return state, TurnOffResult(DEFERRED)
        if nxt == OFF:
            # I -> OFF directly (protocol-invalidation path).
            return OFF, TurnOffResult(DONE)
        inv = bool(actions & A_INV_UPPER)
        wb = bool(actions & A_WRITEBACK)
        if not auto_grant:
            return nxt, TurnOffResult(
                IN_TRANSIENT, transient=nxt, invalidate_upper=inv, writeback=wb
            )
        final, gactions = self.protocol.grant(nxt)
        assert final == OFF and (gactions & A_GATE)
        return OFF, TurnOffResult(DONE, invalidate_upper=inv, writeback=wb)

    def grant(self, state: int) -> tuple:
        """Resolve a parked transient; returns ``(new_state, TurnOffResult)``."""
        if state not in (TC, TD):
            raise ValueError(f"grant() on non-transient state {name(state)}")
        final, actions = self.protocol.grant(state)
        return final, TurnOffResult(DONE, writeback=bool(state == TD))

    # -- convenience predicates used by the hierarchy --------------------
    @staticmethod
    def can_act_now(state: int) -> bool:
        """True when the turn-off signal would not defer in ``state``."""
        return is_stationary(state) or state == I or state == OFF
