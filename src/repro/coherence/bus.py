"""The shared snoopy bus.

Paper §V: "Inter-processor communication develops on a high-bandwidth
shared bus (57 GB/s), pipelined and clocked at half of the core clock."

The model is a split address/data bus with FIFO arbitration:

* every transaction occupies the address/snoop slot for one bus cycle;
* data-carrying transactions (fills, writebacks, cache-to-cache flushes)
  additionally occupy the data slots for ``ceil(bytes / width)`` bus
  cycles;
* pipelining is approximated by letting a transaction's *latency* overlap
  the previous transaction's data phase, while *occupancy* (the time the
  bus is unavailable to others) is tracked exactly through ``next_free``.

All times at this interface are **core cycles**; the bus-to-core clock
ratio converts internally.  Because the simulator processes events in
global-time order, a simple ``next_free`` register implements FIFO
arbitration faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .events import BUS_FLUSH, BUS_RD, BUS_RDX, BUS_UPGR, BUS_WB, DATA_TXNS, txn_name


@dataclass
class BusConfig:
    """Shared-bus parameters.

    Defaults follow the paper: half-core-clock bus whose data path moves 32
    bytes per bus cycle — ≈48 GB/s at a 3 GHz core clock, the same order as
    the paper's 57 GB/s — one address/snoop slot per transaction, and a
    fixed snoop-response latency.
    """

    clock_ratio: int = 2          #: core cycles per bus cycle
    width_bytes: int = 32         #: data bytes moved per bus cycle
    address_cycles: int = 1       #: bus cycles for the address/snoop phase
    snoop_latency: int = 2        #: bus cycles for snoop responses to settle

    def __post_init__(self) -> None:
        if self.clock_ratio < 1 or self.width_bytes < 1 or self.address_cycles < 1:
            raise ValueError("bus parameters must be positive")

    def peak_bandwidth_bytes_per_core_cycle(self) -> float:
        """Peak data bandwidth in bytes per *core* cycle."""
        return self.width_bytes / self.clock_ratio


@dataclass
class BusStats:
    """Traffic accounting for the shared bus."""

    txn_counts: Dict[int, int] = field(default_factory=dict)
    data_bytes: int = 0
    busy_core_cycles: int = 0
    wait_core_cycles: int = 0
    transactions: int = 0

    def count(self, kind: int) -> int:
        """Transactions of ``kind`` observed so far."""
        return self.txn_counts.get(kind, 0)

    def summary(self) -> str:
        """One-line traffic summary for logs."""
        parts = [f"{txn_name(k)}={v}" for k, v in sorted(self.txn_counts.items())]
        return (
            f"txns={self.transactions} [{', '.join(parts)}] bytes={self.data_bytes} "
            f"busy={self.busy_core_cycles}cy wait={self.wait_core_cycles}cy"
        )


class SnoopyBus:
    """FIFO-arbitrated shared bus with exact occupancy accounting."""

    __slots__ = ("cfg", "stats", "next_free", "_line_bytes")

    def __init__(self, cfg: BusConfig, line_bytes: int = 64) -> None:
        self.cfg = cfg
        self.stats = BusStats()
        self.next_free = 0
        self._line_bytes = line_bytes

    # ------------------------------------------------------------------
    def occupancy_core_cycles(self, kind: int, data_bytes: int) -> int:
        """Core cycles the bus is held by one transaction of ``kind``."""
        cfg = self.cfg
        bus_cycles = cfg.address_cycles
        if kind in DATA_TXNS and data_bytes > 0:
            bus_cycles += -(-data_bytes // cfg.width_bytes)  # ceil div
        return bus_cycles * cfg.clock_ratio

    def snoop_response_core_cycles(self) -> int:
        """Core cycles until snoop responses settle (part of miss latency)."""
        return self.cfg.snoop_latency * self.cfg.clock_ratio

    def transact(self, now: int, kind: int, data_bytes: int = 0) -> Tuple[int, int]:
        """Arbitrate and perform one transaction.

        Parameters
        ----------
        now:
            Core cycle at which the requester asks for the bus.
        kind:
            ``BUS_RD``/``BUS_RDX``/``BUS_UPGR``/``BUS_WB``/``BUS_FLUSH``.
        data_bytes:
            Payload size; ignored for address-only transactions.

        Returns ``(grant_time, done_time)`` in core cycles.  ``done_time``
        is when the snoop/data phase of *this* transaction completes;
        the bus frees for the next requester at ``grant + occupancy``.
        """
        grant = now if now > self.next_free else self.next_free
        occ = self.occupancy_core_cycles(kind, data_bytes)
        done = grant + occ + self.snoop_response_core_cycles()
        self.next_free = grant + occ

        st = self.stats
        st.transactions += 1
        st.txn_counts[kind] = st.txn_counts.get(kind, 0) + 1
        if kind in DATA_TXNS:
            st.data_bytes += data_bytes
        st.busy_core_cycles += occ
        st.wait_core_cycles += grant - now
        return grant, done

    # convenience wrappers keep call sites readable -----------------------
    def read_miss(self, now: int) -> Tuple[int, int]:
        """BusRd moving one line."""
        return self.transact(now, BUS_RD, self._line_bytes)

    def read_exclusive(self, now: int) -> Tuple[int, int]:
        """BusRdX moving one line."""
        return self.transact(now, BUS_RDX, self._line_bytes)

    def upgrade(self, now: int) -> Tuple[int, int]:
        """Address-only upgrade (S -> M invalidation broadcast)."""
        return self.transact(now, BUS_UPGR, 0)

    def writeback(self, now: int) -> Tuple[int, int]:
        """Dirty-line writeback to memory."""
        return self.transact(now, BUS_WB, self._line_bytes)

    def flush(self, now: int) -> Tuple[int, int]:
        """Cache-to-cache supply of a dirty line."""
        return self.transact(now, BUS_FLUSH, self._line_bytes)

    # ------------------------------------------------------------------
    def utilization(self, total_cycles: int) -> float:
        """Fraction of core cycles the bus was occupied."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_core_cycles / total_cycles)
