"""MESI snoopy protocol with the paper's turn-off extension (Figure 2).

The protocol is expressed as explicit transition tables so the test-suite
can walk every edge of the paper's diagram.  Three views exist:

* **processor side** — ``PrRd``/``PrWr`` on the local L2 state;
* **snoop side** — remote bus transactions observed on the shared bus;
* **turn-off side** — the external turn-off signal raised by a leakage
  policy (protocol-invalidation, decay, selective decay), including the
  transient states TC/TD and the *defer* rule for lines caught mid-flight.

The tables return ``(next_state, action_mask)`` pairs; action flags are the
``A_*`` bits from :mod:`repro.coherence.events`.  Timing, bus arbitration
and L1 bookkeeping live in :mod:`repro.hierarchy` — this module is pure
protocol logic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .events import (
    A_DEFER,
    A_FLUSH,
    A_GATE,
    A_INV_UPPER,
    A_NONE,
    A_WRITEBACK,
    BUS_RD,
    BUS_RDX,
    BUS_UPGR,
)
from .states import E, I, M, OFF, S, TC, TD, is_stationary, name

Transition = Tuple[int, int]

# ---------------------------------------------------------------------------
# Processor-side transitions for *hits*.  Misses (state I/OFF) are handled
# structurally: the requester issues BusRd/BusRdX and the fill state depends
# on whether any other cache held the line (E vs S) — see fill_state_for_read.
# ---------------------------------------------------------------------------
#: PrRd on a valid line: no state change, no bus action (Figure 2 "PrRd/-").
PROC_READ_HIT: Dict[int, Transition] = {
    S: (S, A_NONE),
    E: (E, A_NONE),
    M: (M, A_NONE),
}

#: PrWr on a valid line.  E upgrades to M silently ("PrWr/-"); S must
#: broadcast an upgrade to invalidate other sharers ("PrWr/BusRdX" in the
#: diagram; we issue the data-less BusUpgr variant as in Culler–Singh's
#: MESI and account it as an address-only transaction).
PROC_WRITE_HIT: Dict[int, Transition] = {
    S: (M, A_NONE),  # requires BUS_UPGR first; caller issues it
    E: (M, A_NONE),
    M: (M, A_NONE),
}

#: Bus transaction the requester must issue for a write hit in each state
#: (None = silent).
WRITE_HIT_BUS_TXN: Dict[int, int | None] = {
    S: BUS_UPGR,
    E: None,
    M: None,
}


def fill_state_for_read(other_caches_have_copy: bool) -> int:
    """State installed after a BusRd fill: E if unshared, S otherwise."""
    return S if other_caches_have_copy else E


def fill_state_for_write() -> int:
    """State installed after a BusRdX fill: always M."""
    return M


# ---------------------------------------------------------------------------
# Snoop-side transitions: (state, observed txn) -> (next state, actions).
# Lines in I/OFF ignore snoops.  Flushing M on a BusRd also writes the line
# back to memory (plain MESI: memory picks up the flushed data).
# ---------------------------------------------------------------------------
SNOOP: Dict[Tuple[int, int], Transition] = {
    (M, BUS_RD): (S, A_FLUSH | A_WRITEBACK),
    (M, BUS_RDX): (I, A_FLUSH),
    (E, BUS_RD): (S, A_NONE),
    (E, BUS_RDX): (I, A_NONE),
    (S, BUS_RD): (S, A_NONE),
    (S, BUS_RDX): (I, A_NONE),
    (S, BUS_UPGR): (I, A_NONE),
    # E/M cannot observe an upgrade for a line they own exclusively: an
    # upgrade is only legal from S, which contradicts exclusivity.  The
    # engine treats those as protocol errors (see snoop()).
}

#: Snoop transitions for lines caught in a turn-off transient.  A remote
#: invalidation (BusRdX/BusUpgr) aborts the turn-off — the line is dying
#: anyway — while a BusRd on TD must supply the dirty data exactly like M
#: (the writeback in flight has not reached memory yet).
SNOOP_TRANSIENT: Dict[Tuple[int, int], Transition] = {
    (TD, BUS_RD): (S, A_FLUSH | A_WRITEBACK),   # abort gating; demote like M
    (TD, BUS_RDX): (I, A_FLUSH),
    (TC, BUS_RD): (TC, A_NONE),                  # clean: memory supplies
    (TC, BUS_RDX): (I, A_NONE),
    (TC, BUS_UPGR): (I, A_NONE),
}


# ---------------------------------------------------------------------------
# Turn-off extension (dashed edges of Figure 2)
# ---------------------------------------------------------------------------
#: Turn-off signal on a stationary state: M enters TD (writeback + upper-
#: level invalidation pending); S/E enter TC (upper-level invalidation
#: only).  I gates directly — that edge is what the Protocol technique
#: rides: a line the protocol just invalidated is switched off for free.
TURN_OFF: Dict[int, Transition] = {
    M: (TD, A_INV_UPPER | A_WRITEBACK),
    E: (TC, A_INV_UPPER),
    S: (TC, A_INV_UPPER),
    I: (OFF, A_GATE),
}

#: Grant (completion of the upper-level invalidation / writeback): the
#: transient resolves and the line is gated.  "Grant/Flush" on TD per the
#: diagram — the flush is the memory writeback completing.
GRANT: Dict[int, Transition] = {
    TD: (OFF, A_GATE | A_FLUSH),
    TC: (OFF, A_GATE),
}


class ProtocolError(Exception):
    """An impossible (state, event) combination was observed."""


class MESIProtocol:
    """Stateless MESI+turn-off decision engine.

    All methods are pure functions of the inputs; per-line state lives in
    the cache arrays.  The class exists so alternative protocols (e.g. a
    MOESI variant, mentioned in paper §III) can be swapped in by the
    hierarchy without touching call sites.
    """

    name = "mesi-turnoff"

    # -- processor side -------------------------------------------------
    def read_hit(self, state: int) -> Transition:
        """PrRd hitting a valid line."""
        try:
            return PROC_READ_HIT[state]
        except KeyError:
            raise ProtocolError(f"read_hit in state {name(state)}") from None

    def write_hit(self, state: int) -> Tuple[int, int, int | None]:
        """PrWr hitting a valid line.

        Returns ``(next_state, actions, bus_txn)`` where ``bus_txn`` is the
        transaction the requester must issue first (``None`` if silent).
        """
        try:
            nxt, act = PROC_WRITE_HIT[state]
        except KeyError:
            raise ProtocolError(f"write_hit in state {name(state)}") from None
        return nxt, act, WRITE_HIT_BUS_TXN[state]

    def miss_txn(self, is_write: bool) -> int:
        """Bus transaction for a miss."""
        return BUS_RDX if is_write else BUS_RD

    def fill_state(self, is_write: bool, others_have_copy: bool) -> int:
        """State installed when the fill returns."""
        if is_write:
            return fill_state_for_write()
        return fill_state_for_read(others_have_copy)

    # -- snoop side -------------------------------------------------------
    def snoop(self, state: int, txn: int) -> Transition:
        """Remote transaction ``txn`` observed while the line is in ``state``.

        Lines in I/OFF ignore snoops (no copy to act on).
        """
        if state == I or state == OFF:
            return (state, A_NONE)
        hit = SNOOP.get((state, txn))
        if hit is not None:
            return hit
        hit = SNOOP_TRANSIENT.get((state, txn))
        if hit is not None:
            return hit
        if txn == BUS_UPGR:
            # An upgrade can race only against S; seeing it in E/M/TC/TD
            # means two caches believed they had exclusive rights.
            raise ProtocolError(f"BusUpgr snooped in state {name(state)}")
        raise ProtocolError(f"snoop({name(state)}, txn={txn})")

    # -- turn-off side ----------------------------------------------------
    def turn_off(self, state: int) -> Transition:
        """External turn-off signal (decay logic or protocol invalidation).

        Stationary states transition per Figure 2; transient states defer
        (``A_DEFER``): "If the line is in any transient state, it must wait
        to reach the next stationary state."  OFF is idempotent.
        """
        if state == OFF:
            return (OFF, A_NONE)
        if is_stationary(state) or state == I:
            return TURN_OFF[state]
        return (state, A_DEFER)

    def grant(self, state: int) -> Transition:
        """Completion of the pending upper-level invalidation/writeback."""
        try:
            return GRANT[state]
        except KeyError:
            raise ProtocolError(f"grant in state {name(state)}") from None

    # -- wake -------------------------------------------------------------
    def wake_state(self) -> int:
        """State of a gated frame after re-powering, before the fill lands."""
        return I
