"""Coherence substrate: MESI snoopy protocol, turn-off extension, shared bus.

Implements the paper's §III: the MESI diagram of Figure 2 including the
TC/TD turn-off transients, the Table I legality matrix, and the pipelined
half-clock shared bus the private L2s snoop on.
"""

from . import events, states
from .bus import BusConfig, BusStats, SnoopyBus
from .mesi import MESIProtocol, ProtocolError
from .turnoff import (
    ALREADY_OFF,
    DEFERRED,
    DENIED_PENDING,
    DONE,
    IN_TRANSIENT,
    MULTIPROCESSOR_WT,
    ORGANISATIONS,
    UNIPROCESSOR_WB,
    UNIPROCESSOR_WT,
    TurnOffDecision,
    TurnOffResult,
    TurnOffSequencer,
    decide,
    table_rows,
)

__all__ = [
    "events",
    "states",
    "BusConfig",
    "BusStats",
    "SnoopyBus",
    "MESIProtocol",
    "ProtocolError",
    "ALREADY_OFF",
    "DEFERRED",
    "DENIED_PENDING",
    "DONE",
    "IN_TRANSIENT",
    "MULTIPROCESSOR_WT",
    "ORGANISATIONS",
    "UNIPROCESSOR_WB",
    "UNIPROCESSOR_WT",
    "TurnOffDecision",
    "TurnOffResult",
    "TurnOffSequencer",
    "decide",
    "table_rows",
]
