"""Coherence state codes.

The L2 caches implement MESI extended with the paper's turn-off machinery
(Figure 2):

* ``I``  — invalid, but the SRAM line is still powered (leaking).
* ``S``  — shared, clean; other private L2s may hold copies.
* ``E``  — exclusive, clean; no other copy exists.
* ``M``  — modified, dirty; the only valid copy in the system.
* ``OFF`` — invalid *and* power-gated (Gated-Vdd).  The paper implements
  gating through the valid bit: "a line is effectively switched off when it
  goes to the Invalid state" with the gate transistor driven by it.  We keep
  ``OFF`` distinct from ``I`` so occupancy (fraction of line-cycles powered)
  can be accounted exactly.
* ``TC`` — Transient Clean: a clean (S/E) line whose upper-level (L1) copy
  is being invalidated prior to gating.
* ``TD`` — Transient Dirty: a Modified line being written back and whose L1
  copy is being invalidated prior to gating.

State-code integers are part of the public API: leakage policies and the
simulator hot path switch on them directly.
"""

from __future__ import annotations

# Stationary states -----------------------------------------------------
I = 0  # noqa: E741  - matches the paper's naming
S = 1
E = 2
M = 3
# Power-gated ------------------------------------------------------------
OFF = 4
# Turn-off transients (Figure 2) ------------------------------------------
TC = 5
TD = 6

#: Names for pretty-printing and test diagnostics.
STATE_NAMES = {I: "I", S: "S", E: "E", M: "M", OFF: "OFF", TC: "TC", TD: "TD"}

#: States a processor access can hit on.
VALID_STATES = (S, E, M)

#: States from which a turn-off signal may be honoured immediately
#: ("The turn-off signal may trigger a state transition only from a
#: 'stationary' state, that is Modified, Exclusive, Shared" — paper §III).
STATIONARY_STATES = (S, E, M)

#: Transient states: the line must reach the next stationary state before
#: the turn-off can proceed.
TRANSIENT_STATES = (TC, TD)

#: States in which the SRAM cells are powered (leak).
POWERED_STATES = (I, S, E, M, TC, TD)


def name(state: int) -> str:
    """Readable name of a state code."""
    return STATE_NAMES.get(state, f"?{state}")


def is_valid(state: int) -> bool:
    """True when a line in ``state`` holds usable data."""
    return state == S or state == E or state == M


def is_stationary(state: int) -> bool:
    """True when the turn-off signal may act on the line right now."""
    return state == S or state == E or state == M


def is_transient(state: int) -> bool:
    """True for the Figure-2 turn-off transients TC/TD."""
    return state == TC or state == TD


def is_powered(state: int) -> bool:
    """True when the line's SRAM cells are connected to the supply."""
    return state != OFF


def is_dirty(state: int) -> bool:
    """True when gating the line requires a writeback (M, or TD mid-flight)."""
    return state == M or state == TD


# L1 states --------------------------------------------------------------
# The write-through L1 never holds dirty data; a single valid bit suffices.
L1_INVALID = 0
L1_VALID = 1
