"""Bus transactions, processor events, and protocol action flags.

The MESI engine (:mod:`repro.coherence.mesi`) is written as explicit
transition tables keyed by these codes; the snoopy bus accounts traffic by
transaction kind.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Processor-side events (PrRd / PrWr in the paper's Figure 2 labels)
# ---------------------------------------------------------------------------
PR_RD = 0
PR_WR = 1

# ---------------------------------------------------------------------------
# Bus transaction kinds
# ---------------------------------------------------------------------------
BUS_RD = 0     #: read miss — fetch a line with intent to read
BUS_RDX = 1    #: read-exclusive — fetch a line with intent to write
BUS_UPGR = 2   #: upgrade — S -> M invalidation broadcast, no data transfer
BUS_WB = 3     #: explicit writeback of a dirty line to memory
BUS_FLUSH = 4  #: cache-to-cache supply of a dirty line during a snoop

TXN_NAMES = {
    BUS_RD: "BusRd",
    BUS_RDX: "BusRdX",
    BUS_UPGR: "BusUpgr",
    BUS_WB: "BusWB",
    BUS_FLUSH: "Flush",
}

#: Transactions that move a full cache line of data over the bus.
DATA_TXNS = frozenset({BUS_RD, BUS_RDX, BUS_WB, BUS_FLUSH})

#: Transactions that also touch the external memory port (off-chip traffic).
#: BusRd/BusRdX read from memory unless another cache supplies the data;
#: writebacks always reach memory (MESI has no Owned state to defer them).
MEMORY_TXNS = frozenset({BUS_RD, BUS_RDX, BUS_WB})


def txn_name(kind: int) -> str:
    """Readable name of a bus transaction kind."""
    return TXN_NAMES.get(kind, f"?{kind}")


# ---------------------------------------------------------------------------
# Protocol action flags (bitmask returned by the transition tables)
# ---------------------------------------------------------------------------
A_NONE = 0
A_FLUSH = 1 << 0        #: supply the line on the bus (cache-to-cache)
A_WRITEBACK = 1 << 1    #: write the line back to memory
A_INV_UPPER = 1 << 2    #: invalidate the corresponding L1 line (inclusion)
A_GATE = 1 << 3         #: power-gate the line (valid bit -> Gated-Vdd)
A_DEFER = 1 << 4        #: request cannot proceed; retry at next stationary state

ACTION_NAMES = {
    A_FLUSH: "Flush",
    A_WRITEBACK: "WritebackMem",
    A_INV_UPPER: "InvUpp",
    A_GATE: "Gate",
    A_DEFER: "Defer",
}


def action_names(mask: int) -> str:
    """Render an action bitmask, e.g. ``"Flush|InvUpp"`` (``"-"`` when empty)."""
    if not mask:
        return "-"
    parts = [nm for bit, nm in ACTION_NAMES.items() if mask & bit]
    return "|".join(parts)
