"""Configuration dataclasses for the CMP simulator.

The default values reproduce the paper's §V setup: a 4-core CMP of
Alpha-21264-class out-of-order cores, private write-through L1s with write
buffers, private inclusive MESI-snoopy L2s (256 KB – 2 MB per core), a
pipelined half-clock shared bus, and the three leakage techniques with
decay times of 512K/128K/64K cycles.

``CMPConfig`` instances are immutable and hashable so the experiment
harness can key its result cache on them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..coherence.bus import BusConfig


def stable_digest(text: str) -> str:
    """Process-independent hex digest of a cache-key string.

    The result cache shards entries by a prefix of this digest, and pool
    workers compute it independently of the parent process — so it must
    not depend on ``PYTHONHASHSEED`` (``hash()`` does; sha1 does not).
    """
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Technique names (paper §IV)
# ---------------------------------------------------------------------------
BASELINE = "baseline"                 #: unoptimized, L2 always powered
PROTOCOL = "protocol"                 #: Turn off on Protocol Invalidation
DECAY = "decay"                       #: fixed decay (Kaxiras) on a coherent L2
SELECTIVE_DECAY = "selective_decay"   #: decay armed only entering S/E

TECHNIQUES = (BASELINE, PROTOCOL, DECAY, SELECTIVE_DECAY)

#: Decay counter implementations.
COUNTER_IDEAL = "ideal"               #: exact per-line timers
COUNTER_HIERARCHICAL = "hierarchical"  #: global tick + 2-bit line counters


@dataclass(frozen=True)
class TechniqueConfig:
    """Leakage-saving technique selection.

    ``decay_cycles`` is the nominal decay time in core cycles (ignored for
    baseline/protocol).  ``counter_mode`` selects ideal timers or the
    Kaxiras hierarchical-counter hardware with its quantization:
    ``counter_bits``-bit per-line counters driven by a global tick of
    ``decay_cycles / 2**counter_bits`` cycles.
    """

    name: str = BASELINE
    decay_cycles: int = 512_000
    counter_mode: str = COUNTER_IDEAL
    counter_bits: int = 2

    def __post_init__(self) -> None:
        if self.name not in TECHNIQUES:
            raise ValueError(f"unknown technique {self.name!r}; one of {TECHNIQUES}")
        if self.name in (DECAY, SELECTIVE_DECAY) and self.decay_cycles < 1:
            raise ValueError("decay_cycles must be positive for decay techniques")
        if self.counter_mode not in (COUNTER_IDEAL, COUNTER_HIERARCHICAL):
            raise ValueError(f"unknown counter_mode {self.counter_mode!r}")
        if not (1 <= self.counter_bits <= 8):
            raise ValueError("counter_bits must be in [1, 8]")

    @property
    def is_decay_based(self) -> bool:
        """True for Decay and Selective Decay."""
        return self.name in (DECAY, SELECTIVE_DECAY)

    @property
    def gates_lines(self) -> bool:
        """True for every technique except the always-on baseline."""
        return self.name != BASELINE

    def label(self) -> str:
        """Paper-style label, e.g. ``decay512K`` / ``sel_decay64K`` / ``protocol``."""
        if not self.is_decay_based:
            return self.name
        k = self.decay_cycles // 1000
        prefix = "decay" if self.name == DECAY else "sel_decay"
        return f"{prefix}{k}K"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict, the inverse of :meth:`from_dict`.

        Every field is emitted (no default elision) so the serialized
        form is stable under default changes — a spec file written today
        resolves to the same hardware tomorrow.
        """
        return {
            "name": self.name,
            "decay_cycles": self.decay_cycles,
            "counter_mode": self.counter_mode,
            "counter_bits": self.counter_bits,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TechniqueConfig":
        """Rebuild a technique from :meth:`to_dict` output (validating)."""
        if not isinstance(data, dict):
            raise ValueError(f"technique must be a table/dict, got {data!r}")
        unknown = set(data) - {"name", "decay_cycles", "counter_mode", "counter_bits"}
        if unknown:
            raise ValueError(
                f"unknown technique fields: {', '.join(sorted(unknown))}"
            )
        if "name" not in data:
            raise ValueError("technique table needs a 'name' field")
        return cls(
            name=str(data["name"]),
            decay_cycles=int(data.get("decay_cycles", 512_000)),
            counter_mode=str(data.get("counter_mode", COUNTER_IDEAL)),
            counter_bits=int(data.get("counter_bits", 2)),
        )


@dataclass(frozen=True)
class CoreConfig:
    """Simplified out-of-order core timing model (see DESIGN.md §4).

    The model charges compute gaps at ``issue_width`` instructions/cycle
    and exposes memory latency beyond a per-access *overlap budget* that
    abstracts the 21264's ROB/LSQ latency hiding.  Budgets differ by the
    workload-declared ILP class of each access: dependent (pointer-chase)
    loads hide almost nothing, streaming accesses hide most of a miss.
    """

    issue_width: int = 4
    overlap_dependent: int = 10    #: cycles hidden for dependent loads
    overlap_moderate: int = 120     #: cycles hidden for moderate-ILP loads
    overlap_streaming: int = 200   #: cycles hidden for streaming loads
    l1_mshr_entries: int = 8
    write_buffer_entries: int = 8
    write_buffer_drain_cycles: int = 6  #: min cycles before a buffered store drains
    barrier_cost: int = 100        #: cycles to cross a barrier after the last arrival

    def overlap_for(self, ilp_class: int) -> int:
        """Overlap budget for an access's ILP class (0/1/2)."""
        if ilp_class <= 0:
            return self.overlap_dependent
        if ilp_class == 1:
            return self.overlap_moderate
        return self.overlap_streaming


@dataclass(frozen=True)
class L1Config:
    """Private write-through L1 data cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    assoc: int = 4
    hit_latency: int = 2
    policy: str = "lru"


@dataclass(frozen=True)
class L2Config:
    """Private inclusive L2 cache (per core).

    ``decay_access_penalty`` is the extra cycle the paper charges on every
    access to a decay-enabled cache (§V, citing Powell's Gated-Vdd).
    """

    size_bytes: int = 1024 * 1024
    line_bytes: int = 64
    assoc: int = 8
    hit_latency: int = 12
    policy: str = "lru"
    decay_access_penalty: int = 1


@dataclass(frozen=True)
class MemoryConfig:
    """External memory port (to L3 or main memory)."""

    latency: int = 200             #: core cycles for the first word
    bytes_per_cycle: float = 8.0   #: sustainable external bandwidth
    contention: bool = True        #: model channel occupancy


@dataclass(frozen=True)
class CMPConfig:
    """Complete system configuration."""

    n_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    bus: BusConfig = field(default_factory=BusConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    technique: TechniqueConfig = field(default_factory=TechniqueConfig)
    seed: int = 1
    track_values: bool = False       #: enable the coherence value oracle
    sample_interval: int = 0         #: cycles per activity sample (0 = off)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError(
                "L1 and L2 line sizes must match (the paper's inclusion "
                "scheme assumes equal lines; see §III on partial writes)"
            )

    # -- convenience constructors ----------------------------------------
    @property
    def total_l2_bytes(self) -> int:
        """Aggregate L2 capacity across cores."""
        return self.n_cores * self.l2.size_bytes

    def with_technique(self, technique: TechniqueConfig) -> "CMPConfig":
        """Copy of this config running ``technique``."""
        return replace(self, technique=technique)

    def with_total_l2_mb(self, total_mb: int) -> "CMPConfig":
        """Copy with the paper's per-core split of ``total_mb`` MB of L2."""
        per_core = (total_mb * 1024 * 1024) // self.n_cores
        return replace(self, l2=replace(self.l2, size_bytes=per_core))

    def key(self) -> str:
        """Stable string key for result caching."""
        t = self.technique
        return (
            f"c{self.n_cores}-l1{self.l1.size_bytes // 1024}K{self.l1.assoc}w"
            f"-l2{self.l2.size_bytes // 1024}K{self.l2.assoc}w"
            f"-{t.label()}-{t.counter_mode}{t.counter_bits}"
            f"-m{self.memory.latency}-s{self.seed}"
        )

    def key_digest(self, context: str = "") -> str:
        """Hex digest of :meth:`key` (plus harness context such as the
        workload name and scale) — the cache-shard selector."""
        return stable_digest(context + self.key())


# ---------------------------------------------------------------------------
# The paper's evaluated configurations
# ---------------------------------------------------------------------------

#: Total L2 capacities evaluated in the paper (§VI), in MB.
PAPER_TOTAL_L2_MB: Tuple[int, ...] = (1, 2, 4, 8)

#: Decay times evaluated in the paper, in cycles.
PAPER_DECAY_CYCLES: Tuple[int, ...] = (512_000, 128_000, 64_000)


def paper_techniques(scale: float = 1.0) -> Dict[str, TechniqueConfig]:
    """The seven technique configurations of the paper's figures.

    ``scale`` multiplies the decay times; the harness uses it together with
    workload time-dilation so short CI runs keep the paper's occupancy and
    miss-rate shapes (see DESIGN.md §5).  Labels keep the *nominal* decay
    times so bench output matches the paper's figure legends.
    """
    out: Dict[str, TechniqueConfig] = {
        "protocol": TechniqueConfig(name=PROTOCOL),
    }
    for d in PAPER_DECAY_CYCLES:
        scaled = max(1, int(round(d * scale)))
        k = d // 1000
        out[f"decay{k}K"] = TechniqueConfig(name=DECAY, decay_cycles=scaled)
        out[f"sel_decay{k}K"] = TechniqueConfig(
            name=SELECTIVE_DECAY, decay_cycles=scaled
        )
    return out


def paper_technique_order() -> Tuple[str, ...]:
    """Left-to-right technique order used by every figure of the paper."""
    return (
        "protocol",
        "decay512K",
        "decay128K",
        "decay64K",
        "sel_decay512K",
        "sel_decay128K",
        "sel_decay64K",
    )
