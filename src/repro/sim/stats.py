"""Statistics collected during simulation.

Plain mutable dataclasses of counters, one per hardware structure, plus the
:class:`SimResult` aggregate the harness consumes.  Derived metrics
(occupancy, miss rates, AMAT, bandwidth, energy) are computed *from* these
counters by :mod:`repro.harness.metrics` and :mod:`repro.power.energy` —
the simulator only counts events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class L1Stats:
    """Per-core L1 activity."""

    loads: int = 0
    stores: int = 0
    load_hits: int = 0
    store_hits: int = 0          #: write-through store that found the line in L1
    load_misses: int = 0
    fills: int = 0
    evictions: int = 0
    upper_invalidations: int = 0  #: L1 lines dropped because L2 gated/invalidated
    load_latency_sum: int = 0     #: Σ full load latency (AMAT numerator)
    mshr_merges: int = 0

    @property
    def load_miss_rate(self) -> float:
        """L1 load miss ratio."""
        return self.load_misses / self.loads if self.loads else 0.0

    @property
    def amat(self) -> float:
        """Average (load) memory access time in cycles."""
        return self.load_latency_sum / self.loads if self.loads else 0.0


@dataclass
class L2Stats:
    """Per-cache L2 activity.

    ``gated_*`` counters split turn-offs by cause; ``decay_induced_misses``
    counts misses whose line would still have been resident under LRU had
    it not been gated (ghost-entry attribution, DESIGN.md §5).
    """

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    decay_induced_misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0            #: dirty lines written to memory (any cause)
    cache_to_cache: int = 0        #: fills supplied by a sibling's flush
    snoops_observed: int = 0
    snoop_invalidations: int = 0   #: lines invalidated by remote BusRdX/BusUpgr
    gated_protocol: int = 0        #: turn-offs riding a protocol invalidation
    gated_decay_clean: int = 0     #: decay turn-offs of S/E lines
    gated_decay_dirty: int = 0     #: decay turn-offs of M lines (TD path)
    gate_denied_pending: int = 0   #: Table I "pending write" denials
    gate_deferred_transient: int = 0
    wakes: int = 0                 #: fills that re-powered a gated frame
    upper_invalidations: int = 0   #: L1 invalidations this L2 commanded
    on_line_cycles: int = 0        #: Σ_lines powered-on cycles (occupancy numerator)

    @property
    def accesses(self) -> int:
        """Total demand accesses (reads + write-buffer drains)."""
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all L2 accesses."""
        acc = self.accesses
        return self.misses / acc if acc else 0.0

    @property
    def gated_total(self) -> int:
        """All turn-offs regardless of cause."""
        return (
            self.gated_protocol + self.gated_decay_clean + self.gated_decay_dirty
        )


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    exposed_memory_cycles: int = 0  #: stall beyond the overlap budget
    mshr_stall_cycles: int = 0
    wb_full_stall_cycles: int = 0
    barrier_wait_cycles: int = 0
    barriers: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class MemoryStats:
    """External memory port traffic (the paper's Fig 4(a) bandwidth)."""

    line_reads: int = 0
    line_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_cycles: int = 0

    @property
    def total_bytes(self) -> int:
        """All off-chip traffic in bytes."""
        return self.bytes_read + self.bytes_written


@dataclass
class ActivitySample:
    """Per-interval activity snapshot used by the transient thermal model."""

    interval: int
    core_instructions: List[int]
    l2_on_line_cycles: List[int]
    l2_accesses: List[int]


@dataclass
class SimResult:
    """Everything a simulation run produced.

    The harness serializes this (via :meth:`to_dict`) into the result
    cache; the energy pipeline consumes it together with the config.
    """

    config_key: str
    workload_name: str
    total_cycles: int = 0
    n_lines_per_l2: int = 0
    l1: List[L1Stats] = field(default_factory=list)
    l2: List[L2Stats] = field(default_factory=list)
    cores: List[CoreStats] = field(default_factory=list)
    memory: MemoryStats = field(default_factory=MemoryStats)
    bus_txn_counts: Dict[str, int] = field(default_factory=dict)
    bus_data_bytes: int = 0
    bus_busy_cycles: int = 0
    decay_counter_resets: int = 0   #: per-line counter reset events (energy)
    decay_counter_ticks: int = 0    #: global-tick distribution events (energy)
    samples: List[ActivitySample] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Paper metrics (raw; ratios vs. baseline are computed by the harness)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Aggregate L2 occupation rate (paper Fig 3(a) definition).

        ``Σ_j Σ_i on_cycles_ij / (#L2s × #lines × total_cycles)``.
        """
        if not self.l2 or not self.total_cycles or not self.n_lines_per_l2:
            return 0.0
        num = sum(s.on_line_cycles for s in self.l2)
        den = len(self.l2) * self.n_lines_per_l2 * self.total_cycles
        return num / den

    @property
    def l2_miss_rate(self) -> float:
        """Aggregate L2 miss rate over all private L2s (Fig 3(b))."""
        acc = sum(s.accesses for s in self.l2)
        miss = sum(s.misses for s in self.l2)
        return miss / acc if acc else 0.0

    @property
    def memory_bytes_per_cycle(self) -> float:
        """Off-chip traffic density (Fig 4(a) numerator)."""
        if not self.total_cycles:
            return 0.0
        return self.memory.total_bytes / self.total_cycles

    @property
    def amat(self) -> float:
        """Load AMAT averaged over cores, weighted by load count (Fig 4(b))."""
        loads = sum(s.loads for s in self.l1)
        lat = sum(s.load_latency_sum for s in self.l1)
        return lat / loads if loads else 0.0

    @property
    def ipc(self) -> float:
        """System IPC: total committed instructions / parallel run time."""
        if not self.total_cycles:
            return 0.0
        return sum(c.instructions for c in self.cores) / self.total_cycles

    @property
    def total_instructions(self) -> int:
        """Committed instructions across all cores."""
        return sum(c.instructions for c in self.cores)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation (result cache format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "SimResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            config_key=d["config_key"],
            workload_name=d["workload_name"],
            total_cycles=d["total_cycles"],
            n_lines_per_l2=d["n_lines_per_l2"],
            l1=[L1Stats(**x) for x in d["l1"]],
            l2=[L2Stats(**x) for x in d["l2"]],
            cores=[CoreStats(**x) for x in d["cores"]],
            memory=MemoryStats(**d["memory"]),
            bus_txn_counts=dict(d.get("bus_txn_counts", {})),
            bus_data_bytes=d.get("bus_data_bytes", 0),
            bus_busy_cycles=d.get("bus_busy_cycles", 0),
            decay_counter_resets=d.get("decay_counter_resets", 0),
            decay_counter_ticks=d.get("decay_counter_ticks", 0),
            samples=[ActivitySample(**s) for s in d.get("samples", [])],
        )

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"workload={self.workload_name} config={self.config_key}",
            f"cycles={self.total_cycles:,} IPC={self.ipc:.3f} "
            f"instr={self.total_instructions:,}",
            f"L2 occupancy={self.occupancy:.1%} miss-rate={self.l2_miss_rate:.2%}",
            f"AMAT={self.amat:.2f}cy mem-traffic={self.memory_bytes_per_cycle:.3f} B/cy",
        ]
        return "\n".join(lines)
