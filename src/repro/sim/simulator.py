"""Top-level CMP simulator: global-time interleaving of cores, drains, decay.

The engine is event-driven at memory-operation granularity.  Three event
sources exist, merged in exact global-time order:

* **cores** — each exposes ``next_time``, the cycle its next memory op (or
  barrier) issues (one-record lookahead);
* **write-buffer drains** — background L2 writes, ready at fixed delay
  after insertion, which is how write-through stores become globally
  visible;
* **decay events** — the lazy per-frame heap of
  :class:`~repro.core.decay.DecayScheduler`; all events due before the
  next core/drain action fire first, time-stamped with their exact
  deadlines, so occupancy integrals are cycle-accurate.

Core and drain events are merged through an **incremental next-event
heap** rather than a per-event scan of every core and write buffer: a
dispatched core pushes its updated ``next_time`` back (its times strictly
increase while RUNNING — see :mod:`repro.cpu.core`), and each L1 flags
drain-deadline changes which the loop converts into heap entries
(:meth:`~repro.hierarchy.l1.L1Cache.consume_drain_event`).  Entries are
invalidated lazily: a popped entry whose time no longer matches its
actor's current deadline is discarded.  Heap keys ``(time, kind, index)``
with cores as kind 0 reproduce the historical scan's tie-breaking exactly
(cores before drains, lower index first), so results are bit-identical to
the O(n)-scan engine this replaced.

Barriers release when every live core has arrived and all write buffers
have drained; the release charges the configured synchronization cost.

``run`` optionally skips a warmup prefix (the paper collects statistics
"after skipping initialization") by zeroing every counter the first time
all cores have executed their warmup share of accesses.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

from ..coherence.events import TXN_NAMES, txn_name
from ..cpu.core import AT_BARRIER, DONE, RUNNING, Core
from ..hierarchy.system import MemorySystem
from ..workloads.trace import Workload
from .config import CMPConfig
from .stats import ActivitySample, SimResult

_INF = float("inf")


class Simulator:
    """Runs one workload on one configuration."""

    def __init__(self, cfg: CMPConfig) -> None:
        self.cfg = cfg
        self.system = MemorySystem(cfg)
        self.cores: List[Core] = []

    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        warmup_fraction: float = 0.0,
        max_events: Optional[int] = None,
        check_invariants_every: int = 0,
    ) -> SimResult:
        """Simulate ``workload`` to completion and return the results.

        ``warmup_fraction`` ∈ [0, 1): fraction of each core's accesses to
        execute before statistics start.  ``max_events`` is a safety valve
        for tests (raises if the event budget is exhausted).
        ``check_invariants_every``: when > 0, run the full system
        invariant suite (coherence single-writer, inclusion, occupancy
        consistency) every N events — a debugging/validation mode used by
        the test-suite; expensive, off by default.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        cfg = self.cfg
        system = self.system
        streams = workload.streams(cfg.n_cores)
        if len(streams) != cfg.n_cores:
            raise ValueError(
                f"workload provides {len(streams)} streams for {cfg.n_cores} cores"
            )
        self.cores = [
            Core(i, cfg, system.l1s[i], streams[i]) for i in range(cfg.n_cores)
        ]
        cores = self.cores
        l1s = system.l1s
        scheduler = system.scheduler
        sched_heap = scheduler._heap
        process_decay = scheduler.process_until
        fire_turn_off = system._fire_turn_off
        write_buffers = [l1.write_buffer for l1 in l1s]
        decay_enabled = cfg.technique.is_decay_based

        warmup_target = int(warmup_fraction * workload.meta.accesses_per_core)
        warmup_done = warmup_target == 0
        warmup_time = 0

        last_event_time = 0
        events = 0

        # ---- incremental next-event heap -------------------------------
        # Entries are (time, kind, index) with kind 0 = core, 1 = drain;
        # tuple order reproduces the legacy scan's tie-breaking (cores
        # before same-cycle drains, lower index first).  Stale entries are
        # skipped on pop by re-checking the actor's current deadline.
        heap: List[tuple] = []
        for i, core in enumerate(cores):
            if core.state == RUNNING:
                heappush(heap, (core.next_time, 0, i))
            dr = l1s[i].consume_drain_event()
            if dr is not None and dr >= 0:
                heappush(heap, (dr, 1, i))

        while True:
            events += 1
            if max_events is not None and events > max_events:
                raise RuntimeError(f"event budget exhausted ({max_events})")
            if check_invariants_every and events % check_invariants_every == 0:
                system.check_invariants()

            # ---- pop the earliest still-valid event --------------------
            actor_kind = -1  # 0=core, 1=drain
            actor_idx = -1
            t_min = _INF
            while heap:
                t, kind, idx = heap[0]
                if kind == 0:
                    core = cores[idx]
                    if core.state == RUNNING and core.next_time == t:
                        heappop(heap)
                        actor_kind, actor_idx, t_min = 0, idx, t
                        break
                elif write_buffers[idx]._head_ready == t:
                    heappop(heap)
                    actor_kind, actor_idx, t_min = 1, idx, t
                    break
                heappop(heap)  # stale: actor's deadline moved on

            if actor_kind < 0:
                # No runnable core, no pending drain: barrier or completion.
                live = [c for c in cores if c.state == AT_BARRIER]
                if not live:
                    break  # all cores DONE and buffers empty
                release = max(c.barrier_arrival for c in live) + cfg.core.barrier_cost
                if decay_enabled:
                    system.process_decay_until(release)
                for c in live:
                    c.release_barrier(release)
                    if c.state == RUNNING:
                        heappush(heap, (c.next_time, 0, c.core_id))
                last_event_time = max(last_event_time, release)
                continue

            # ---- decay events strictly before the action fire first ----
            if decay_enabled and sched_heap and sched_heap[0][0] <= t_min:
                process_decay(int(t_min), fire_turn_off)

            # ---- dispatch ----------------------------------------------
            if actor_kind == 0:
                core = cores[actor_idx]
                core.step()
                if core.state == RUNNING:
                    heappush(heap, (core.next_time, 0, actor_idx))
                if core.cycle > last_event_time:
                    last_event_time = core.cycle
            else:
                l1s[actor_idx].drain_one(int(t_min))
                if t_min > last_event_time:
                    last_event_time = int(t_min)
            # the step/drain may have moved this L1's drain deadline
            dr = l1s[actor_idx].consume_drain_event()
            if dr is not None and dr >= 0:
                heappush(heap, (dr, 1, actor_idx))

            # ---- warmup boundary ----------------------------------------
            if not warmup_done and actor_kind == 0:
                # The full scan can only succeed when the acting core
                # itself satisfies the condition (the others are unchanged
                # since the last core event), so gate on it first.
                core = cores[actor_idx]
                if (
                    core.accesses_done >= warmup_target or core.state == DONE
                ) and all(
                    c.accesses_done >= warmup_target or c.state == DONE
                    for c in cores
                ):
                    warmup_time = int(t_min)
                    system.reset_stats(warmup_time)
                    for c in cores:
                        c.rebase_stats()
                    warmup_done = True

        # ---- wind down --------------------------------------------------
        end_time = int(max(last_event_time, max(c.cycle for c in cores)))
        if decay_enabled:
            system.process_decay_until(end_time)
        system.finalize(end_time)
        for c in cores:
            c.finalize_stats()

        return self._collect(workload, end_time - warmup_time)

    # ------------------------------------------------------------------
    def _collect(self, workload: Workload, total_cycles: int) -> SimResult:
        cfg = self.cfg
        system = self.system
        res = SimResult(
            config_key=cfg.key(),
            workload_name=workload.name,
            total_cycles=max(1, total_cycles),
            n_lines_per_l2=system.l2s[0].geom.n_lines,
            l1=[l1.stats for l1 in system.l1s],
            l2=[l2.stats for l2 in system.l2s],
            cores=[c.stats for c in self.cores],
            memory=system.memory.stats,
            bus_txn_counts={
                # memoized name lookup: the TXN_NAMES table *is* txn_name's
                # mapping; going through the function re-formats the
                # fallback string on every call for unknown kinds
                TXN_NAMES.get(k) or txn_name(k): v
                for k, v in system.bus.stats.txn_counts.items()
            },
            bus_data_bytes=system.bus.stats.data_bytes,
            bus_busy_cycles=system.bus.stats.busy_core_cycles,
        )
        if cfg.technique.is_decay_based:
            res.decay_counter_resets = sum(p.counter_resets for p in system.policies)
            tick = max(1, cfg.technique.decay_cycles >> cfg.technique.counter_bits)
            res.decay_counter_ticks = (total_cycles // tick) * cfg.n_cores
        if cfg.sample_interval:
            res.samples = self._collect_samples()
        return res

    def _collect_samples(self) -> List[ActivitySample]:
        iv = self.cfg.sample_interval
        core_b = [c.instr_buckets() for c in self.cores]
        occ_b = [l2.occupancy.bucket_integrals() for l2 in self.system.l2s]
        acc_b = [l2.access_buckets() for l2 in self.system.l2s]
        # One padding pass over all bucket lists (they are private copies,
        # so in-place extension is safe), instead of rebuilding each list.
        n = max(map(len, core_b + occ_b + acc_b), default=0)
        for b in core_b + occ_b + acc_b:
            if len(b) < n:
                b.extend([0] * (n - len(b)))
        return [
            ActivitySample(
                interval=iv,
                core_instructions=[b[k] for b in core_b],
                l2_on_line_cycles=[b[k] for b in occ_b],
                l2_accesses=[b[k] for b in acc_b],
            )
            for k in range(n)
        ]


def simulate(cfg: CMPConfig, workload: Workload, **kwargs) -> SimResult:
    """One-call convenience wrapper: build a Simulator and run."""
    return Simulator(cfg).run(workload, **kwargs)
