"""Deterministic fault injection for the distributed sweep backends.

Fault tolerance is only trustworthy if it is *tested*, and the failures
worth testing — a worker hard-killed mid-task, a simulation that hangs
while its TCP connection stays up, a result payload corrupted in flight —
are exactly the ones that are miserable to reproduce by hand.  This
module makes them reproducible: a :class:`FaultPlan` is a seeded,
JSON-serializable script of failures, each pinned to a named worker and
the ordinal of the task that triggers it.  Workers receive the plan
through the same channel as their runner parameters (process kwargs for
spawned workers, so plans survive the ``spawn`` start method), build a
:class:`FaultInjector`, and consult it at two seams:

* **on task receipt** (``kill``, ``hang``, ``drop``) — the worker dies,
  wedges while staying connected, or slams its connection shut;
* **on result delivery** (``corrupt``, ``delay``, ``duplicate``) — the
  worker sends a schema-garbage payload, sleeps before sending (lease
  renewal must carry it), or sends the same result twice.

Determinism is the point: the plan triggers on the Nth task *received by
that worker*, not on wall-clock time, so a chaos test injects exactly one
failure in exactly one place and then asserts the sweep still converges
to result-cache blobs byte-identical to a serial run.  The backends
accept a plan (or its dict form) via their ``fault_plan`` option and the
CLI via ``--fault-plan plan.json``, which is how the CI chaos lane
injects a worker kill into an otherwise ordinary sweep.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

#: fault kinds triggered when the matching task is received
RECEIPT_KINDS = ("kill", "hang", "drop")

#: fault kinds triggered when the matching task's result is delivered
DELIVERY_KINDS = ("corrupt", "delay", "duplicate")

#: every valid :attr:`FaultAction.kind`
FAULT_KINDS = RECEIPT_KINDS + DELIVERY_KINDS

#: exit status of a worker killed by fault injection (also what the
#: pre-plan ``crash_after_tasks`` seam used, so CI greps stay valid)
KILL_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultAction:
    """One scripted failure: ``kind`` on worker ``worker``'s Nth task.

    ``on_task`` is 1-based and counts tasks *received* by that worker
    across reconnects (a dropped-and-redelivered task counts again —
    the count follows what the worker observes, which is what a real
    flaky worker's failure ordinal would do).  ``seconds`` parameterizes
    ``hang`` (0 = wedge until the process is torn down) and ``delay``.
    """

    kind: str
    worker: str
    on_task: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        """Validate the action (kinds and ordinals are easy to typo)."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.on_task < 1:
            raise ValueError(f"on_task is 1-based, got {self.on_task}")

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "worker": self.worker,
            "on_task": self.on_task,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultAction":
        """Rebuild an action from its dict form."""
        return cls(
            kind=str(d["kind"]),
            worker=str(d["worker"]),
            on_task=int(d.get("on_task", 1)),
            seconds=float(d.get("seconds", 0.0)),
        )


class FaultPlan:
    """A seeded, serializable script of worker failures.

    Build one with the fluent helpers and hand it to a backend::

        plan = FaultPlan(seed=7).kill("local-0").corrupt("local-1", on_task=2)
        SocketWorkStealingBackend(spawn_workers=2, fault_plan=plan)

    The seed drives nothing inside the plan itself (actions are pinned
    explicitly); it seeds the deterministic jitter of the backoff the
    injected workers use, so a chaos run replays byte-for-byte.
    """

    def __init__(
        self, seed: int = 0, actions: Sequence[FaultAction] = ()
    ) -> None:
        self.seed = int(seed)
        self.actions: List[FaultAction] = list(actions)

    # -- fluent builders ------------------------------------------------
    def add(self, action: FaultAction) -> "FaultPlan":
        """Append one action (returns self for chaining)."""
        self.actions.append(action)
        return self

    def kill(self, worker: str, on_task: int = 1) -> "FaultPlan":
        """Hard-exit ``worker`` when it receives its Nth task."""
        return self.add(FaultAction("kill", worker, on_task))

    def hang(
        self, worker: str, on_task: int = 1, seconds: float = 0.0
    ) -> "FaultPlan":
        """Wedge ``worker`` (connected, silent) on its Nth task."""
        return self.add(FaultAction("hang", worker, on_task, seconds))

    def drop(self, worker: str, on_task: int = 1) -> "FaultPlan":
        """Slam ``worker``'s connection shut on its Nth task."""
        return self.add(FaultAction("drop", worker, on_task))

    def corrupt(self, worker: str, on_task: int = 1) -> "FaultPlan":
        """Deliver a schema-garbage result for ``worker``'s Nth task."""
        return self.add(FaultAction("corrupt", worker, on_task))

    def delay(
        self, worker: str, on_task: int = 1, seconds: float = 1.0
    ) -> "FaultPlan":
        """Sleep before delivering ``worker``'s Nth result."""
        return self.add(FaultAction("delay", worker, on_task, seconds))

    def duplicate(self, worker: str, on_task: int = 1) -> "FaultPlan":
        """Deliver ``worker``'s Nth result twice."""
        return self.add(FaultAction("duplicate", worker, on_task))

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form (what crosses the process boundary)."""
        return {
            "seed": self.seed,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> "FaultPlan":
        """Rebuild a plan from its dict form (``None`` -> empty plan)."""
        if d is None:
            return cls()
        return cls(
            seed=int(d.get("seed", 0)),
            actions=[FaultAction.from_dict(a) for a in d.get("actions", ())],
        )

    def to_json(self) -> str:
        """Canonical JSON text (``--fault-plan`` file format)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the ``--fault-plan`` file format."""
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file."""
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- queries --------------------------------------------------------
    def for_worker(self, worker: str) -> List[FaultAction]:
        """The actions targeting one worker, in plan order."""
        return [a for a in self.actions if a.worker == worker]

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.seed == other.seed and self.actions == other.actions


#: what backends accept as their ``fault_plan`` option
PlanLike = Union[FaultPlan, dict, None]


def coerce_plan(plan: PlanLike) -> FaultPlan:
    """Normalize a ``fault_plan`` option (plan, dict form, or ``None``)."""
    if isinstance(plan, FaultPlan):
        return plan
    return FaultPlan.from_dict(plan)


class FaultInjector:
    """One worker's runtime view of a plan: count tasks, fire actions.

    The injector is consulted twice per task — :meth:`on_task` when the
    task is received (advancing the counter and returning any receipt-
    seam action) and :meth:`on_delivery` when its result is about to be
    sent.  Each action fires at most once.  A worker with no scripted
    faults pays two dict lookups per task.
    """

    def __init__(self, plan: PlanLike, worker: str) -> None:
        plan = coerce_plan(plan)
        self.worker = worker
        self.tasks_received = 0
        self._receipt: Dict[int, FaultAction] = {}
        self._delivery: Dict[int, FaultAction] = {}
        for action in plan.for_worker(worker):
            seam = (
                self._receipt
                if action.kind in RECEIPT_KINDS
                else self._delivery
            )
            # first scripted action per (seam, ordinal) wins
            seam.setdefault(action.on_task, action)
        #: deterministic jitter stream for injected-worker backoff
        self.rng = random.Random(f"{plan.seed}:{worker}")

    def on_task(self) -> Optional[FaultAction]:
        """Record one task receipt; the receipt-seam action due, if any."""
        self.tasks_received += 1
        return self._receipt.pop(self.tasks_received, None)

    def on_delivery(self) -> Optional[FaultAction]:
        """The delivery-seam action due for the current task, if any."""
        return self._delivery.pop(self.tasks_received, None)


def backoff_seconds(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Exponential backoff with jitter: ``base * 2**attempt``, capped.

    ``attempt`` is 0-based.  With an ``rng`` the delay is scaled by a
    factor in [0.5, 1.5) so a fleet of peers desynchronizes; pass a
    seeded generator (the injector's, or one derived from the worker
    name) to keep runs deterministic.  This one helper is the backoff
    everywhere in the fault-tolerance layer: coordinator wait advice,
    worker reconnects, and batch lease polling.
    """
    delay = min(cap, base * (2.0 ** max(0, attempt)))
    if rng is not None:
        delay *= 0.5 + rng.random()
    return delay
