"""Derived metrics: the quantities the paper's figures actually plot.

Every figure is a comparison against the unoptimized baseline run of the
same workload and cache size, so each helper takes (baseline, optimized)
pairs.  Sign conventions follow the paper: "increase" and "loss" are
positive when the technique is worse, "reduction" is positive when it is
better.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..power.energy import EnergyBreakdown
from ..sim.stats import SimResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .spec import SweepPoint


def occupancy(result: SimResult) -> float:
    """Fig 3(a): L2 occupation rate."""
    return result.occupancy


def l2_miss_rate(result: SimResult) -> float:
    """Fig 3(b): aggregate L2 miss rate."""
    return result.l2_miss_rate


def bandwidth_increase(baseline: SimResult, optimized: SimResult) -> float:
    """Fig 4(a): relative increase in off-chip traffic density."""
    b = baseline.memory_bytes_per_cycle
    if b <= 0:
        return 0.0
    return optimized.memory_bytes_per_cycle / b - 1.0


def amat_increase(baseline: SimResult, optimized: SimResult) -> float:
    """Fig 4(b): relative increase of the average memory access time."""
    b = baseline.amat
    if b <= 0:
        return 0.0
    return optimized.amat / b - 1.0


def ipc_loss(baseline: SimResult, optimized: SimResult) -> float:
    """Fig 5(b)/6(b): relative IPC degradation."""
    b = baseline.ipc
    if b <= 0:
        return 0.0
    return 1.0 - optimized.ipc / b


def energy_reduction(baseline: EnergyBreakdown, optimized: EnergyBreakdown) -> float:
    """Fig 5(a)/6(a): relative system energy saved."""
    if baseline.total <= 0:
        return 0.0
    return 1.0 - optimized.total / baseline.total


def decay_induced_miss_fraction(result: SimResult) -> float:
    """Share of L2 accesses that missed only because a line was gated."""
    acc = sum(s.accesses for s in result.l2)
    if not acc:
        return 0.0
    return sum(s.decay_induced_misses for s in result.l2) / acc


@dataclass
class PointMetrics:
    """All paper metrics for one (workload, size, technique) point."""

    workload: str
    total_mb: int
    technique: str
    occupancy: float
    miss_rate: float
    bandwidth_increase: float
    amat_increase: float
    ipc_loss: float
    energy_reduction: float
    l2_leakage_share: float
    peak_temp_c: Optional[float] = None
    #: the point's n_cores override (None = the runner's default); kept
    #: so core-scaling tables can tell their rows apart
    n_cores: Optional[int] = None

    @classmethod
    def for_point(
        cls,
        point: "SweepPoint",
        base_res: SimResult,
        base_energy: EnergyBreakdown,
        res: SimResult,
        energy: EnergyBreakdown,
    ) -> "PointMetrics":
        """Bundle every figure metric for one typed sweep point."""
        return cls.compute(
            point.workload,
            point.total_mb,
            point.tech_label,
            base_res,
            base_energy,
            res,
            energy,
            n_cores=point.n_cores,
        )

    @classmethod
    def compute(
        cls,
        workload: str,
        total_mb: int,
        technique: str,
        base_res: SimResult,
        base_energy: EnergyBreakdown,
        res: SimResult,
        energy: EnergyBreakdown,
        n_cores: Optional[int] = None,
    ) -> "PointMetrics":
        """Bundle every figure metric for one sweep point."""
        peak = (
            max(energy.temperatures.values()) - 273.15
            if energy.temperatures
            else None
        )
        return cls(
            workload=workload,
            total_mb=total_mb,
            technique=technique,
            occupancy=occupancy(res),
            miss_rate=l2_miss_rate(res),
            bandwidth_increase=bandwidth_increase(base_res, res),
            amat_increase=amat_increase(base_res, res),
            ipc_loss=ipc_loss(base_res, res),
            energy_reduction=energy_reduction(base_energy, energy),
            l2_leakage_share=energy.l2_leakage_share,
            peak_temp_c=peak,
            n_cores=n_cores,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain dict (JSON-friendly)."""
        return {
            "workload": self.workload,
            "total_mb": self.total_mb,
            "technique": self.technique,
            "occupancy": self.occupancy,
            "miss_rate": self.miss_rate,
            "bandwidth_increase": self.bandwidth_increase,
            "amat_increase": self.amat_increase,
            "ipc_loss": self.ipc_loss,
            "energy_reduction": self.energy_reduction,
            "l2_leakage_share": self.l2_leakage_share,
            "peak_temp_c": self.peak_temp_c,
            "n_cores": self.n_cores,
        }


def select_metrics(
    metrics: Iterable[PointMetrics],
    workload: Optional[str] = None,
    total_mb: Optional[int] = None,
    technique: Optional[str] = None,
) -> List[PointMetrics]:
    """Deprecated: filter a metric list by loose coordinate kwargs.

    Superseded by :class:`repro.harness.query.ResultQuery` — build one
    query object (``ResultQuery(workloads=(...,), sizes_mb=(...,),
    techniques=(...,)).apply(metrics)``) and every consumer (CLI,
    figures, ensembles, HTTP) selects identically.  This shim forwards
    for one release, then goes away (the PR 3→4 retirement pattern).
    """
    warnings.warn(
        "select_metrics() is deprecated; build a "
        "repro.harness.query.ResultQuery and call .apply(metrics)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .query import ResultQuery  # deferred: query imports this module

    return ResultQuery(
        workloads=(workload,) if workload is not None else (),
        sizes_mb=(total_mb,) if total_mb is not None else (),
        techniques=(technique,) if technique is not None else (),
    ).apply(metrics)


def metrics_by_point(
    metrics: Iterable[PointMetrics],
) -> Dict[tuple, PointMetrics]:
    """Deprecated: index a metric list by ``(workload, total_mb, technique)``.

    Superseded by :func:`repro.harness.query.index_by_triple`; this shim
    forwards for one release, then goes away.
    """
    warnings.warn(
        "metrics_by_point() is deprecated; use "
        "repro.harness.query.index_by_triple",
        DeprecationWarning,
        stacklevel=2,
    )
    from .query import index_by_triple  # deferred: query imports this module

    return dict(index_by_triple(metrics))
