"""Command-line interface: ``repro-cmp``.

Examples::

    repro-cmp list                       # experiments and workloads
    repro-cmp table1                     # Table I, no simulation
    repro-cmp fig5a --scale 0.05         # regenerate Fig 5(a), small scale
    repro-cmp fig5a --jobs 8             # same, sweep on 8 worker processes
    repro-cmp fig6b --sizes 4            # per-benchmark IPC loss
    repro-cmp fig3a --csv fig3a.csv      # also write the table as CSV
    repro-cmp point water_ns 4 decay64K  # one sweep point, all metrics
    repro-cmp cache stats                # result-cache footprint per version
    repro-cmp cache prune                # drop stale/corrupt cache entries
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..sim.config import PAPER_TOTAL_L2_MB
from ..workloads.registry import PAPER_BENCHMARKS, list_workloads
from .executor import ParallelSweepRunner
from .figures import EXPERIMENTS, run_experiment, table1
from .result_cache import ResultCache
from .runner import CACHE_VERSION, SweepRunner


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cmp`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-cmp",
        description="Reproduce the tables/figures of Monchiero et al., "
                    "ICPP 2009 (CMP L2 leakage via coherence + decay).",
    )
    p.add_argument("command",
                   help="experiment id (fig3a..fig6b, table1), 'list', "
                        "'point', or 'cache'")
    p.add_argument("args", nargs="*", help="command-specific arguments")
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload time-dilation factor (default 0.1; "
                        "1.0 = full paper-equivalent length)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sizes", type=str, default=None,
                   help="comma-separated total L2 MB (default 1,2,4,8)")
    p.add_argument("--benchmarks", type=str, default=None,
                   help="comma-separated workload names")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the sweep (1 = serial, "
                        "0 = all cores)")
    p.add_argument("--cache-dir", type=str, default=".repro_cache",
                   help="result cache directory (default .repro_cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--csv", type=str, default=None, metavar="PATH",
                   help="also write the experiment table as CSV to PATH")
    p.add_argument("--quiet", action="store_true")
    return p


def _cache_command(args: argparse.Namespace) -> int:
    """``repro-cmp cache stats|prune|manifest``."""
    sub = args.args[0] if args.args else "stats"
    cache = ResultCache(args.cache_dir, CACHE_VERSION)
    if sub == "stats":
        print(cache.stats().render())
        return 0
    if sub == "prune":
        print(cache.prune().render())
        return 0
    if sub == "manifest":
        print(cache.write_manifest())
        return 0
    print("usage: repro-cmp cache [stats|prune|manifest]", file=sys.stderr)
    return 2


def make_runner(args: argparse.Namespace) -> SweepRunner:
    """Serial or parallel sweep runner per the ``--jobs`` flag."""
    cache_dir = None if args.no_cache else args.cache_dir
    if args.jobs == 1:
        return SweepRunner(
            scale=args.scale,
            seed=args.seed,
            cache_dir=cache_dir,
            verbose=not args.quiet,
        )
    return ParallelSweepRunner(
        scale=args.scale,
        seed=args.seed,
        cache_dir=cache_dir,
        verbose=not args.quiet,
        jobs=args.jobs,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS) + ["table1"]))
        print("workloads:  ", ", ".join(list_workloads()))
        print("paper benchmarks:", ", ".join(PAPER_BENCHMARKS))
        return 0

    if args.command == "table1":
        print(table1().render())
        return 0

    if args.command == "cache":
        return _cache_command(args)

    runner = make_runner(args)

    if args.command == "point":
        if len(args.args) != 3:
            print("usage: repro-cmp point <workload> <total_mb> <technique>",
                  file=sys.stderr)
            return 2
        wl, mb, tech = args.args[0], int(args.args[1]), args.args[2]
        known = runner.technique_configs()
        if tech not in known:
            print(f"unknown technique {tech!r}; one of: "
                  f"{', '.join(runner.technique_order())}", file=sys.stderr)
            return 2
        m = runner.metrics_for(wl, mb, tech)
        for k, v in m.as_dict().items():
            print(f"{k:22s} {v}")
        return 0

    if args.command in EXPERIMENTS:
        kwargs = {}
        sizes = ([int(s) for s in args.sizes.split(",")]
                 if args.sizes else list(PAPER_TOTAL_L2_MB))
        benchmarks = (args.benchmarks.split(",")
                      if args.benchmarks else list(PAPER_BENCHMARKS))
        if args.command.startswith("fig6"):
            kwargs["total_mb"] = sizes[0] if args.sizes else 4
            kwargs["benchmarks"] = benchmarks
            if isinstance(runner, ParallelSweepRunner):
                # fig6 figures walk metrics_for point by point; fan the
                # matrix out first (figs 3-5 sweep, which prefetches itself)
                runner.prefetch(
                    benchmarks=benchmarks,
                    sizes=[kwargs["total_mb"]],
                    techniques=runner.technique_order(),
                )
        else:
            kwargs["sizes"] = sizes
            kwargs["benchmarks"] = benchmarks
        table = run_experiment(args.command, runner, **kwargs)
        print(table.render())
        if args.csv:
            with open(args.csv, "w", newline="") as fh:
                fh.write(table.to_csv())
            if not args.quiet:
                print(f"[csv] wrote {args.csv}")
        return 0

    print(f"unknown command {args.command!r}; try 'list'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
