"""Command-line interface: ``repro-cmp``.

Examples::

    repro-cmp list                       # experiments and workloads
    repro-cmp table1                     # Table I, no simulation
    repro-cmp fig5a --scale 0.05         # regenerate Fig 5(a), small scale
    repro-cmp fig5a --jobs 8             # same, sweep on 8 worker processes
    repro-cmp fig6b --sizes 4            # per-benchmark IPC loss
    repro-cmp fig3a --csv fig3a.csv      # also write the table as CSV
    repro-cmp point water_ns 4 decay64K  # one sweep point, all metrics
    repro-cmp cache stats                # result-cache footprint per version
    repro-cmp cache prune                # drop stale/corrupt cache entries
    repro-cmp cache merge OTHER_DIR      # ingest a synced cache/shard

Experiment specs (the declarative scenario API; see ``specs/``)::

    repro-cmp spec validate specs/*.toml           # lint scenario files
    repro-cmp spec expand specs/paper_matrix.toml  # list the points
    repro-cmp spec load specs/paper_matrix.toml    # normalized JSON form
    repro-cmp run specs/paper_matrix.toml --jobs 8 # execute a scenario
    repro-cmp run my_scenario.toml --backend batch --csv out.csv

Distributed sweeps (see ``docs/architecture.md``)::

    repro-cmp fig5a --backend socket --port 7777   # + workers that pull
    repro-cmp work 127.0.0.1:7777                  # a socket worker shell
    repro-cmp serve --port 7777 --jobs 2           # coordinator, no figure
    repro-cmp fig5a --backend batch --queue-dir q  # task file + ingest
    repro-cmp work --queue-dir q --slice 0/2       # a batch worker shell
"""

from __future__ import annotations

import argparse
import glob
import sys
from typing import List, Optional, Tuple

from ..sim.config import PAPER_TOTAL_L2_MB
from ..workloads.registry import PAPER_BENCHMARKS, list_workloads
from .backends import (
    BatchQueueBackend,
    SocketWorkStealingBackend,
    SweepBackend,
    resolve_jobs,
    run_batch_worker,
    worker_main,
)
from .executor import ParallelSweepRunner
from .figures import EXPERIMENTS, FigureTable, run_experiment, table1
from .result_cache import ResultCache
from .runner import CACHE_VERSION, SweepRunner
from .spec import SpecError, load_spec

#: default workload time-dilation when neither flag nor spec sets one
DEFAULT_SCALE = 0.1

#: default workload seed when neither flag nor spec sets one
DEFAULT_SEED = 1


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-cmp`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-cmp",
        description="Reproduce the tables/figures of Monchiero et al., "
        "ICPP 2009 (CMP L2 leakage via coherence + decay).",
    )
    p.add_argument(
        "command",
        help="experiment id (fig3a..fig6b, table1), 'list', 'point', "
        "'spec', 'run', 'cache', 'serve', or 'work'",
    )
    p.add_argument("args", nargs="*", help="command-specific arguments")
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"workload time-dilation factor (default {DEFAULT_SCALE}; "
        "1.0 = full paper-equivalent length; a spec file's [run] "
        "table supplies the default for 'run')",
    )
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated total L2 MB (default 1,2,4,8)",
    )
    p.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        help="comma-separated workload names",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="local worker processes for the sweep (1 = serial, "
        "0 = all cores)",
    )
    p.add_argument(
        "--backend",
        choices=("local", "socket", "batch"),
        default="local",
        help="sweep execution backend (default local; socket = TCP "
        "work-stealing coordinator, batch = task file + shard ingest)",
    )
    p.add_argument(
        "--bind",
        type=str,
        default="127.0.0.1",
        metavar="HOST",
        help="socket backend: address the coordinator listens on",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="socket backend: coordinator port (0 = ephemeral, printed "
        "at startup)",
    )
    p.add_argument(
        "--queue-dir",
        type=str,
        default=".repro_queue",
        metavar="DIR",
        help="batch backend: queue directory (task file + result shards)",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="socket/batch backend: spawn no local workers; wait for "
        "external 'repro-cmp work' shells",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket/batch backend: give up after this long",
    )
    p.add_argument(
        "--slice",
        dest="task_slice",
        type=str,
        default="0/1",
        metavar="I/N",
        help="batch worker: claim every N-th task starting at I",
    )
    p.add_argument(
        "--worker-id",
        type=str,
        default=None,
        help="worker name (default host-pid)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=".repro_cache",
        help="result cache directory (default .repro_cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    p.add_argument(
        "--csv",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the experiment table as CSV to PATH",
    )
    p.add_argument("--quiet", action="store_true")
    return p


def _cache_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp cache stats|prune|manifest|merge``."""
    sub = args.args[0] if args.args else "stats"
    cache = ResultCache(args.cache_dir, CACHE_VERSION)
    if sub == "stats":
        print(cache.stats().render())
        return 0
    if sub == "prune":
        print(cache.prune().render())
        return 0
    if sub == "manifest":
        print(cache.write_manifest())
        return 0
    if sub == "merge":
        if len(args.args) != 2:
            print("usage: repro-cmp cache merge <source-dir>", file=sys.stderr)
            return 2
        print(cache.import_entries(args.args[1]).render())
        return 0
    print(
        "usage: repro-cmp cache [stats|prune|manifest|merge <dir>]",
        file=sys.stderr,
    )
    return 2


def _distributed_backend(
    args: argparse.Namespace, name: Optional[str] = None
) -> Optional[SweepBackend]:
    """Socket/batch backend per the CLI flags; ``None`` means local."""
    name = name or args.backend
    spawn = 0 if args.wait else resolve_jobs(args.jobs)
    if name == "socket":
        return SocketWorkStealingBackend(
            host=args.bind,
            port=args.port,
            spawn_workers=spawn,
            timeout=args.timeout,
        )
    if name == "batch":
        return BatchQueueBackend(
            queue_dir=args.queue_dir,
            spawn_workers=spawn,
            timeout=args.timeout,
        )
    return None


def make_runner(
    args: argparse.Namespace,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    n_cores: Optional[int] = None,
    warmup: Optional[float] = None,
) -> SweepRunner:
    """Build the sweep runner the ``--backend``/``--jobs`` flags select.

    The keyword overrides carry a spec's requested run context
    (``repro-cmp run``); explicit CLI flags already won inside
    :meth:`~repro.harness.spec.ExperimentSpec.context`, and anything
    still unset falls back to the harness defaults.
    """
    scale = scale if scale is not None else args.scale
    scale = scale if scale is not None else DEFAULT_SCALE
    seed = seed if seed is not None else args.seed
    seed = seed if seed is not None else DEFAULT_SEED
    kwargs = dict(
        scale=scale,
        seed=seed,
        cache_dir=None if args.no_cache else args.cache_dir,
        verbose=not args.quiet,
    )
    if n_cores is not None:
        kwargs["n_cores"] = int(n_cores)
    if warmup is not None:
        kwargs["warmup_fraction"] = float(warmup)
    if args.wait and args.backend == "local":
        raise SystemExit(
            "--wait only applies to distributed backends; add "
            "--backend socket or --backend batch"
        )
    backend = _distributed_backend(args)
    if backend is None and args.jobs == 1:
        return SweepRunner(**kwargs)
    return ParallelSweepRunner(jobs=args.jobs, backend=backend, **kwargs)


def _matrix_from_args(args: argparse.Namespace) -> Tuple[List[str], List[int]]:
    """Resolve the (benchmarks, sizes) selection flags."""
    sizes = (
        [int(s) for s in args.sizes.split(",")]
        if args.sizes
        else list(PAPER_TOTAL_L2_MB)
    )
    benchmarks = (
        args.benchmarks.split(",") if args.benchmarks else list(PAPER_BENCHMARKS)
    )
    return benchmarks, sizes


def _spec_paths(patterns: List[str]) -> List[str]:
    """Expand spec-file arguments (shells without globbing, CI quoting)."""
    paths: List[str] = []
    for pattern in patterns:
        hits = sorted(glob.glob(pattern))
        paths.extend(hits if hits else [pattern])
    return paths


def _spec_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp spec validate|expand|load <file>...``."""
    usage = "usage: repro-cmp spec [validate|expand|load] <spec.toml|json>..."
    if not args.args:
        print(usage, file=sys.stderr)
        return 2
    sub, *patterns = args.args
    if sub not in ("validate", "expand", "load") or not patterns:
        print(usage, file=sys.stderr)
        return 2
    status = 0
    for path in _spec_paths(patterns):
        try:
            spec = load_spec(path)
            spec.validate(strict=True)
            # resolve scale exactly like `repro-cmp run` would for this
            # file, so the expanded configs/digests match what a run of
            # the same spec executes
            ctx = spec.context(scale=args.scale)
            scale = ctx.get("scale", DEFAULT_SCALE)
            points = spec.expand(scale=scale)
        except (OSError, SpecError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        if sub == "validate":
            print(f"{path}: ok ({spec.name}: {len(points)} points)")
        elif sub == "load":
            sys.stdout.write(spec.to_json())
        else:  # expand
            print(f"# {spec.name}: {len(points)} points (scale={scale})")
            for point in points:
                print(f"{point.describe():40s} digest={point.digest()[:12]}")
    return status


def _metrics_table(spec_name: str, metrics) -> FigureTable:
    """Flat per-point metric table for ``repro-cmp run`` output."""
    table = FigureTable(
        exp_id=spec_name,
        title="experiment spec results",
        columns=[
            "workload", "MB", "technique", "energy_red", "ipc_loss",
            "occupancy", "miss_rate",
        ],
    )
    for i, m in enumerate(metrics):
        table.add_row(
            f"p{i:03d}",
            [
                m.workload,
                str(m.total_mb),
                m.technique,
                f"{m.energy_reduction * 100:.1f}%",
                f"{m.ipc_loss * 100:.1f}%",
                f"{m.occupancy * 100:.1f}%",
                f"{m.miss_rate * 100:.1f}%",
            ],
        )
    return table


def _run_spec_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp run <spec file>`` through the selected backend."""
    if len(args.args) != 1:
        print(
            "usage: repro-cmp run <spec.toml|spec.json> "
            "[--backend ...] [--jobs N] [--csv PATH]",
            file=sys.stderr,
        )
        return 2
    path = args.args[0]
    try:
        spec = load_spec(path)
        spec.validate(strict=True)
        # explicit CLI flags beat the spec's [run] table, which beats
        # the harness defaults
        ctx = spec.context(scale=args.scale, seed=args.seed)
        runner = make_runner(
            args,
            scale=ctx.get("scale"),
            seed=ctx.get("seed"),
            n_cores=ctx.get("n_cores"),
            warmup=ctx.get("warmup"),
        )
        points = runner.expand_spec(spec)
    except (OSError, SpecError) as exc:
        print(f"{path}: INVALID: {exc}", file=sys.stderr)
        return 1
    metrics = runner.run_spec(points)
    table = _metrics_table(spec.name, metrics)
    print(table.render())
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            fh.write(table.to_csv())
        if not args.quiet:
            print(f"[csv] wrote {args.csv}")
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    """Coordinate a matrix sweep for external workers (no figure).

    Plans the full selected matrix, serves it over TCP until complete —
    with ``--jobs N`` local workers, or none under ``--wait`` (the same
    semantics as the figure commands) — then writes the cache manifest
    so the populated cache is sync-ready.
    """
    if args.backend == "batch":
        print(
            "serve is the socket coordinator; for a batch queue run any "
            "figure command with --backend batch (it emits the task file "
            "and ingests shards)",
            file=sys.stderr,
        )
        return 2
    backend = _distributed_backend(args, name="socket")
    runner = ParallelSweepRunner(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        cache_dir=None if args.no_cache else args.cache_dir,
        verbose=not args.quiet,
        backend=backend,
    )
    benchmarks, sizes = _matrix_from_args(args)
    n = runner.prefetch(
        benchmarks=benchmarks,
        sizes=sizes,
        techniques=runner.technique_order(),
    )
    print(f"[serve] matrix complete: {n} points simulated")
    if runner.cache is not None:
        print(f"[serve] manifest: {runner.cache.write_manifest()}")
    return 0


def _parse_slice(text: str) -> Tuple[int, int]:
    """Parse a ``--slice I/N`` value."""
    try:
        index, modulus = text.split("/", 1)
        return int(index), int(modulus)
    except ValueError:
        raise SystemExit(f"bad --slice {text!r}; expected I/N, e.g. 0/2")


def _work_command(args: argparse.Namespace) -> int:
    """Run one worker: socket (``work host:port``) or batch (``--queue-dir``)."""
    if args.args and ":" in args.args[0]:
        host, port = args.args[0].rsplit(":", 1)
        return worker_main(host, int(port), worker_name=args.worker_id)
    if args.args:
        print(
            "usage: repro-cmp work <host:port> | "
            "repro-cmp work --queue-dir DIR [--slice I/N]",
            file=sys.stderr,
        )
        return 2
    done = run_batch_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        task_slice=_parse_slice(args.task_slice),
    )
    if not args.quiet:
        print(f"[work] simulated {done} points into {args.queue_dir}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI (entry point of the ``repro-cmp`` script)."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS) + ["table1"]))
        print("workloads:  ", ", ".join(list_workloads()))
        print("paper benchmarks:", ", ".join(PAPER_BENCHMARKS))
        return 0

    if args.command == "table1":
        print(table1().render())
        return 0

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "spec":
        return _spec_command(args)

    if args.command == "run":
        return _run_spec_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "work":
        return _work_command(args)

    runner = make_runner(args)

    if args.command == "point":
        if len(args.args) != 3:
            print(
                "usage: repro-cmp point <workload> <total_mb> <technique>",
                file=sys.stderr,
            )
            return 2
        wl, mb, tech = args.args[0], int(args.args[1]), args.args[2]
        try:
            point = runner.point(wl, mb, tech)
        except SpecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        m = runner.metrics_for(point)
        for k, v in m.as_dict().items():
            print(f"{k:22s} {v}")
        return 0

    if args.command in EXPERIMENTS:
        kwargs = {}
        benchmarks, sizes = _matrix_from_args(args)
        if args.command.startswith("fig6"):
            kwargs["total_mb"] = sizes[0] if args.sizes else 4
            kwargs["benchmarks"] = benchmarks
        else:
            kwargs["sizes"] = sizes
            kwargs["benchmarks"] = benchmarks
        table = run_experiment(args.command, runner, **kwargs)
        print(table.render())
        if args.csv:
            with open(args.csv, "w", newline="") as fh:
                fh.write(table.to_csv())
            if not args.quiet:
                print(f"[csv] wrote {args.csv}")
        return 0

    print(f"unknown command {args.command!r}; try 'list'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
