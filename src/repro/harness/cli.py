"""Command-line interface: ``repro-cmp``.

Examples::

    repro-cmp list                       # experiments and workloads
    repro-cmp table1                     # Table I, no simulation
    repro-cmp fig5a --scale 0.05         # regenerate Fig 5(a), small scale
    repro-cmp fig5a --jobs 8             # same, sweep on 8 worker processes
    repro-cmp fig6b --sizes 4            # per-benchmark IPC loss
    repro-cmp fig3a --csv fig3a.csv      # also write the table as CSV
    repro-cmp point water_ns 4 decay64K  # one sweep point, all metrics
    repro-cmp cache stats                # result-cache footprint per version
    repro-cmp cache prune                # drop stale/corrupt cache entries
    repro-cmp cache merge OTHER_DIR      # ingest a synced cache/shard

Experiment specs (the declarative scenario API; see ``specs/``)::

    repro-cmp spec validate specs/*.toml           # lint scenario files
    repro-cmp spec expand specs/paper_matrix.toml  # list points (by digest)
    repro-cmp spec diff specs/a.toml specs/b.toml  # compare two point sets
    repro-cmp spec load specs/paper_matrix.toml    # normalized JSON form
    repro-cmp run specs/paper_matrix.toml --jobs 8 # execute a scenario
    repro-cmp run my_scenario.toml --backend batch --csv out.csv
    repro-cmp run specs/smoke.toml --replicas 5    # seed ensemble + 95% CIs

Scenario families and ensembles (see ``repro.scenarios``)::

    repro-cmp scenario list                        # registered families
    repro-cmp scenario expand sizing_sensitivity   # points of one family
    repro-cmp scenario run mix_smoke --replicas 2 --scale 0.05
    repro-cmp scenario save core_scaling my.toml   # freeze one as a file

Distributed sweeps (see ``docs/architecture.md``)::

    repro-cmp fig5a --backend socket --port 7777   # + workers that pull
    repro-cmp work 127.0.0.1:7777                  # a socket worker shell
    repro-cmp serve --port 7777 --jobs 2           # coordinator, no figure
    repro-cmp fig5a --backend batch --queue-dir q  # task file + ingest
    repro-cmp work --queue-dir q --slice 0/2       # a batch worker shell
    repro-cmp run specs/smoke.toml --backend socket --lease-timeout 30
    repro-cmp run specs/paper_matrix.toml --resume # report cached/missing
    repro-cmp run s.toml --backend batch --fault-plan chaos.json  # chaos

Result queries and the HTTP result service (see ``repro.serving``)::

    repro-cmp query '' specs/smoke.toml            # every cached row
    repro-cmp query 'workload=uniform sort=-energy_reduction limit=5'
    repro-cmp query 'size=4 fields=digest,technique,ipc_loss' --json
    repro-cmp run specs/smoke.toml --query 'technique=protocol'
    repro-cmp serve-results specs/smoke.toml --port 8031
    # then: curl localhost:8031/v1/query?workload=uniform

File-backed traces (see ``repro.traces``)::

    repro-cmp trace capture uniform u.rtr --scale 0.05   # synthetic dump
    repro-cmp trace capture fmm fmm.rtr --limit 5000     # CI-sized slice
    repro-cmp trace convert log.csv app.rtr --trace-format csv
    repro-cmp trace info u.rtr                           # header + stats
    repro-cmp trace validate u.rtr                       # full decode
    repro-cmp point trace:u.rtr 4 decay64K               # replay a trace
    repro-cmp run specs/trace_smoke.toml                 # traces in specs
"""

from __future__ import annotations

import argparse
import glob
import sys
from typing import List, Optional, Tuple

from ..sim.config import PAPER_TOTAL_L2_MB
from ..workloads.registry import PAPER_BENCHMARKS, list_workloads
from .backends import (
    DEFAULT_LEASE_TIMEOUT,
    BatchQueueBackend,
    SocketWorkStealingBackend,
    SweepBackend,
    resolve_jobs,
    run_batch_worker,
    worker_main,
)
from .executor import ParallelSweepRunner
from .faults import FaultPlan
from .figures import (
    EXPERIMENTS,
    FigureTable,
    ensemble_table,
    format_cores,
    run_experiment,
    show_cores_column,
    table1,
)
from .query import QueryError, ResultQuery, ResultStore
from .result_cache import ResultCache
from .runner import CACHE_VERSION, SweepRunner
from .spec import SpecError, load_spec, paper_matrix_spec, save_spec

#: default workload time-dilation when neither flag nor spec sets one
DEFAULT_SCALE = 0.1

#: default workload seed when neither flag nor spec sets one
DEFAULT_SEED = 1


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-cmp`` argument parser."""
    p = argparse.ArgumentParser(
        prog="repro-cmp",
        description="Reproduce the tables/figures of Monchiero et al., "
        "ICPP 2009 (CMP L2 leakage via coherence + decay).",
    )
    p.add_argument(
        "command",
        help="experiment id (fig3a..fig6b, table1), 'list', 'point', "
        "'spec', 'scenario', 'run', 'cache', 'serve', 'work', 'query', "
        "'serve-results', or 'trace'",
    )
    p.add_argument("args", nargs="*", help="command-specific arguments")
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"workload time-dilation factor (default {DEFAULT_SCALE}; "
        "1.0 = full paper-equivalent length; a spec file's [run] "
        "table supplies the default for 'run')",
    )
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="run the spec/scenario as an N-seed ensemble and report "
        "mean ± 95%% CI tables (default: the spec's [ensemble] table, "
        "else a single run)",
    )
    p.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated total L2 MB (default 1,2,4,8)",
    )
    p.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        help="comma-separated workload names",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="local worker processes for the sweep (1 = serial, "
        "0 = all cores)",
    )
    p.add_argument(
        "--backend",
        choices=("local", "socket", "batch"),
        default="local",
        help="sweep execution backend (default local; socket = TCP "
        "work-stealing coordinator, batch = task file + shard ingest)",
    )
    p.add_argument(
        "--bind",
        type=str,
        default="127.0.0.1",
        metavar="HOST",
        help="socket backend: address the coordinator listens on",
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="socket backend: coordinator port (0 = ephemeral, printed "
        "at startup)",
    )
    p.add_argument(
        "--queue-dir",
        type=str,
        default=".repro_queue",
        metavar="DIR",
        help="batch backend: queue directory (task file + result shards)",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="socket/batch backend: spawn no local workers; wait for "
        "external 'repro-cmp work' shells",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket/batch backend: give up after this long",
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket/batch backend: requeue a worker's point after this "
        "long without a heartbeat/lease renewal (default 60)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="run/scenario run: report the cached-vs-missing partition "
        "of the planned campaign before executing the missing points "
        "(already-cached points are always skipped)",
    )
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="PATH",
        help="socket/batch backend and workers: inject the failures "
        "scripted in this FaultPlan JSON file (chaos testing)",
    )
    p.add_argument(
        "--slice",
        dest="task_slice",
        type=str,
        default="0/1",
        metavar="I/N",
        help="batch worker: claim every N-th task starting at I",
    )
    p.add_argument(
        "--worker-id",
        type=str,
        default=None,
        help="worker name (default host-pid)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=".repro_cache",
        help="result cache directory (default .repro_cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    p.add_argument(
        "--csv",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the experiment table as CSV to PATH",
    )
    p.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="query: emit the canonical JSON document (byte-identical "
        "to the HTTP /v1/query response) instead of a table",
    )
    p.add_argument(
        "--query",
        type=str,
        default=None,
        metavar="FILTER",
        help="run/scenario run: restrict and order the reported rows "
        "with a result-query filter string (e.g. "
        "'workload=uniform sort=-energy_reduction limit=5')",
    )
    p.add_argument(
        "--simulate",
        action="store_true",
        help="query/serve-results: simulate missing points on demand "
        "instead of skipping them (reads stay read-only by default)",
    )
    p.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="trace capture/convert: core count of the trace (capture "
        "default 4; convert default infers from the log's core ids)",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="trace capture: keep at most N records per core (CI-sized "
        "smoke traces)",
    )
    p.add_argument(
        "--trace-format",
        choices=("csv", "mtrace"),
        default="csv",
        help="trace convert: input log format (default csv)",
    )
    p.add_argument("--quiet", action="store_true")
    return p


def _cache_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp cache stats|prune|manifest|merge``."""
    sub = args.args[0] if args.args else "stats"
    cache = ResultCache(args.cache_dir, CACHE_VERSION)
    if sub == "stats":
        print(cache.stats().render())
        return 0
    if sub == "prune":
        print(cache.prune().render())
        return 0
    if sub == "manifest":
        print(cache.write_manifest())
        return 0
    if sub == "merge":
        if len(args.args) != 2:
            print("usage: repro-cmp cache merge <source-dir>", file=sys.stderr)
            return 2
        print(cache.import_entries(args.args[1]).render())
        return 0
    print(
        "usage: repro-cmp cache [stats|prune|manifest|merge <dir>]",
        file=sys.stderr,
    )
    return 2


def _load_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Load the ``--fault-plan`` file; ``None`` when unset."""
    if args.fault_plan is None:
        return None
    try:
        return FaultPlan.load(args.fault_plan)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"bad --fault-plan {args.fault_plan}: {exc}")


def _distributed_backend(
    args: argparse.Namespace, name: Optional[str] = None
) -> Optional[SweepBackend]:
    """Socket/batch backend per the CLI flags; ``None`` means local."""
    name = name or args.backend
    spawn = 0 if args.wait else resolve_jobs(args.jobs)
    lease = (
        args.lease_timeout
        if args.lease_timeout is not None
        else DEFAULT_LEASE_TIMEOUT
    )
    if name == "socket":
        return SocketWorkStealingBackend(
            host=args.bind,
            port=args.port,
            spawn_workers=spawn,
            timeout=args.timeout,
            lease_timeout=lease,
            fault_plan=_load_fault_plan(args),
        )
    if name == "batch":
        return BatchQueueBackend(
            queue_dir=args.queue_dir,
            spawn_workers=spawn,
            timeout=args.timeout,
            lease_timeout=lease,
            fault_plan=_load_fault_plan(args),
        )
    return None


def make_runner(
    args: argparse.Namespace,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    n_cores: Optional[int] = None,
    warmup: Optional[float] = None,
    trace_root: Optional[str] = None,
) -> SweepRunner:
    """Build the sweep runner the ``--backend``/``--jobs`` flags select.

    The keyword overrides carry a spec's requested run context
    (``repro-cmp run``); explicit CLI flags already won inside
    :meth:`~repro.harness.spec.ExperimentSpec.context`, and anything
    still unset falls back to the harness defaults.  ``trace_root``
    (the spec file's directory) anchors relative ``trace:`` workload
    paths.
    """
    scale = scale if scale is not None else args.scale
    scale = scale if scale is not None else DEFAULT_SCALE
    seed = seed if seed is not None else args.seed
    seed = seed if seed is not None else DEFAULT_SEED
    kwargs = dict(
        scale=scale,
        seed=seed,
        cache_dir=None if args.no_cache else args.cache_dir,
        verbose=not args.quiet,
        trace_root=trace_root,
    )
    if n_cores is not None:
        kwargs["n_cores"] = int(n_cores)
    if warmup is not None:
        kwargs["warmup_fraction"] = float(warmup)
    if args.wait and args.backend == "local":
        raise SystemExit(
            "--wait only applies to distributed backends; add "
            "--backend socket or --backend batch"
        )
    backend = _distributed_backend(args)
    if backend is None and args.jobs == 1:
        return SweepRunner(**kwargs)
    return ParallelSweepRunner(jobs=args.jobs, backend=backend, **kwargs)


def _matrix_from_args(args: argparse.Namespace) -> Tuple[List[str], List[int]]:
    """Resolve the (benchmarks, sizes) selection flags."""
    sizes = (
        [int(s) for s in args.sizes.split(",")]
        if args.sizes
        else list(PAPER_TOTAL_L2_MB)
    )
    benchmarks = (
        args.benchmarks.split(",") if args.benchmarks else list(PAPER_BENCHMARKS)
    )
    return benchmarks, sizes


def _spec_paths(patterns: List[str]) -> List[str]:
    """Expand spec-file arguments (shells without globbing, CI quoting)."""
    paths: List[str] = []
    for pattern in patterns:
        hits = sorted(glob.glob(pattern))
        paths.extend(hits if hits else [pattern])
    return paths


def _load_expanded(path: str, cli_scale: Optional[float]):
    """Load + strictly validate a spec file and expand its points.

    Scale resolves exactly like ``repro-cmp run`` would for this file,
    so the expanded configs/digests match what a run of the same spec
    executes.  Returns ``(spec, scale, points)``.
    """
    spec = load_spec(path)
    spec.validate(strict=True)
    ctx = spec.context(scale=cli_scale)
    scale = ctx.get("scale", DEFAULT_SCALE)
    return spec, scale, spec.expand(scale=scale)


def _print_points(points) -> None:
    """One line per point, deterministically ordered by digest.

    Sorting by the process-independent digest keeps ``spec expand``
    output byte-stable across ``PYTHONHASHSEED`` values and worker
    interleavings — what spec diffs and CI logs compare against.
    """
    for digest, point in sorted((p.digest(), p) for p in points):
        print(f"{point.describe():40s} digest={digest[:12]}")


def _spec_diff(args: argparse.Namespace, patterns: List[str]) -> int:
    """Run ``repro-cmp spec diff A B``: compare expanded point sets."""
    if len(patterns) != 2:
        print(
            "usage: repro-cmp spec diff <A.toml|json> <B.toml|json>",
            file=sys.stderr,
        )
        return 2
    expanded = []
    for path in patterns:
        try:
            expanded.append(_load_expanded(path, args.scale))
        except (OSError, SpecError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            return 2
    (_, _, points_a), (_, _, points_b) = expanded
    by_digest_a = {p.digest(): p for p in points_a}
    by_digest_b = {p.digest(): p for p in points_b}
    only_a = {d: p for d, p in by_digest_a.items() if d not in by_digest_b}
    only_b = {d: p for d, p in by_digest_b.items() if d not in by_digest_a}
    # "changed" = a triple that lost a digest on one side and gained a
    # new one on the other (same coordinates, different resolved
    # hardware/context).  Pairing is per triple and *counted*: a triple
    # that lost 1 digest but gained 2 is one change plus one addition —
    # surplus digests on either side are never silently dropped
    lost_by_triple: dict = {}
    for digest, point in only_a.items():
        lost_by_triple.setdefault(point.triple, []).append(digest)
    gained_by_triple: dict = {}
    for digest, point in only_b.items():
        gained_by_triple.setdefault(point.triple, []).append(digest)
    changed_a: set = set()
    changed_b: set = set()
    for triple, lost in lost_by_triple.items():
        gained = gained_by_triple.get(triple, [])
        for digest_a, digest_b in zip(sorted(lost), sorted(gained)):
            changed_a.add(digest_a)
            changed_b.add(digest_b)
    added = removed = changed = 0
    for digest in sorted(only_a):
        point = only_a[digest]
        kind = "~" if digest in changed_a else "-"
        changed += kind == "~"
        removed += kind == "-"
        print(f"{kind} {point.describe():40s} digest={digest[:12]}")
    for digest in sorted(only_b):
        point = only_b[digest]
        # each paired B digest was reported as changed ("~") from A's side
        if digest in changed_b:
            continue
        added += 1
        print(f"+ {point.describe():40s} digest={digest[:12]}")
    if not (added or removed or changed):
        print(
            f"identical: {len(points_a)} points "
            f"({patterns[0]} == {patterns[1]})"
        )
        return 0
    print(
        f"differ: {added} added, {removed} removed, {changed} changed "
        f"({len(points_a)} -> {len(points_b)} points)"
    )
    return 1


def _spec_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp spec validate|expand|load|diff <file>...``."""
    usage = (
        "usage: repro-cmp spec [validate|expand|load] <spec.toml|json>... "
        "| spec diff A B"
    )
    if not args.args:
        print(usage, file=sys.stderr)
        return 2
    sub, *patterns = args.args
    if sub == "diff":
        return _spec_diff(args, patterns)
    if sub not in ("validate", "expand", "load") or not patterns:
        print(usage, file=sys.stderr)
        return 2
    status = 0
    for path in _spec_paths(patterns):
        try:
            spec, scale, points = _load_expanded(path, args.scale)
        except (OSError, SpecError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        if sub == "validate":
            print(f"{path}: ok ({spec.name}: {len(points)} points)")
        elif sub == "load":
            sys.stdout.write(spec.to_json())
        else:  # expand
            print(f"# {spec.name}: {len(points)} points (scale={scale})")
            _print_points(points)
    return status


def _metrics_table(spec_name: str, metrics) -> FigureTable:
    """Flat per-point metric table for ``repro-cmp run`` output.

    A ``cores`` column appears only when some point pins ``n_cores``
    (e.g. the core-scaling family; see
    :func:`~repro.harness.figures.show_cores_column`).
    """
    show_cores = show_cores_column(metrics)
    table = FigureTable(
        exp_id=spec_name,
        title="experiment spec results",
        columns=[
            "workload", "MB",
            *(["cores"] if show_cores else []),
            "technique", "energy_red", "ipc_loss", "occupancy", "miss_rate",
        ],
    )
    for i, m in enumerate(metrics):
        table.add_row(
            f"p{i:03d}",
            [
                m.workload,
                str(m.total_mb),
                *([format_cores(m.n_cores)] if show_cores else []),
                m.technique,
                f"{m.energy_reduction * 100:.1f}%",
                f"{m.ipc_loss * 100:.1f}%",
                f"{m.occupancy * 100:.1f}%",
                f"{m.miss_rate * 100:.1f}%",
            ],
        )
    return table


def _emit_table(args: argparse.Namespace, table: FigureTable) -> None:
    """Print a result table and honor the ``--csv`` flag."""
    print(table.render())
    if args.csv:
        with open(args.csv, "w", newline="") as fh:
            fh.write(table.to_csv())
        if not args.quiet:
            print(f"[csv] wrote {args.csv}")


def _execute_spec(args: argparse.Namespace, spec) -> int:
    """Run one validated spec (single run, or ensemble) and print tables.

    The ensemble path engages when replication is requested
    (``--replicas``/``[ensemble] replicas``) **or** the spec pins a
    ``base_seed`` — a 1-replica ensemble with a pinned seed must still
    simulate that seed, not the runner default.  A plain spec falls
    through to the per-point table.
    """
    from ..scenarios.ensemble import EnsembleSpec, run_ensemble

    # explicit CLI flags beat the spec's [run] table, which beats the
    # harness defaults
    ctx = spec.context(scale=args.scale, seed=args.seed)
    runner = make_runner(
        args,
        scale=ctx.get("scale"),
        seed=ctx.get("seed"),
        n_cores=ctx.get("n_cores"),
        warmup=ctx.get("warmup"),
        trace_root=spec.base_dir,
    )
    try:
        ensemble = EnsembleSpec.from_spec(spec, replicas=args.replicas)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    query = _parse_query_flag(args)
    if args.resume:
        _report_resume(args, runner, spec, ensemble)
    if ensemble.replicas > 1 or ensemble.base_seed is not None:
        result = run_ensemble(runner, ensemble, query=query)
        seeds = ensemble.replica_seeds(runner.seed)
        table = ensemble_table(
            spec.name,
            result.aggregated,
            title=f"ensemble results, {ensemble.replicas} replica(s) "
            f"(seeds {seeds[0]}..{seeds[-1]}), mean ± 95% CI",
        )
        _emit_table(args, table)
        return 0
    metrics = runner.run_spec(runner.expand_spec(spec))
    if query is not None:
        metrics = query.apply(metrics)
    _emit_table(args, _metrics_table(spec.name, metrics))
    return 0


def _report_resume(
    args: argparse.Namespace, runner: SweepRunner, spec, ensemble
) -> None:
    """Print the ``--resume`` partition of the planned campaign.

    The cache always makes re-running a spec incremental; ``--resume``
    makes the resumption *visible* — how much of the campaign (every
    replica of every point, baseline twins included) is already settled
    and how much labor remains — before any backend spins up.
    """
    if ensemble.replicas > 1 or ensemble.base_seed is not None:
        points = [
            point
            for replica in ensemble.expand(runner.scale, runner.seed)
            for point in replica
        ]
    else:
        points = spec.expand(scale=runner.scale)
    plan = getattr(runner, "plan_points", None)
    planned = plan(points) if plan is not None else list(points)
    cached, missing = runner.partition_cached(planned)
    print(
        f"[resume] {len(cached)}/{len(planned)} planned points already "
        f"cached; {len(missing)} to run",
        flush=True,
    )


def _run_spec_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp run <spec file>`` through the selected backend."""
    if len(args.args) != 1:
        print(
            "usage: repro-cmp run <spec.toml|spec.json> "
            "[--backend ...] [--jobs N] [--replicas N] [--csv PATH]",
            file=sys.stderr,
        )
        return 2
    path = args.args[0]
    try:
        spec = load_spec(path)
        spec.validate(strict=True)
    except (OSError, SpecError) as exc:
        print(f"{path}: INVALID: {exc}", file=sys.stderr)
        return 1
    return _execute_spec(args, spec)


def _scenario_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp scenario list|expand|run|save ...``.

    Scenario families are registered templates
    (:mod:`repro.scenarios.templates`) that build ordinary specs;
    ``run`` executes one through the selected backend — with
    ``--replicas``/``[ensemble]`` replication — and ``save`` freezes
    one into a spec file for hand-editing and shipping.
    """
    from ..scenarios.templates import get_scenario, scenario_names

    usage = (
        "usage: repro-cmp scenario list | scenario expand <name> | "
        "scenario run <name> [--replicas N] [--backend ...] [--csv PATH] "
        "| scenario save <name> <out.toml|json>"
    )
    sub = args.args[0] if args.args else "list"
    if sub == "list":
        print("scenario families:")
        for name in scenario_names():
            template = get_scenario(name)
            spec = template.build()
            replicas = spec.ensemble.get("replicas", 1)
            print(
                f"  {name:22s} {len(spec.expand()):4d} points x "
                f"{replicas} replica(s)  {template.description}"
            )
        return 0
    if sub not in ("expand", "run", "save") or len(args.args) < 2:
        print(usage, file=sys.stderr)
        return 2
    name = args.args[1]
    try:
        spec = get_scenario(name).build()
        spec.validate(strict=True)
    except (ValueError, SpecError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if sub == "save":
        if len(args.args) != 3:
            print(usage, file=sys.stderr)
            return 2
        try:
            print(save_spec(spec, args.args[2]))
        except (OSError, SpecError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 0
    if sub == "expand":
        from ..scenarios.ensemble import EnsembleSpec

        # resolve scale *and* seed exactly like `scenario run` would, so
        # the previewed replica seeds match what a run will simulate
        ctx = spec.context(scale=args.scale, seed=args.seed)
        scale = ctx.get("scale", DEFAULT_SCALE)
        points = spec.expand(scale=scale)
        try:
            ensemble = EnsembleSpec.from_spec(spec, replicas=args.replicas)
        except SpecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        seeds = ensemble.replica_seeds(ctx.get("seed", DEFAULT_SEED))
        print(
            f"# {spec.name}: {len(points)} points (scale={scale}), "
            f"{ensemble.replicas} replica(s), seeds {seeds}"
        )
        _print_points(points)
        return 0
    return _execute_spec(args, spec)


def _serve_command(args: argparse.Namespace) -> int:
    """Coordinate a matrix sweep for external workers (no figure).

    Plans the full selected matrix, serves it over TCP until complete —
    with ``--jobs N`` local workers, or none under ``--wait`` (the same
    semantics as the figure commands) — then writes the cache manifest
    so the populated cache is sync-ready.
    """
    if args.backend == "batch":
        print(
            "serve is the socket coordinator; for a batch queue run any "
            "figure command with --backend batch (it emits the task file "
            "and ingests shards)",
            file=sys.stderr,
        )
        return 2
    backend = _distributed_backend(args, name="socket")
    runner = ParallelSweepRunner(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        cache_dir=None if args.no_cache else args.cache_dir,
        verbose=not args.quiet,
        backend=backend,
    )
    benchmarks, sizes = _matrix_from_args(args)
    n = runner.prefetch(
        benchmarks=benchmarks,
        sizes=sizes,
        techniques=runner.technique_order(),
    )
    print(f"[serve] matrix complete: {n} points simulated")
    if runner.cache is not None:
        print(f"[serve] manifest: {runner.cache.write_manifest()}")
    return 0


def _parse_query_flag(args: argparse.Namespace) -> Optional[ResultQuery]:
    """Parse the ``--query`` filter flag; ``None`` when unset.

    Raises ``SystemExit(2)`` with the parse error on bad filter text, so
    every command that honors the flag rejects it identically.
    """
    if args.query is None:
        return None
    try:
        return ResultQuery.parse(args.query)
    except QueryError as exc:
        raise SystemExit(f"bad --query filter: {exc}")


def _open_store(
    args: argparse.Namespace, spec_arg: Optional[str]
) -> ResultStore:
    """Mount the result store ``query``/``serve-results`` read from.

    ``spec_arg`` is an optional spec-file path; without one the paper's
    full matrix is mounted.  The store resolves scale/seed exactly like
    ``repro-cmp run`` (CLI flags beat the spec's ``[run]`` table), so it
    computes the same cache keys a run of the same spec populated.
    """
    if spec_arg is not None:
        spec = load_spec(spec_arg)
        spec.validate(strict=True)
    else:
        spec = paper_matrix_spec()
    if args.no_cache and not args.simulate:
        raise SystemExit(
            "--no-cache leaves nothing to read from; drop it, or add "
            "--simulate to compute rows on demand"
        )
    return ResultStore.open(
        None if args.no_cache else args.cache_dir,
        spec,
        scale=args.scale if args.scale is not None else None,
        seed=args.seed if args.seed is not None else None,
        simulate_missing=args.simulate,
        verbose=args.simulate and not args.quiet,
    )


def _query_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp query '<filter>' [spec]`` against the cache.

    The filter string, the selection, and the emitted rows are the same
    objects the HTTP service uses — ``--json`` output is byte-identical
    to ``GET /v1/query`` for the same filter over the same cache.
    """
    from ..serving.wire import encode_json, query_document, rows_csv

    if not args.args or len(args.args) > 2:
        print(
            "usage: repro-cmp query '<filter>' [spec.toml] "
            "[--json] [--csv PATH] [--simulate]\n"
            "  e.g. repro-cmp query 'workload=uniform size=4 "
            "sort=-energy_reduction limit=5' specs/smoke.toml",
            file=sys.stderr,
        )
        return 2
    try:
        query = ResultQuery.parse(args.args[0])
    except QueryError as exc:
        print(f"bad query filter: {exc}", file=sys.stderr)
        return 2
    try:
        store = _open_store(args, args.args[1] if len(args.args) == 2 else None)
    except (OSError, SpecError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    result = store.run_query(query)
    if args.as_json:
        sys.stdout.buffer.write(encode_json(query_document(result)))
        return 0
    if result.metrics:
        print(_metrics_table(result.name, result.metrics).render())
    if args.csv:
        with open(args.csv, "wb") as fh:
            fh.write(rows_csv(result.rows, fields=query.fields or None))
        if not args.quiet:
            print(f"[csv] wrote {args.csv}")
    if not args.quiet:
        print(
            f"[query] {result.matched} row(s) of {result.total} spec "
            f"point(s); {result.missing} not cached"
        )
    return 0


def _serve_results_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp serve-results [spec] --cache-dir D --port P``.

    Mounts the cache read-only behind the async HTTP service and blocks
    until interrupted.  Missing points 404 (the server never simulates
    unless ``--simulate``).
    """
    import asyncio

    from ..serving import ResultServer, ResultService

    if len(args.args) > 1:
        print(
            "usage: repro-cmp serve-results [spec.toml] "
            "[--cache-dir DIR] [--bind HOST] [--port P] [--simulate]",
            file=sys.stderr,
        )
        return 2
    try:
        store = _open_store(args, args.args[0] if args.args else None)
    except (OSError, SpecError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    service = ResultService(store)
    cached = len(store.metrics())
    missing = len(store.missing_points())

    async def _serve() -> None:
        server = ResultServer(service.handle, host=args.bind, port=args.port)
        await server.start()
        print(
            f"[serve-results] {store.name}: {cached} cached row(s), "
            f"{missing} missing; listening on "
            f"http://{args.bind}:{server.port}/v1/",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        if not args.quiet:
            print("[serve-results] stopped")
    return 0


def _print_trace_info(info: dict) -> None:
    """Readable key-value dump of one trace's info document."""
    header = info.get("header", {})
    source = header.get("source") or {}
    print(f"{info['path']}:")
    print(f"  format      v{info['version']}  ({info['file_bytes']} bytes)")
    print(f"  workload    {header.get('name')}  [{header.get('suite')}]")
    if source:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(source.items()))
        print(f"  source      {pairs}")
    print(f"  cores       {info['n_cores']}")
    print(f"  records     {info['records']}  per-core {info['counts']}")
    print(f"  writes      {info['writes']}  barriers {info['barriers']}")
    if info.get("min_addr") is not None:
        print(
            f"  addresses   0x{info['min_addr']:x} .. 0x{info['max_addr']:x}"
        )
    print(f"  frames      {info['frames']}  ({info['payload_bytes']} "
          f"payload bytes)")


def _trace_command(args: argparse.Namespace) -> int:
    """Run ``repro-cmp trace capture|convert|info|validate ...``.

    ``capture`` dumps a registered workload (or mix) to a trace file;
    ``convert`` ingests a CSV or mtrace-style access log
    (``--trace-format``); ``info`` prints header + trailer statistics
    (frame headers only); ``validate`` fully decodes every frame and
    cross-checks the trailer.
    """
    from ..traces import (
        CONVERTERS,
        TraceError,
        TraceReader,
        capture_workload,
    )

    usage = (
        "usage: repro-cmp trace capture <workload> <out.rtr> "
        "[--cores N] [--scale S] [--seed N] [--limit N]\n"
        "       repro-cmp trace convert <log> <out.rtr> "
        "[--trace-format csv|mtrace] [--cores N]\n"
        "       repro-cmp trace info <file.rtr>...\n"
        "       repro-cmp trace validate <file.rtr>..."
    )
    if not args.args:
        print(usage, file=sys.stderr)
        return 2
    sub, *rest = args.args
    try:
        if sub == "capture":
            if len(rest) != 2:
                print(usage, file=sys.stderr)
                return 2
            workload, out = rest
            summary = capture_workload(
                workload,
                out,
                n_cores=args.cores if args.cores is not None else 4,
                scale=args.scale if args.scale is not None else DEFAULT_SCALE,
                seed=args.seed if args.seed is not None else DEFAULT_SEED,
                limit=args.limit,
            )
            if not args.quiet:
                print(
                    f"[trace] captured {workload} -> {out} "
                    f"({summary['records']} records)"
                )
            return 0
        if sub == "convert":
            if len(rest) != 2:
                print(usage, file=sys.stderr)
                return 2
            src, out = rest
            converter = CONVERTERS[args.trace_format]
            summary = converter(src, out, n_cores=args.cores)
            if not args.quiet:
                print(
                    f"[trace] converted {src} -> {out} "
                    f"({summary['records']} records, "
                    f"{len(summary['counts'])} cores)"
                )
            return 0
        if sub in ("info", "validate"):
            if not rest:
                print(usage, file=sys.stderr)
                return 2
            for path in _spec_paths(rest):
                reader = TraceReader(path)
                if sub == "validate":
                    info = reader.validate()
                    print(f"{path}: ok ({info['records']} records, "
                          f"{info['n_cores']} cores, {info['frames']} frames)")
                else:
                    _print_trace_info(reader.info())
            return 0
    except (OSError, ValueError, TraceError) as exc:
        print(f"trace {sub}: {exc}", file=sys.stderr)
        return 1
    print(usage, file=sys.stderr)
    return 2


def _parse_slice(text: str) -> Tuple[int, int]:
    """Parse a ``--slice I/N`` value."""
    try:
        index, modulus = text.split("/", 1)
        return int(index), int(modulus)
    except ValueError:
        raise SystemExit(f"bad --slice {text!r}; expected I/N, e.g. 0/2")


def _work_command(args: argparse.Namespace) -> int:
    """Run one worker: socket (``work host:port``) or batch (``--queue-dir``)."""
    plan = _load_fault_plan(args)
    plan_dict = plan.to_dict() if plan else None
    if args.args and ":" in args.args[0]:
        host, port = args.args[0].rsplit(":", 1)
        return worker_main(
            host,
            int(port),
            worker_name=args.worker_id,
            fault_plan=plan_dict,
        )
    if args.args:
        print(
            "usage: repro-cmp work <host:port> | "
            "repro-cmp work --queue-dir DIR [--slice I/N]",
            file=sys.stderr,
        )
        return 2
    done = run_batch_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        task_slice=_parse_slice(args.task_slice),
        lease_timeout=(
            args.lease_timeout
            if args.lease_timeout is not None
            else DEFAULT_LEASE_TIMEOUT
        ),
        fault_plan=plan_dict,
    )
    if not args.quiet:
        print(f"[work] simulated {done} points into {args.queue_dir}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI (entry point of the ``repro-cmp`` script)."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS) + ["table1"]))
        print("workloads:  ", ", ".join(list_workloads()))
        print("paper benchmarks:", ", ".join(PAPER_BENCHMARKS))
        return 0

    if args.command == "table1":
        print(table1().render())
        return 0

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "spec":
        return _spec_command(args)

    if args.command == "run":
        return _run_spec_command(args)

    if args.command == "scenario":
        return _scenario_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "query":
        return _query_command(args)

    if args.command == "serve-results":
        return _serve_results_command(args)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "work":
        return _work_command(args)

    runner = make_runner(args)

    if args.command == "point":
        if len(args.args) != 3:
            print(
                "usage: repro-cmp point <workload> <total_mb> <technique>",
                file=sys.stderr,
            )
            return 2
        wl, mb, tech = args.args[0], int(args.args[1]), args.args[2]
        try:
            point = runner.point(wl, mb, tech)
        except SpecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        m = runner.metrics_for(point)
        for k, v in m.as_dict().items():
            print(f"{k:22s} {v}")
        return 0

    if args.command in EXPERIMENTS:
        kwargs = {}
        benchmarks, sizes = _matrix_from_args(args)
        if args.command.startswith("fig6"):
            kwargs["total_mb"] = sizes[0] if args.sizes else 4
            kwargs["benchmarks"] = benchmarks
        else:
            kwargs["sizes"] = sizes
            kwargs["benchmarks"] = benchmarks
        table = run_experiment(args.command, runner, **kwargs)
        print(table.render())
        if args.csv:
            with open(args.csv, "w", newline="") as fh:
                fh.write(table.to_csv())
            if not args.quiet:
                print(f"[csv] wrote {args.csv}")
        return 0

    print(f"unknown command {args.command!r}; try 'list'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
