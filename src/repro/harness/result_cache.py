"""Sharded, atomically-written on-disk result cache.

Layout (one directory per schema version, 256 shards per version)::

    <root>/
        v8/
            index.json          # manifest snapshot (write_manifest)
            3f/
                <key>.json      # one sweep point, shard = sha1(key)[:2]
            a0/
                ...
            provenance/
                3f/
                    <key>.json  # who produced the entry (sidecar; the
                                # manifest folds these into its rows)

Properties the sweep executor relies on:

* **atomic writes** — entries are written to a ``.tmp-*`` file in the
  final shard directory and published with :func:`os.replace`, so readers
  (including concurrent pool workers) never observe a truncated blob and
  two writers racing on the same key leave one complete entry;
* **corrupt-entry recovery** — :meth:`ResultCache.get` deletes and
  reports a miss for entries that fail to parse (e.g. a pre-fix truncated
  write, or a crash mid-``json.dump`` on a non-atomic cache), so one bad
  blob costs a resimulation instead of crashing every later load;
* **version isolation** — bumping the schema version simply selects a
  different subdirectory; stale versions are reclaimed by :meth:`prune`.

The legacy flat layout (``<root>/v7-<key>.json`` files produced before
the sharded cache existed) is never read; :meth:`prune` deletes it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from ..sim.config import stable_digest

#: manifest file name inside each version directory
MANIFEST_NAME = "index.json"

#: per-entry provenance sidecars live under this version subdirectory
PROVENANCE_DIR = "provenance"

_TMP_PREFIX = ".tmp-"


def shard_of(key: str) -> str:
    """Two-hex-digit shard of a cache key (256-way fanout)."""
    return stable_digest(key)[:2]


def atomic_write(path: str, data: bytes) -> str:
    """Atomically publish ``data`` at ``path`` (tmp file + ``os.replace``).

    The single implementation of the harness's write discipline: readers
    (including concurrent sweep workers) never observe a truncated file,
    and two writers racing on one path leave one complete copy.  The
    parent directory is created if needed; the tmp file is unlinked on
    any failure.
    """
    target_dir = os.path.dirname(path)
    os.makedirs(target_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target_dir, prefix=_TMP_PREFIX, suffix=".json")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass
class CacheStats:
    """Aggregate cache statistics (``repro-cmp cache stats``)."""

    root: str
    current_version: int
    #: version -> (entry count, total bytes)
    versions: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    legacy_files: int = 0

    @property
    def entries(self) -> int:
        """Entry count of the current version."""
        return self.versions.get(self.current_version, (0, 0))[0]

    @property
    def total_bytes(self) -> int:
        """Bytes across every version."""
        return sum(b for _, b in self.versions.values())

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"cache {self.root} (current v{self.current_version})"]
        for ver in sorted(self.versions):
            n, b = self.versions[ver]
            mark = "*" if ver == self.current_version else " "
            lines.append(f"  {mark} v{ver}: {n} entries, {b / 1e6:.2f} MB")
        if not self.versions:
            lines.append("    (empty)")
        if self.legacy_files:
            lines.append(
                f"    {self.legacy_files} legacy flat files (prune removes)"
            )
        return "\n".join(lines)


@dataclass
class PruneReport:
    """What :meth:`ResultCache.prune` removed."""

    stale_versions: int = 0
    stale_entries: int = 0
    corrupt_entries: int = 0
    legacy_files: int = 0
    tmp_files: int = 0

    @property
    def removed(self) -> int:
        """Total files/entries removed."""
        return (
            self.stale_entries
            + self.corrupt_entries
            + self.legacy_files
            + self.tmp_files
        )

    def render(self) -> str:
        """One-line summary."""
        return (
            f"pruned {self.removed} files: {self.stale_versions} stale "
            f"version dirs ({self.stale_entries} entries), "
            f"{self.corrupt_entries} corrupt, {self.legacy_files} legacy, "
            f"{self.tmp_files} tmp"
        )


@dataclass
class MergeReport:
    """What :meth:`ResultCache.import_entries` did with one source cache."""

    source: str
    imported: int = 0
    identical: int = 0
    conflicts: int = 0
    stale_manifest: int = 0
    corrupt: int = 0
    excluded: int = 0

    @property
    def examined(self) -> int:
        """Source entries whose blobs were actually compared or copied."""
        return self.imported + self.identical + self.conflicts

    def render(self) -> str:
        """One-line summary (``repro-cmp cache merge``)."""
        text = (
            f"merged {self.source}: {self.imported} imported, "
            f"{self.identical} identical, {self.conflicts} conflicts kept "
            f"local, {self.stale_manifest} stale manifest rows, "
            f"{self.corrupt} corrupt skipped"
        )
        if self.excluded:
            text += f", {self.excluded} previously merged"
        return text


class ResultCache:
    """Sharded JSON blob store keyed by sweep-point cache keys."""

    def __init__(self, root: str, version: int) -> None:
        self.root = root
        self.version = int(version)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def version_dir(self, version: Optional[int] = None) -> str:
        """Directory of one schema version."""
        return os.path.join(
            self.root, f"v{self.version if version is None else version}"
        )

    def path_for(self, key: str) -> str:
        """Entry path of ``key`` in the current version."""
        return os.path.join(self.version_dir(), shard_of(key), key + ".json")

    def provenance_path(self, key: str) -> str:
        """Provenance-sidecar path of ``key`` in the current version."""
        return os.path.join(
            self.version_dir(), PROVENANCE_DIR, shard_of(key), key + ".json"
        )

    # ------------------------------------------------------------------
    # Entry I/O
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Load an entry; ``None`` on miss.  Corrupt entries are deleted."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                blob = json.load(fh)
        except OSError:
            # transient I/O failure (or plain miss): the entry may be
            # perfectly valid, so report a miss without deleting it
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.invalidate(key)
            return None
        if not isinstance(blob, dict):
            self.invalidate(key)
            return None
        return blob

    def put(self, key: str, blob: dict) -> str:
        """Atomically write an entry (tmp file + ``os.replace``)."""
        return self.put_bytes(key, json.dumps(blob).encode("utf-8"))

    def put_bytes(self, key: str, data: bytes) -> str:
        """Atomically write an entry's raw serialized bytes.

        The shard-import path uses this instead of :meth:`put` so merged
        entries stay byte-for-byte identical to what the source worker
        wrote — re-encoding could mask a producer that serializes
        differently.
        """
        return atomic_write(self.path_for(key), data)

    def read_bytes(self, key: str) -> Optional[bytes]:
        """Raw serialized bytes of an entry; ``None`` on miss."""
        try:
            with open(self.path_for(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def put_provenance(self, key: str, info: dict) -> str:
        """Atomically record who produced an entry (worker/host/backend).

        Provenance lives in a *sidecar* file, never inside the entry
        blob — result blobs stay byte-identical across workers, hosts
        and wall-clock time, which is the property every bit-identity
        test and byte-for-byte merge relies on.  The manifest
        (:meth:`write_manifest`) folds the sidecars into its rows.
        """
        return atomic_write(
            self.provenance_path(key),
            json.dumps(info, sort_keys=True).encode("utf-8"),
        )

    def get_provenance(self, key: str) -> Optional[dict]:
        """Load one entry's provenance record; ``None`` when absent."""
        try:
            with open(self.provenance_path(key)) as fh:
                info = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return info if isinstance(info, dict) else None

    def invalidate(self, key: str) -> bool:
        """Delete one entry (and its provenance); True if it existed."""
        try:
            os.unlink(self.provenance_path(key))
        except OSError:
            pass
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    # Maintenance API
    # ------------------------------------------------------------------
    def iter_entries(
        self, version: Optional[int] = None
    ) -> Iterator[Tuple[str, str]]:
        """Yield ``(key, path)`` for every entry of one version."""
        vdir = self.version_dir(version)
        try:
            shards = sorted(os.listdir(vdir))
        except OSError:
            return
        for shard in shards:
            if shard == PROVENANCE_DIR:
                continue
            shard_dir = os.path.join(vdir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(_TMP_PREFIX) or not name.endswith(".json"):
                    continue
                yield name[: -len(".json")], os.path.join(shard_dir, name)

    def versions_present(self) -> Dict[int, str]:
        """Schema versions on disk, as ``version -> directory``."""
        out: Dict[int, str] = {}
        try:
            names = os.listdir(self.root)
        except OSError:
            return out
        for name in names:
            path = os.path.join(self.root, name)
            if name.startswith("v") and name[1:].isdigit() and os.path.isdir(path):
                out[int(name[1:])] = path
        return out

    def _legacy_files(self) -> list:
        """Flat ``v*-*.json`` files from the pre-sharded layout."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [
            os.path.join(self.root, n)
            for n in sorted(names)
            if n.endswith(".json") and os.path.isfile(os.path.join(self.root, n))
        ]

    def stats(self) -> CacheStats:
        """Entry counts and sizes per version plus legacy leftovers."""
        st = CacheStats(root=self.root, current_version=self.version)
        for ver in self.versions_present():
            count = size = 0
            for _, path in self.iter_entries(ver):
                count += 1
                try:
                    size += os.path.getsize(path)
                except OSError:
                    pass
            st.versions[ver] = (count, size)
        st.legacy_files = len(self._legacy_files())
        return st

    def prune(self, validate: bool = True) -> PruneReport:
        """Reclaim disk: stale versions, corrupt/tmp entries, legacy files.

        ``validate`` additionally parses every current-version entry and
        deletes the ones that fail to load.
        """
        report = PruneReport()
        for ver, vdir in self.versions_present().items():
            if ver == self.version:
                continue
            report.stale_entries += sum(1 for _ in self.iter_entries(ver))
            shutil.rmtree(vdir, ignore_errors=True)
            report.stale_versions += 1
        for path in self._legacy_files():
            os.unlink(path)
            report.legacy_files += 1
        vdir = self.version_dir()
        if os.path.isdir(vdir):
            for dirpath, _, names in os.walk(vdir):
                for name in names:
                    if name.startswith(_TMP_PREFIX):
                        os.unlink(os.path.join(dirpath, name))
                        report.tmp_files += 1
        if validate:
            for key, path in list(self.iter_entries()):
                try:
                    with open(path) as fh:
                        json.load(fh)
                except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                    os.unlink(path)
                    report.corrupt_entries += 1
        return report

    def build_manifest(self) -> dict:
        """A fresh, read-only manifest of what is on disk *right now*.

        Every row is re-verified against its blob file: a key whose blob
        vanished between the directory listing and the stat — or that
        survives only as a provenance sidecar after
        :meth:`invalidate`/:meth:`prune` — is dropped, never listed.
        The invariant consumers rely on: every key in the returned
        manifest had a blob :meth:`read_bytes` could read at build time
        (so a serving layer never advertises an entry it cannot serve).
        """
        entries = {}
        for key, path in self.iter_entries():
            try:
                row = {
                    "bytes": os.path.getsize(path),
                    "shard": shard_of(key),
                }
            except OSError:
                continue  # blob vanished since listing: drop, don't 404 later
            prov = self.get_provenance(key)
            if prov is not None:
                row["provenance"] = prov
            entries[key] = row
        return {
            "version": self.version,
            "count": len(entries),
            "entries": entries,
        }

    def write_manifest(self) -> str:
        """Write an atomic ``index.json`` snapshot of the current version.

        The written manifest is a convenience for humans and external
        tooling (sync scripts, CI artifact diffing); lookups never
        consult it, so a stale manifest can never serve stale results —
        and readers that must be fresh (the HTTP ``/v1/manifest``
        endpoint) call :meth:`build_manifest` directly instead of
        trusting a possibly-stale ``index.json``.
        """
        manifest = self.build_manifest()
        return atomic_write(
            os.path.join(self.version_dir(), MANIFEST_NAME),
            json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
        )

    def read_manifest(self) -> Optional[dict]:
        """Load the manifest snapshot; ``None`` when absent/corrupt."""
        path = os.path.join(self.version_dir(), MANIFEST_NAME)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # Multi-host sync
    # ------------------------------------------------------------------
    def import_entries(
        self,
        source: Union["ResultCache", str],
        use_manifest: bool = True,
        exclude: Iterable[str] = (),
    ) -> MergeReport:
        """Merge another cache's current-version entries into this one.

        The source is another cache root (e.g. a batch worker's shard,
        or a ``.repro_cache`` rsynced from a different host).  The shard
        directories are always walked, and with ``use_manifest`` the
        manifest's key list is unioned in — so entries written *after*
        the manifest snapshot are still merged, while manifest rows whose
        blob is missing on disk are counted as ``stale_manifest`` (a
        worker died between write and sync) instead of failing.

        Entries are copied byte-for-byte (:meth:`put_bytes`).  A key that
        already exists locally with identical bytes is counted and
        skipped; differing bytes are a **conflict** — the local entry
        wins, because two deterministic runs of one schema version can
        only disagree when something is wrong, and the count surfaces
        that for auditing.  Source blobs that fail to parse are skipped
        as ``corrupt``, never imported.

        ``exclude`` names keys to skip without any I/O (counted as
        ``excluded``) — pollers that repeatedly merge a still-growing
        shard pass the keys they already settled so steady-state polls
        cost one directory listing, not a byte comparison per entry.
        """
        src = (
            source
            if isinstance(source, ResultCache)
            else ResultCache(source, self.version)
        )
        report = MergeReport(source=src.root)
        skip = set(exclude)
        paths: Dict[str, str] = dict(src.iter_entries())
        manifest = src.read_manifest() if use_manifest else None
        if manifest is not None and isinstance(manifest.get("entries"), dict):
            for key in manifest["entries"]:
                paths.setdefault(key, src.path_for(key))
        for key in sorted(paths):
            path = paths[key]
            if key in skip:
                report.excluded += 1
                continue
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                report.stale_manifest += 1
                continue
            try:
                blob = json.loads(data)
            except (json.JSONDecodeError, UnicodeDecodeError):
                report.corrupt += 1
                continue
            if not isinstance(blob, dict):
                report.corrupt += 1
                continue
            ours = self.read_bytes(key)
            if ours is None:
                self.put_bytes(key, data)
                report.imported += 1
            elif ours == data:
                report.identical += 1
            else:
                report.conflicts += 1
                continue
            # carry the producer's provenance sidecar along with its
            # entry (local records win; conflicts keep local everything)
            if self.get_provenance(key) is None:
                prov = src.get_provenance(key)
                if prov is not None:
                    self.put_provenance(key, prov)
        return report
