"""Sharded, atomically-written on-disk result cache.

Layout (one directory per schema version, 256 shards per version)::

    <root>/
        v8/
            index.json          # manifest snapshot (write_manifest)
            3f/
                <key>.json      # one sweep point, shard = sha1(key)[:2]
            a0/
                ...

Properties the sweep executor relies on:

* **atomic writes** — entries are written to a ``.tmp-*`` file in the
  final shard directory and published with :func:`os.replace`, so readers
  (including concurrent pool workers) never observe a truncated blob and
  two writers racing on the same key leave one complete entry;
* **corrupt-entry recovery** — :meth:`ResultCache.get` deletes and
  reports a miss for entries that fail to parse (e.g. a pre-fix truncated
  write, or a crash mid-``json.dump`` on a non-atomic cache), so one bad
  blob costs a resimulation instead of crashing every later load;
* **version isolation** — bumping the schema version simply selects a
  different subdirectory; stale versions are reclaimed by :meth:`prune`.

The legacy flat layout (``<root>/v7-<key>.json`` files produced before
the sharded cache existed) is never read; :meth:`prune` deletes it.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..sim.config import stable_digest

#: manifest file name inside each version directory
MANIFEST_NAME = "index.json"

_TMP_PREFIX = ".tmp-"


def shard_of(key: str) -> str:
    """Two-hex-digit shard of a cache key (256-way fanout)."""
    return stable_digest(key)[:2]


@dataclass
class CacheStats:
    """Aggregate cache statistics (``repro-cmp cache stats``)."""

    root: str
    current_version: int
    #: version -> (entry count, total bytes)
    versions: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    legacy_files: int = 0

    @property
    def entries(self) -> int:
        """Entry count of the current version."""
        return self.versions.get(self.current_version, (0, 0))[0]

    @property
    def total_bytes(self) -> int:
        """Bytes across every version."""
        return sum(b for _, b in self.versions.values())

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"cache {self.root} (current v{self.current_version})"]
        for ver in sorted(self.versions):
            n, b = self.versions[ver]
            mark = "*" if ver == self.current_version else " "
            lines.append(f"  {mark} v{ver}: {n} entries, {b / 1e6:.2f} MB")
        if not self.versions:
            lines.append("    (empty)")
        if self.legacy_files:
            lines.append(
                f"    {self.legacy_files} legacy flat files (prune removes)"
            )
        return "\n".join(lines)


@dataclass
class PruneReport:
    """What :meth:`ResultCache.prune` removed."""

    stale_versions: int = 0
    stale_entries: int = 0
    corrupt_entries: int = 0
    legacy_files: int = 0
    tmp_files: int = 0

    @property
    def removed(self) -> int:
        """Total files/entries removed."""
        return (
            self.stale_entries
            + self.corrupt_entries
            + self.legacy_files
            + self.tmp_files
        )

    def render(self) -> str:
        """One-line summary."""
        return (
            f"pruned {self.removed} files: {self.stale_versions} stale "
            f"version dirs ({self.stale_entries} entries), "
            f"{self.corrupt_entries} corrupt, {self.legacy_files} legacy, "
            f"{self.tmp_files} tmp"
        )


class ResultCache:
    """Sharded JSON blob store keyed by sweep-point cache keys."""

    def __init__(self, root: str, version: int) -> None:
        self.root = root
        self.version = int(version)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def version_dir(self, version: Optional[int] = None) -> str:
        """Directory of one schema version."""
        return os.path.join(
            self.root, f"v{self.version if version is None else version}"
        )

    def path_for(self, key: str) -> str:
        """Entry path of ``key`` in the current version."""
        return os.path.join(self.version_dir(), shard_of(key), key + ".json")

    # ------------------------------------------------------------------
    # Entry I/O
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Load an entry; ``None`` on miss.  Corrupt entries are deleted."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                blob = json.load(fh)
        except OSError:
            # transient I/O failure (or plain miss): the entry may be
            # perfectly valid, so report a miss without deleting it
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self.invalidate(key)
            return None
        if not isinstance(blob, dict):
            self.invalidate(key)
            return None
        return blob

    def put(self, key: str, blob: dict) -> str:
        """Atomically write an entry (tmp file + ``os.replace``)."""
        path = self.path_for(key)
        shard_dir = os.path.dirname(path)
        os.makedirs(shard_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=shard_dir, prefix=_TMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(blob, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, key: str) -> bool:
        """Delete one entry; True if it existed."""
        try:
            os.unlink(self.path_for(key))
            return True
        except OSError:
            return False

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    # Maintenance API
    # ------------------------------------------------------------------
    def iter_entries(
        self, version: Optional[int] = None
    ) -> Iterator[Tuple[str, str]]:
        """Yield ``(key, path)`` for every entry of one version."""
        vdir = self.version_dir(version)
        try:
            shards = sorted(os.listdir(vdir))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(vdir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(_TMP_PREFIX) or not name.endswith(".json"):
                    continue
                yield name[: -len(".json")], os.path.join(shard_dir, name)

    def versions_present(self) -> Dict[int, str]:
        """Schema versions on disk, as ``version -> directory``."""
        out: Dict[int, str] = {}
        try:
            names = os.listdir(self.root)
        except OSError:
            return out
        for name in names:
            path = os.path.join(self.root, name)
            if name.startswith("v") and name[1:].isdigit() and os.path.isdir(path):
                out[int(name[1:])] = path
        return out

    def _legacy_files(self) -> list:
        """Flat ``v*-*.json`` files from the pre-sharded layout."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [
            os.path.join(self.root, n)
            for n in sorted(names)
            if n.endswith(".json") and os.path.isfile(os.path.join(self.root, n))
        ]

    def stats(self) -> CacheStats:
        """Entry counts and sizes per version plus legacy leftovers."""
        st = CacheStats(root=self.root, current_version=self.version)
        for ver in self.versions_present():
            count = size = 0
            for _, path in self.iter_entries(ver):
                count += 1
                try:
                    size += os.path.getsize(path)
                except OSError:
                    pass
            st.versions[ver] = (count, size)
        st.legacy_files = len(self._legacy_files())
        return st

    def prune(self, validate: bool = True) -> PruneReport:
        """Reclaim disk: stale versions, corrupt/tmp entries, legacy files.

        ``validate`` additionally parses every current-version entry and
        deletes the ones that fail to load.
        """
        report = PruneReport()
        for ver, vdir in self.versions_present().items():
            if ver == self.version:
                continue
            report.stale_entries += sum(1 for _ in self.iter_entries(ver))
            shutil.rmtree(vdir, ignore_errors=True)
            report.stale_versions += 1
        for path in self._legacy_files():
            os.unlink(path)
            report.legacy_files += 1
        vdir = self.version_dir()
        if os.path.isdir(vdir):
            for dirpath, _, names in os.walk(vdir):
                for name in names:
                    if name.startswith(_TMP_PREFIX):
                        os.unlink(os.path.join(dirpath, name))
                        report.tmp_files += 1
        if validate:
            for key, path in list(self.iter_entries()):
                try:
                    with open(path) as fh:
                        json.load(fh)
                except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                    os.unlink(path)
                    report.corrupt_entries += 1
        return report

    def write_manifest(self) -> str:
        """Write an atomic ``index.json`` snapshot of the current version.

        The manifest is a convenience for humans and external tooling
        (sync scripts, CI artifact diffing); lookups never consult it, so
        a stale manifest can never serve stale results.
        """
        entries = {}
        for key, path in self.iter_entries():
            try:
                entries[key] = {
                    "bytes": os.path.getsize(path),
                    "shard": shard_of(key),
                }
            except OSError:
                continue
        vdir = self.version_dir()
        os.makedirs(vdir, exist_ok=True)
        manifest = {
            "version": self.version,
            "count": len(entries),
            "entries": entries,
        }
        fd, tmp = tempfile.mkstemp(dir=vdir, prefix=_TMP_PREFIX, suffix=".json")
        target = os.path.join(vdir, MANIFEST_NAME)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(manifest, fh, indent=1, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    def read_manifest(self) -> Optional[dict]:
        """Load the manifest snapshot; ``None`` when absent/corrupt."""
        path = os.path.join(self.version_dir(), MANIFEST_NAME)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
