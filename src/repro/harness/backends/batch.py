"""Batch-queue sweep execution: a task file plus cache-shard ingest.

Where the socket backend needs live connections, this backend needs only
a directory that hosts can sync (NFS, rsync, a CI artifact store)::

    <queue_dir>/
        tasks.json              # runner params + the planned points
        results/
            <worker_id>/        # one ResultCache root per worker
                v9/...          #   sharded entries, standard layout
                v9/index.json   #   manifest, written when the worker ends

The coordinator *emits* ``tasks.json`` — runner params plus every
pending :class:`~repro.harness.spec.SweepPoint` in canonical dict form
(task format 2; format 1 carried bare string triples and is rejected) —
and then *ingests*: every cache root under ``results/`` is merged into
the runner's own :class:`~repro.harness.result_cache.ResultCache` via
:meth:`~repro.harness.result_cache.ResultCache.import_entries` — a
manifest-driven, byte-for-byte copy, so figure tables come out identical
to a serial sweep.  Workers (``repro-cmp work --queue-dir DIR`` anywhere
the directory is synced, optionally sliced ``--slice i/n``) claim their
share of the task list and write only inside their own subdirectory, so
no two hosts ever contend on a file.

Ingest is idempotent and crash-tolerant by construction: already-present
entries are skipped after a byte comparison, manifest rows whose blob
never arrived (a worker died before the copy) are counted as stale and
simply re-awaited, and a worker that reran a task produced the same bytes
anyway because points are deterministic.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import List, Optional, Sequence, Tuple

from ..result_cache import MergeReport, ResultCache, atomic_write
from ..runner import CACHE_VERSION, SweepRunner, decode_entry
from ..spec import SweepPoint
from .base import default_worker_id, register_backend

#: task-file name inside the queue directory
TASK_FILE = "tasks.json"

#: per-worker result roots live under this subdirectory
RESULTS_DIR = "results"

#: schema marker of the task file (2 = serialized SweepPoints)
TASK_FORMAT = 2


def write_task_file(
    queue_dir: str, params: dict, points: Sequence[SweepPoint]
) -> str:
    """Atomically publish the task file for a planned sweep."""
    payload = {
        "format": TASK_FORMAT,
        "cache_version": CACHE_VERSION,
        "params": params,
        "points": [point.to_dict() for point in points],
    }
    return atomic_write(
        os.path.join(queue_dir, TASK_FILE),
        json.dumps(payload, indent=1, sort_keys=True).encode("utf-8"),
    )


def read_task_file(queue_dir: str) -> dict:
    """Load and validate the queue's task file (points are rebuilt)."""
    path = os.path.join(queue_dir, TASK_FILE)
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != TASK_FORMAT:
        raise ValueError(
            f"{path}: unsupported task-file format {payload.get('format')!r}"
            f" (this build reads format {TASK_FORMAT})"
        )
    if payload.get("cache_version") != CACHE_VERSION:
        raise ValueError(
            f"{path}: task file targets cache v{payload.get('cache_version')}"
            f", this build writes v{CACHE_VERSION}"
        )
    payload["points"] = [
        SweepPoint.from_dict(entry) for entry in payload["points"]
    ]
    return payload


def worker_result_dir(queue_dir: str, worker_id: str) -> str:
    """Cache root a batch worker writes into."""
    return os.path.join(queue_dir, RESULTS_DIR, worker_id)


def list_worker_result_dirs(queue_dir: str) -> List[str]:
    """Every per-worker cache root currently present, sorted."""
    root = os.path.join(queue_dir, RESULTS_DIR)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [
        os.path.join(root, name)
        for name in names
        if os.path.isdir(os.path.join(root, name))
    ]


def run_batch_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    task_slice: Tuple[int, int] = (0, 1),
) -> int:
    """Process one worker's share of the queue's task file.

    ``task_slice`` is ``(i, n)``: this worker claims every n-th point
    starting at index ``i`` — a static partition, so concurrent workers
    never collide.  Results land in the worker's own cache root, and a
    manifest snapshot is written at the end to mark the shard complete.
    Returns the number of points simulated (cached points are free).
    """
    payload = read_task_file(queue_dir)
    index, modulus = task_slice
    if not (0 <= index < modulus):
        raise ValueError(f"task slice {index}/{modulus} out of range")
    wid = worker_id or default_worker_id()
    runner = SweepRunner(
        verbose=False,
        cache_dir=worker_result_dir(queue_dir, wid),
        **payload["params"],
    )
    runner.backend_label = "batch"
    runner.worker_id = wid
    done = 0
    for point in payload["points"][index::modulus]:
        if runner.lookup(point) is None:
            done += 1
        runner.run_point(point)
    runner.cache.write_manifest()
    return done


class BatchQueueBackend:
    """Emit a task file, then ingest completed shards until done.

    With ``spawn_workers > 0`` the backend runs that many batch workers
    as local child processes (one sliced pass over the task file) — the
    single-host proof of the full emit → work → ingest cycle, and what
    the tests diff against the serial runner.  With ``spawn_workers = 0``
    it polls ``results/`` every ``poll_interval`` seconds, ingesting
    whatever synced-in shards appeared, until the matrix is complete or
    ``timeout`` elapses.
    """

    name = "batch"

    def __init__(
        self,
        queue_dir: str = ".repro_queue",
        spawn_workers: int = 2,
        poll_interval: float = 1.0,
        timeout: Optional[float] = None,
    ) -> None:
        self.queue_dir = queue_dir
        self.spawn_workers = spawn_workers
        self.poll_interval = poll_interval
        self.timeout = timeout
        #: merge reports accumulated by the last :meth:`execute`
        self.last_reports: List[MergeReport] = []

    # ------------------------------------------------------------------
    def collect(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> List[SweepPoint]:
        """Ingest every present shard; return the still-missing points.

        When the runner has a disk cache, shards are merged into it
        byte-for-byte (the multi-host sync path); either way, decoded
        results are installed into the runner's memo so figure code can
        run immediately.  Keys already installed are excluded from the
        merge, so re-polling a slow queue costs a directory listing per
        shard, not a re-read of everything already ingested; only merge
        rounds that did something are kept in :attr:`last_reports`.
        """
        worker_dirs = list_worker_result_dirs(self.queue_dir)
        worker_caches = [ResultCache(d, CACHE_VERSION) for d in worker_dirs]
        if runner.cache is not None:
            settled = {
                runner.point_key(point)
                for point in pending
                if runner.lookup(point) is not None
            }
            for cache in worker_caches:
                report = runner.cache.import_entries(cache, exclude=settled)
                if report.examined or report.stale_manifest or report.corrupt:
                    self.last_reports.append(report)
        missing: List[SweepPoint] = []
        for point in pending:
            if runner.lookup(point) is not None:
                continue
            key = runner.point_key(point)
            blob = self._read_shard_entry(worker_caches, key)
            if blob is None:
                missing.append(point)
                continue
            try:
                res, energy = decode_entry(blob)
            except (KeyError, TypeError, ValueError):
                # JSON-valid but schema-invalid shard entry: skip it like
                # the corrupt-JSON path and keep awaiting a good copy
                missing.append(point)
                continue
            runner.install(point, res, energy)
        return missing

    @staticmethod
    def _read_shard_entry(
        worker_caches: Sequence[ResultCache], key: str
    ) -> Optional[dict]:
        """Load ``key`` from the first shard that has a parseable copy.

        Deliberately *not* :meth:`ResultCache.get`: that method deletes
        corrupt entries, and worker shards belong to their workers — a
        half-synced blob must be skipped, not unlinked, so a later sync
        can complete it.
        """
        for cache in worker_caches:
            data = cache.read_bytes(key)
            if data is None:
                continue
            try:
                blob = json.loads(data)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(blob, dict):
                return blob
        return None

    def _spawn_and_wait(self, deadline: Optional[float]) -> None:
        """Run ``spawn_workers`` sliced batch workers to completion.

        ``deadline`` is a :func:`time.monotonic` timestamp; workers still
        alive past it are terminated and the sweep raises ``TimeoutError``
        (partial shards stay on disk, so a rerun resumes from them).
        """
        procs = []
        for i in range(self.spawn_workers):
            proc = multiprocessing.Process(
                target=run_batch_worker,
                args=(self.queue_dir,),
                kwargs={
                    "worker_id": f"batch-{i}",
                    "task_slice": (i, self.spawn_workers),
                },
            )
            proc.start()
            procs.append(proc)
        failures = []
        timed_out = False
        for i, proc in enumerate(procs):
            if deadline is None:
                proc.join()
            else:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(10)
                    timed_out = True
                    continue
            if proc.exitcode != 0:
                failures.append(f"batch-{i} exited {proc.exitcode}")
        if timed_out:
            raise TimeoutError(
                f"batch workers still running after {self.timeout}s; "
                f"terminated (partial shards kept in {self.queue_dir})"
            )
        if failures:
            raise RuntimeError(
                f"batch workers failed: {'; '.join(failures)} "
                f"(task file and partial shards left in {self.queue_dir})"
            )

    def execute(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> int:
        """Publish the task file and ingest shards until all installed."""
        pending = list(pending)
        if not pending:
            return 0
        self.last_reports = []
        params = runner.runner_params()
        write_task_file(self.queue_dir, params, pending)
        if runner.verbose:
            print(
                f"[sweep:batch] {len(pending)} points queued in "
                f"{self.queue_dir} ({self.spawn_workers} local workers)",
                flush=True,
            )
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        if self.spawn_workers:
            self._spawn_and_wait(deadline)
            missing = self.collect(runner, pending)
            if missing:
                lost = ", ".join(point.describe() for point in missing)
                raise RuntimeError(
                    f"batch workers finished but left points missing: {lost}"
                )
            return len(pending)
        while True:
            missing = self.collect(runner, pending)
            if not missing:
                return len(pending)
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"batch sweep timed out with {len(missing)} of "
                    f"{len(pending)} points missing from {self.queue_dir}"
                )
            if runner.verbose:
                print(
                    f"[sweep:batch] waiting: {len(missing)} points missing",
                    flush=True,
                )
            time.sleep(self.poll_interval)


register_backend("batch", BatchQueueBackend)
