"""Batch-queue sweep execution: a task file plus cache-shard ingest.

Where the socket backend needs live connections, this backend needs only
a directory that hosts can sync (NFS, rsync, a CI artifact store)::

    <queue_dir>/
        tasks.json              # runner params + the planned points
        leases/
            <cache_key>.lease   # who is working on what (mtime-renewed)
        events/
            <worker_id>.jsonl   # claim/complete ledger -> campaign report
        results/
            <worker_id>/        # one ResultCache root per worker
                v9/...          #   sharded entries, standard layout
                v9/index.json   #   manifest, written when the worker ends

The coordinator *emits* ``tasks.json`` — runner params plus every
pending :class:`~repro.harness.spec.SweepPoint` in canonical dict form
(task format 2; format 1 carried bare string triples and is rejected) —
and then *ingests*: every cache root under ``results/`` is merged into
the runner's own :class:`~repro.harness.result_cache.ResultCache` via
:meth:`~repro.harness.result_cache.ResultCache.import_entries` — a
manifest-driven, byte-for-byte copy, so figure tables come out identical
to a serial sweep.

Workers (``repro-cmp work --queue-dir DIR`` anywhere the directory is
synced) *claim* points through the lease files of
:mod:`~repro.harness.backends.lease` instead of owning a static slice:
each worker sweeps the task list, atomically claims the next unowned
point, renews the lease's mtime while simulating, and releases it after
publishing into its own shard.  A worker that dies mid-point leaves a
lease that stops being renewed; once it is ``lease_timeout`` stale, any
live worker reclaims it — the ROADMAP's "dynamic re-slicing", as a
filesystem protocol.  ``--slice i/n`` survives as a *preference*: the
worker claims its slice first and steals the rest, so an evenly-started
fleet partitions exactly as before while a lopsided one rebalances.

Ingest is idempotent and crash-tolerant by construction: already-present
entries are skipped after a byte comparison, manifest rows whose blob
never arrived (a worker died before the copy) are counted as stale and
simply re-awaited, and a worker that reran a task produced the same bytes
anyway because points are deterministic.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import CampaignReport, PointRecord
from ..faults import (
    KILL_EXIT_CODE,
    FaultInjector,
    PlanLike,
    backoff_seconds,
    coerce_plan,
)
from ..result_cache import MergeReport, ResultCache, atomic_write
from ..runner import CACHE_VERSION, SweepRunner, decode_entry
from ..spec import SweepPoint
from .base import default_worker_id, register_backend
from .lease import (
    DEFAULT_LEASE_TIMEOUT,
    LeaseRenewer,
    claim_lease,
    lease_age,
    lease_path,
    log_event,
    read_events,
    read_lease,
    release_lease,
)

#: task-file name inside the queue directory
TASK_FILE = "tasks.json"

#: per-worker result roots live under this subdirectory
RESULTS_DIR = "results"

#: schema marker of the task file (2 = serialized SweepPoints)
TASK_FORMAT = 2


def write_task_file(
    queue_dir: str, params: dict, points: Sequence[SweepPoint]
) -> str:
    """Atomically publish the task file for a planned sweep."""
    payload = {
        "format": TASK_FORMAT,
        "cache_version": CACHE_VERSION,
        "params": params,
        "points": [point.to_dict() for point in points],
    }
    return atomic_write(
        os.path.join(queue_dir, TASK_FILE),
        json.dumps(payload, indent=1, sort_keys=True).encode("utf-8"),
    )


def read_task_file(queue_dir: str) -> dict:
    """Load and validate the queue's task file (points are rebuilt)."""
    path = os.path.join(queue_dir, TASK_FILE)
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != TASK_FORMAT:
        raise ValueError(
            f"{path}: unsupported task-file format {payload.get('format')!r}"
            f" (this build reads format {TASK_FORMAT})"
        )
    if payload.get("cache_version") != CACHE_VERSION:
        raise ValueError(
            f"{path}: task file targets cache v{payload.get('cache_version')}"
            f", this build writes v{CACHE_VERSION}"
        )
    payload["points"] = [
        SweepPoint.from_dict(entry) for entry in payload["points"]
    ]
    return payload


def worker_result_dir(queue_dir: str, worker_id: str) -> str:
    """Cache root a batch worker writes into."""
    return os.path.join(queue_dir, RESULTS_DIR, worker_id)


def list_worker_result_dirs(queue_dir: str) -> List[str]:
    """Every per-worker cache root currently present, sorted."""
    root = os.path.join(queue_dir, RESULTS_DIR)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [
        os.path.join(root, name)
        for name in names
        if os.path.isdir(os.path.join(root, name))
    ]


def _settled_elsewhere(queue_dir: str, worker_id: str, key: str) -> bool:
    """Whether some *other* worker's shard already holds ``key``."""
    for shard_dir in list_worker_result_dirs(queue_dir):
        if os.path.basename(shard_dir) == worker_id:
            continue
        if ResultCache(shard_dir, CACHE_VERSION).read_bytes(key) is not None:
            return True
    return False


def run_batch_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    task_slice: Tuple[int, int] = (0, 1),
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    fault_plan: Optional[dict] = None,
) -> int:
    """Work the queue's task file until every point is settled somewhere.

    Points are claimed through lease files, so any number of workers may
    run this concurrently (or join late): each point is simulated by
    whoever claims it, a claim is renewed while the simulation runs, and
    a dead worker's stale claim is reclaimed by the survivors.
    ``task_slice`` ``(i, n)`` is an ordering *preference* — this worker
    tries to claim every n-th point starting at ``i`` before stealing
    the rest — which keeps an evenly-matched fleet partitioned exactly
    like the old static slicing, without stranding a dead worker's
    share.

    ``fault_plan`` (dict form of a
    :class:`~repro.harness.faults.FaultPlan`) drives the chaos tests:
    receipt faults (``kill``/``hang``/``drop``) and ``delay`` apply
    here; ``corrupt``/``duplicate`` are wire faults, meaningful only on
    the socket backend.  Results land in the worker's own cache root,
    and a manifest snapshot is written at the end to mark the shard
    complete.  Returns the number of points simulated (cached points
    are free).
    """
    payload = read_task_file(queue_dir)
    index, modulus = task_slice
    if not (0 <= index < modulus):
        raise ValueError(f"task slice {index}/{modulus} out of range")
    wid = worker_id or default_worker_id()
    injector = FaultInjector(fault_plan, wid)
    runner = SweepRunner(
        verbose=False,
        cache_dir=worker_result_dir(queue_dir, wid),
        **payload["params"],
    )
    runner.backend_label = "batch"
    runner.worker_id = wid
    points = payload["points"]
    preferred = points[index::modulus]
    stolen = [p for i, p in enumerate(points) if (i - index) % modulus != 0]
    ordered = preferred + stolen
    renew_interval = max(0.05, lease_timeout / 4.0)
    done = 0
    idle_rounds = 0
    while True:
        progressed = False
        contended = False
        for point in ordered:
            if runner.lookup(point) is not None:
                continue
            key = runner.point_key(point)
            if _settled_elsewhere(queue_dir, wid, key):
                continue
            kind = claim_lease(queue_dir, key, wid, lease_timeout)
            if kind is None:
                contended = True  # live lease elsewhere: retry later
                continue
            log_event(
                queue_dir,
                wid,
                {
                    "event": "claim",
                    "kind": kind,
                    "digest": key,
                    "point": point.describe(),
                    "t": time.time(),
                },
            )
            action = injector.on_task()
            if action is not None and action.kind == "kill":
                os._exit(KILL_EXIT_CODE)  # lease left to go stale
            if action is not None and action.kind == "hang":
                # wedge without renewing: the lease goes stale and the
                # point migrates to a live worker
                if action.seconds > 0:
                    time.sleep(action.seconds)
                    contended = True
                    continue
                while True:  # wedge until torn down
                    time.sleep(3600)
            if action is not None and action.kind == "drop":
                # connectionless analogue of a dropped connection:
                # abandon the claim immediately
                release_lease(queue_dir, key, wid)
                contended = True
                continue
            renewer = LeaseRenewer(queue_dir, key, wid, renew_interval)
            renewer.start()
            try:
                runner.run_point(point)
                delivery = injector.on_delivery()
                if delivery is not None and delivery.kind == "delay":
                    # slow, not dead: the renewer carries the lease
                    time.sleep(delivery.seconds)
            except Exception:
                release_lease(queue_dir, key, wid)
                raise
            finally:
                renewer.shutdown()
            release_lease(queue_dir, key, wid)
            log_event(
                queue_dir,
                wid,
                {
                    "event": "complete",
                    "digest": key,
                    "point": point.describe(),
                    "t": time.time(),
                },
            )
            done += 1
            progressed = True
        if not contended:
            break  # every point settled in some shard
        if progressed:
            idle_rounds = 0
        else:
            # someone else holds the remaining leases: back off, then
            # re-check (a stale lease becomes reclaimable on its own)
            time.sleep(
                backoff_seconds(
                    idle_rounds,
                    base=0.05,
                    cap=max(0.05, min(1.0, lease_timeout / 2)),
                    rng=injector.rng,
                )
            )
            idle_rounds += 1
    runner.cache.write_manifest()
    return done


class BatchQueueBackend:
    """Emit a task file, then ingest completed shards until done.

    With ``spawn_workers > 0`` the backend runs that many batch workers
    as local child processes (lease-claiming passes over the task file) —
    the single-host proof of the full emit → work → ingest cycle, and
    what the tests diff against the serial runner.  A spawned worker
    that dies is not fatal as long as the survivors finish its points
    via lease reclaim.  With ``spawn_workers = 0`` it polls
    ``results/`` with exponential backoff (from ``poll_interval``),
    ingesting whatever synced-in shards appeared, until the matrix is
    complete or ``timeout`` elapses — and the timeout error names the
    outstanding points and who leases them.  After :meth:`execute`,
    :attr:`last_report` holds the per-point
    :class:`~repro.harness.campaign.CampaignReport` aggregated from the
    workers' event ledgers.
    """

    name = "batch"

    def __init__(
        self,
        queue_dir: str = ".repro_queue",
        spawn_workers: int = 2,
        poll_interval: float = 1.0,
        timeout: Optional[float] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        fault_plan: PlanLike = None,
    ) -> None:
        self.queue_dir = queue_dir
        self.spawn_workers = spawn_workers
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.lease_timeout = float(lease_timeout)
        self.fault_plan = coerce_plan(fault_plan)
        #: merge reports accumulated by the last :meth:`execute`
        self.last_reports: List[MergeReport] = []
        #: per-point ledger of the last :meth:`execute`
        self.last_report: Optional[CampaignReport] = None

    # ------------------------------------------------------------------
    def collect(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> List[SweepPoint]:
        """Ingest every present shard; return the still-missing points.

        When the runner has a disk cache, shards are merged into it
        byte-for-byte (the multi-host sync path); either way, decoded
        results are installed into the runner's memo so figure code can
        run immediately.  Keys already installed are excluded from the
        merge, so re-polling a slow queue costs a directory listing per
        shard, not a re-read of everything already ingested; only merge
        rounds that did something are kept in :attr:`last_reports`.
        """
        worker_dirs = list_worker_result_dirs(self.queue_dir)
        worker_caches = [ResultCache(d, CACHE_VERSION) for d in worker_dirs]
        if runner.cache is not None:
            settled = {
                runner.point_key(point)
                for point in pending
                if runner.lookup(point) is not None
            }
            for cache in worker_caches:
                report = runner.cache.import_entries(cache, exclude=settled)
                if report.examined or report.stale_manifest or report.corrupt:
                    self.last_reports.append(report)
        missing: List[SweepPoint] = []
        for point in pending:
            if runner.lookup(point) is not None:
                continue
            key = runner.point_key(point)
            blob = self._read_shard_entry(worker_caches, key)
            if blob is None:
                missing.append(point)
                continue
            try:
                res, energy = decode_entry(blob)
            except (KeyError, TypeError, ValueError):
                # JSON-valid but schema-invalid shard entry: skip it like
                # the corrupt-JSON path and keep awaiting a good copy
                missing.append(point)
                continue
            runner.install(point, res, energy)
        return missing

    @staticmethod
    def _read_shard_entry(
        worker_caches: Sequence[ResultCache], key: str
    ) -> Optional[dict]:
        """Load ``key`` from the first shard that has a parseable copy.

        Deliberately *not* :meth:`ResultCache.get`: that method deletes
        corrupt entries, and worker shards belong to their workers — a
        half-synced blob must be skipped, not unlinked, so a later sync
        can complete it.
        """
        for cache in worker_caches:
            data = cache.read_bytes(key)
            if data is None:
                continue
            try:
                blob = json.loads(data)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(blob, dict):
                return blob
        return None

    # ------------------------------------------------------------------
    def _outstanding_summary(
        self, runner: SweepRunner, missing: Sequence[SweepPoint], limit: int = 10
    ) -> str:
        """Name the missing points and who (if anyone) leases them."""
        lines = []
        for point in list(missing)[:limit]:
            path = lease_path(self.queue_dir, runner.point_key(point))
            holder = read_lease(path)
            age = lease_age(path)
            if holder is not None and age is not None:
                lines.append(
                    f"{point.describe()} (leased by "
                    f"{holder.get('worker', '?')}, renewed {age:.0f}s ago)"
                )
            else:
                lines.append(f"{point.describe()} (unclaimed)")
        if len(missing) > limit:
            lines.append(f"... and {len(missing) - limit} more")
        return "; ".join(lines)

    def _campaign_report(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> CampaignReport:
        """Aggregate the workers' event ledgers into a campaign report."""
        claims: Dict[str, int] = {}
        reclaims: Dict[str, List[str]] = {}
        producers: Dict[str, str] = {}
        stats = {"claims": 0, "reclaimed": 0, "completions": 0}
        for event in read_events(self.queue_dir):
            digest = str(event.get("digest", ""))
            worker = str(event.get("worker", "?"))
            if event.get("event") == "claim":
                claims[digest] = claims.get(digest, 0) + 1
                stats["claims"] += 1
                if event.get("kind") == "reclaimed":
                    stats["reclaimed"] += 1
                    reclaims.setdefault(digest, []).append(
                        f"stale lease reclaimed by {worker}"
                    )
            elif event.get("event") == "complete":
                stats["completions"] += 1
                producers.setdefault(digest, worker)
        records = []
        for point in pending:
            key = runner.point_key(point)
            completed = runner.lookup(point) is not None
            records.append(
                PointRecord(
                    point=point.describe(),
                    digest=point.digest(),
                    status="completed" if completed else "pending",
                    attempts=claims.get(key, 0),
                    requeues=len(reclaims.get(key, ())),
                    reasons=list(reclaims.get(key, ())),
                    worker=producers.get(key),
                )
            )
        return CampaignReport(backend="batch", records=records, stats=stats)

    def _spawn_and_wait(
        self, deadline: Optional[float]
    ) -> Tuple[List[str], bool]:
        """Run ``spawn_workers`` lease-claiming workers; gather losses.

        ``deadline`` is a :func:`time.monotonic` timestamp; workers still
        alive past it are terminated.  Returns ``(failures, timed_out)``
        — a dead worker is *reported*, not fatal: whether the sweep
        survived it is decided by what :meth:`collect` finds afterwards.
        """
        plan_dict = self.fault_plan.to_dict() if self.fault_plan else None
        procs = []
        for i in range(self.spawn_workers):
            proc = multiprocessing.Process(
                target=run_batch_worker,
                args=(self.queue_dir,),
                kwargs={
                    "worker_id": f"batch-{i}",
                    "task_slice": (i, self.spawn_workers),
                    "lease_timeout": self.lease_timeout,
                    "fault_plan": plan_dict,
                },
            )
            proc.start()
            procs.append(proc)
        failures = []
        timed_out = False
        for i, proc in enumerate(procs):
            if deadline is None:
                proc.join()
            else:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(10)
                    timed_out = True
                    continue
            if proc.exitcode != 0:
                failures.append(f"batch-{i} exited {proc.exitcode}")
        return failures, timed_out

    def execute(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> int:
        """Publish the task file and ingest shards until all installed."""
        pending = list(pending)
        if not pending:
            return 0
        self.last_reports = []
        self.last_report = None
        params = runner.runner_params()
        write_task_file(self.queue_dir, params, pending)
        if runner.verbose:
            print(
                f"[sweep:batch] {len(pending)} points queued in "
                f"{self.queue_dir} ({self.spawn_workers} local workers, "
                f"lease {self.lease_timeout:g}s)",
                flush=True,
            )
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        if self.spawn_workers:
            failures, timed_out = self._spawn_and_wait(deadline)
            missing = self.collect(runner, pending)
            self.last_report = self._campaign_report(runner, pending)
            if timed_out:
                raise TimeoutError(
                    f"batch workers still running after {self.timeout}s; "
                    f"terminated (partial shards kept in {self.queue_dir})"
                )
            if missing:
                detail = self._outstanding_summary(runner, missing)
                note = (
                    f" (worker failures: {'; '.join(failures)})"
                    if failures
                    else ""
                )
                raise RuntimeError(
                    f"batch workers finished but left points missing: "
                    f"{detail}{note}"
                )
            if failures and runner.verbose:
                print(
                    f"[sweep:batch] survived worker losses: "
                    f"{'; '.join(failures)} (their points migrated)",
                    flush=True,
                )
            return len(pending)
        idle_rounds = 0
        last_missing = len(pending) + 1
        while True:
            missing = self.collect(runner, pending)
            if not missing:
                self.last_report = self._campaign_report(runner, pending)
                return len(pending)
            if deadline is not None and time.monotonic() >= deadline:
                self.last_report = self._campaign_report(runner, pending)
                raise TimeoutError(
                    f"batch sweep timed out with {len(missing)} of "
                    f"{len(pending)} points missing from {self.queue_dir}: "
                    f"{self._outstanding_summary(runner, missing)}"
                )
            if len(missing) < last_missing:
                idle_rounds = 0  # progress resets the backoff
            last_missing = len(missing)
            if runner.verbose:
                print(
                    f"[sweep:batch] waiting: {len(missing)} points missing",
                    flush=True,
                )
            time.sleep(
                backoff_seconds(
                    idle_rounds,
                    base=min(self.poll_interval, 1.0),
                    cap=max(self.poll_interval, 8.0),
                )
            )
            idle_rounds += 1


register_backend("batch", BatchQueueBackend)
