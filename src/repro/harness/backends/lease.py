"""File-based work leases for the connectionless batch backend.

The batch queue has no coordinator process while workers run — hosts
share nothing but a synced directory — so work claiming must live in
the filesystem.  A lease is one JSON file per point::

    <queue_dir>/leases/<cache_key>.lease      # {"worker": <id>}
    <queue_dir>/events/<worker_id>.jsonl      # claim/complete ledger

The protocol:

* **Claim** — creating the lease file with ``O_CREAT | O_EXCL`` is the
  atomic fresh claim (exactly one creator wins).  An *existing* lease
  whose mtime is older than the lease timeout is stale — its worker
  died or wedged — and any live worker may take it over by atomically
  replacing the file (``os.replace``) and reading back ownership.
* **Renew** — the holder touches the file's mtime (``os.utime``) a few
  times per timeout window; :class:`LeaseRenewer` does this from a
  daemon thread while the simulation runs, so a *slow* point is
  distinguishable from a *dead* worker.
* **Release** — the holder unlinks the file after publishing the
  result into its shard.

Two workers can, in a narrow window, both believe they reclaimed the
same stale lease (replace/read-back interleaving).  That is accepted by
design: points are deterministic and installation byte-identical, so a
double claim wastes one simulation and corrupts nothing — the lease is
an efficiency mechanism, and the result cache is the correctness
mechanism.  The event ledger is append-only, one file per worker (no
cross-host write contention), and feeds the post-run
:class:`~repro.harness.campaign.CampaignReport`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

from ..result_cache import atomic_write

#: lease files live under this queue subdirectory
LEASES_DIR = "leases"

#: per-worker event ledgers live under this queue subdirectory
EVENTS_DIR = "events"

#: seconds an unrenewed batch lease stays valid
DEFAULT_LEASE_TIMEOUT = 60.0


def lease_path(queue_dir: str, key: str) -> str:
    """The lease file guarding one cache key."""
    return os.path.join(queue_dir, LEASES_DIR, key + ".lease")


def read_lease(path: str) -> Optional[Dict]:
    """The lease document at ``path``, or ``None`` (absent/garbled)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def lease_age(path: str) -> Optional[float]:
    """Seconds since the lease was last renewed, or ``None`` if absent."""
    try:
        return max(0.0, time.time() - os.stat(path).st_mtime)
    except OSError:
        return None


def claim_lease(
    queue_dir: str,
    key: str,
    worker: str,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
) -> Optional[str]:
    """Try to claim ``key`` for ``worker``.

    Returns ``"fresh"`` (unclaimed point, or re-entering our own live
    lease after a restart), ``"reclaimed"`` (took over a stale lease),
    or ``None`` (someone else holds a live lease — back off and retry).
    """
    path = lease_path(queue_dir, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    doc = (json.dumps({"worker": worker}) + "\n").encode("utf-8")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        with os.fdopen(fd, "wb") as fh:
            fh.write(doc)
        return "fresh"
    age = lease_age(path)
    if age is None:
        # the holder released between our open and stat: contended
        # moment, let the next round claim it cleanly
        return None
    holder = read_lease(path)
    if holder is not None and holder.get("worker") == worker:
        os.utime(path)  # our own lease (restart with a stable id)
        return "fresh"
    if age <= lease_timeout:
        return None
    # stale: take it over, then verify the takeover stuck (a concurrent
    # reclaimer may have replaced the file after us — last writer wins)
    atomic_write(path, doc)
    mine = read_lease(path)
    if mine is not None and mine.get("worker") == worker:
        return "reclaimed"
    return None


def renew_lease(queue_dir: str, key: str, worker: str) -> bool:
    """Touch ``worker``'s lease on ``key``; ``False`` if no longer held."""
    path = lease_path(queue_dir, key)
    holder = read_lease(path)
    if holder is None or holder.get("worker") != worker:
        return False
    try:
        os.utime(path)
    except OSError:
        return False
    return True


def release_lease(queue_dir: str, key: str, worker: str) -> None:
    """Drop ``worker``'s lease on ``key`` (no-op if not the holder)."""
    path = lease_path(queue_dir, key)
    holder = read_lease(path)
    if holder is not None and holder.get("worker") == worker:
        try:
            os.unlink(path)
        except OSError:
            pass


class LeaseRenewer(threading.Thread):
    """Daemon that renews one lease while its simulation runs.

    Stops on its own when the lease is lost (another worker reclaimed
    it after judging us dead) — renewing a stolen lease would let two
    workers fence over one mtime forever.
    """

    def __init__(
        self, queue_dir: str, key: str, worker: str, interval: float
    ) -> None:
        super().__init__(daemon=True)
        self.queue_dir = queue_dir
        self.key = key
        self.worker = worker
        self.interval = interval
        self._stop = threading.Event()

    def shutdown(self) -> None:
        """Stop renewing (the simulation finished)."""
        self._stop.set()

    def run(self) -> None:
        """Renew every ``interval`` seconds until stopped or lost."""
        while not self._stop.wait(self.interval):
            if not renew_lease(self.queue_dir, self.key, self.worker):
                return


def log_event(queue_dir: str, worker: str, event: Dict) -> None:
    """Append one record to ``worker``'s event ledger."""
    root = os.path.join(queue_dir, EVENTS_DIR)
    os.makedirs(root, exist_ok=True)
    line = json.dumps(dict(event, worker=worker), sort_keys=True) + "\n"
    with open(
        os.path.join(root, worker + ".jsonl"), "a", encoding="utf-8"
    ) as fh:
        fh.write(line)


def read_events(queue_dir: str) -> List[Dict]:
    """Every worker's ledger records (unparseable lines are skipped)."""
    root = os.path.join(queue_dir, EVENTS_DIR)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    events: List[Dict] = []
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(root, name), encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            continue
        for line in lines:
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict):
                events.append(doc)
    return events
