"""Work-stealing sweep execution over TCP, with deadline leases.

A coordinator (:class:`SocketWorkStealingBackend`, or the ``repro-cmp
serve`` command) owns the planned task list and serves it over a tiny
newline-delimited-JSON protocol; workers — child processes spawned by the
backend, or ``repro-cmp work host:port`` shells on any machine — *pull*
tasks one at a time, simulate them with a local serial runner, and stream
the serialized results back.  Pulling is what makes the schedule
work-stealing: a fast worker drains more of the queue, and a task whose
worker fails mid-flight is simply requeued for the next puller.

Protocol (one JSON object per line, worker → coordinator unless noted)::

    {"op": "hello", "worker": <name>}
        -> {"op": "welcome", "proto": 3, "params": {...runner params...},
            "lease_timeout": s, "heartbeat_interval": s}
    {"op": "get"}
        -> {"op": "task", "point": {...SweepPoint.to_dict()...}}
         | {"op": "wait", "seconds": s}     # queue empty, leases pending
         | {"op": "done"}                   # matrix complete, disconnect
    {"op": "heartbeat", "worker": <name>, "point": {...}}
        (one-way: renews the lease, never answered)
    {"op": "result", "point": {...}, "result": {...}, "energy": {...}}
        -> {"op": "ack"} | {"op": "reject", "error": <text>}
    {"op": "error", "point": {...}, "message": <text>}
        -> {"op": "ack"}

Protocol 3 adds fault tolerance on top of protocol 2's serialized
:class:`~repro.harness.spec.SweepPoint` tasks.  The bump is *additive*
(the welcome gains ``lease_timeout`` and ``heartbeat_interval``; every
protocol-2 message is unchanged), so a v3 worker accepts a v2 welcome —
it simply has no lease to renew.  The fault-tolerance pass:

* **Deadline leases** — every served task carries a lease of
  ``lease_timeout`` seconds; a worker's heartbeat thread renews it
  mid-simulation.  A hung-but-connected worker stops heartbeating, its
  lease expires, and the coordinator requeues the point (with attempt
  accounting) instead of waiting on a TCP close that never comes.
* **Backoff wait advice** — an idle worker is told to sleep with
  per-worker exponential backoff plus deterministic jitter instead of a
  fixed 0.1 s poll, so a large idle fleet does not hammer the socket.
* **Reconnect** — workers survive a coordinator restart by redialing
  with jittered exponential backoff before giving up.
* **Corrupt-result rejection** — an undecodable result payload is
  rejected and the point requeued; garbage on the wire costs one retry,
  never the coordinator.

Workers rebuild their runner from the coordinator's ``params`` and the
point from its canonical dict, so a remote shell needs no flags beyond
the address — and no shared filesystem: results travel over the socket
in the cache-entry format and the coordinator alone installs them
(byte-identical to a serial sweep, even when a crash or an expired lease
makes a task run twice, because points are deterministic and
installation is idempotent).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign import CampaignReport, PointRecord
from ..faults import (
    KILL_EXIT_CODE,
    FaultInjector,
    PlanLike,
    backoff_seconds,
    coerce_plan,
)
from ..runner import SweepRunner, decode_entry, encode_entry
from ..spec import SweepPoint
from .base import default_worker_id, register_backend

#: protocol version sent in the welcome message (3 = leases/heartbeats)
PROTO_VERSION = 3

#: welcome protocols this worker accepts (2 is proto 3 minus leases)
ACCEPTED_PROTOS = (2, PROTO_VERSION)

#: how many times a point may be attempted before the sweep fails
DEFAULT_MAX_ATTEMPTS = 3

#: seconds a served task's lease lasts without a heartbeat renewal
DEFAULT_LEASE_TIMEOUT = 60.0

#: fallback idle sleep (the floor of the coordinator's backoff advice,
#: and what a worker sleeps when a v2 coordinator sends no ``seconds``)
WAIT_SECONDS = 0.1

#: ceiling of the coordinator's idle-wait advice
WAIT_CAP = 2.0

#: how many consecutive connect failures a worker tolerates
DEFAULT_CONNECT_ATTEMPTS = 8

#: sentinel for a line that arrived but did not decode (≠ EOF)
_MALFORMED = object()


def _send(wfile, obj: dict) -> None:
    """Write one protocol message (a JSON line)."""
    wfile.write((json.dumps(obj) + "\n").encode("utf-8"))
    wfile.flush()


def _recv(rfile):
    """Read one message; ``None`` on EOF, ``_MALFORMED`` on garbage.

    The distinction matters to the coordinator: EOF means the worker is
    gone (requeue its lease), while a malformed line means the worker is
    alive but speaking garbage (drop the connection deliberately, which
    requeues the lease the same way — but counts as a rejection).
    """
    line = rfile.readline()
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError:
        return _MALFORMED
    return msg if isinstance(msg, dict) else _MALFORMED


def _point_of(msg: dict) -> SweepPoint:
    """Rebuild the wire point (canonical dict) as a :class:`SweepPoint`."""
    return SweepPoint.from_dict(msg["point"])


@dataclass
class _Lease:
    """One outstanding task: who holds it and when it expires."""

    worker: str
    deadline: float


class _Handler(socketserver.StreamRequestHandler):
    """One connected worker: serve gets, accept results, requeue on drop."""

    def handle(self) -> None:
        """Serve one worker connection (socketserver hook)."""
        server: "_TaskServer" = self.server  # type: ignore[assignment]
        worker = "?"
        leased: Optional[SweepPoint] = None
        server.connection_opened()
        try:
            while True:
                msg = _recv(self.rfile)
                if msg is None:
                    return
                if msg is _MALFORMED:
                    # a live worker sent garbage framing: drop the
                    # connection (the finally clause requeues its lease)
                    server.note_rejected(worker, "malformed protocol line")
                    return
                op = msg.get("op")
                if op == "hello":
                    worker = str(msg.get("worker", "?"))
                    _send(
                        self.wfile,
                        {
                            "op": "welcome",
                            "proto": PROTO_VERSION,
                            "params": server.params,
                            "lease_timeout": server.lease_timeout,
                            "heartbeat_interval": server.heartbeat_interval,
                        },
                    )
                elif op == "get":
                    reply, leased = server.lease(worker)
                    _send(self.wfile, reply)
                    if reply["op"] == "done":
                        return
                elif op == "heartbeat":
                    # one-way: renewing must not disturb the worker's
                    # strict send→reply alternation on the main loop
                    try:
                        server.heartbeat(worker, _point_of(msg))
                    except Exception:
                        pass  # an undecodable heartbeat renews nothing
                elif op == "result":
                    try:
                        point = _point_of(msg)
                    except Exception:
                        server.note_rejected(worker, "undecodable point")
                        _send(
                            self.wfile,
                            {"op": "reject", "error": "undecodable point"},
                        )
                        continue
                    if server.complete(point, msg, worker):
                        _send(self.wfile, {"op": "ack"})
                    else:
                        _send(
                            self.wfile,
                            {"op": "reject", "error": "corrupt result payload"},
                        )
                    if leased == point:
                        leased = None
                elif op == "error":
                    try:
                        point = _point_of(msg)
                    except Exception:
                        server.note_rejected(worker, "undecodable point")
                        _send(self.wfile, {"op": "ack"})
                        continue
                    server.task_failed(
                        point, str(msg.get("message", "")), worker
                    )
                    if leased == point:
                        leased = None
                    _send(self.wfile, {"op": "ack"})
                else:
                    return
        except Exception:
            # a handler crash must never take the sweep down: fall
            # through to the finally clause, which requeues the lease
            return
        finally:
            server.connection_closed()
            if leased is not None:
                server.requeue(
                    leased, f"worker {worker} disconnected", worker=worker
                )


class _TaskServer(socketserver.ThreadingTCPServer):
    """Coordinator state: the queue, leases, retries, and installation."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        runner: SweepRunner,
        pending: Sequence[SweepPoint],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        super().__init__(address, _Handler)
        self.runner = runner
        self.params = runner.runner_params(cache_dir=None)
        self.points = list(pending)
        self.total = len(self.points)
        self.max_attempts = max_attempts
        self.lease_timeout = float(lease_timeout)
        #: what workers are told to heartbeat at (several renewals per
        #: lease window, floored so tiny test timeouts still renew)
        self.heartbeat_interval = max(0.05, self.lease_timeout / 4.0)
        self._lock = threading.Lock()
        self._queue: deque = deque(self.points)
        self._attempts: Dict[SweepPoint, int] = {}
        self._requeues: Dict[SweepPoint, int] = {}
        self._reasons: Dict[SweepPoint, List[str]] = {}
        self._producers: Dict[SweepPoint, str] = {}
        self._leases: Dict[SweepPoint, _Lease] = {}
        self._wait_streaks: Dict[str, int] = {}
        self._completed: set = set()
        self.failures: Dict[SweepPoint, str] = {}
        self.finished = threading.Event()
        #: currently connected workers (spawned or external)
        self.active_connections = 0
        #: observability counters (tests assert on these)
        self.stats = {
            "served": 0,
            "requeued": 0,
            "duplicates": 0,
            "expired": 0,
            "rejected": 0,
            "heartbeats": 0,
        }
        if not self.points:
            self.finished.set()

    # ------------------------------------------------------------------
    def connection_opened(self) -> None:
        """A worker connected (handler thread start)."""
        with self._lock:
            self.active_connections += 1

    def connection_closed(self) -> None:
        """A worker disconnected (handler thread end)."""
        with self._lock:
            self.active_connections -= 1

    # ------------------------------------------------------------------
    def lease(self, worker: str) -> Tuple[dict, Optional[SweepPoint]]:
        """Hand the next queued point to ``worker`` (or wait/done)."""
        self.reap_expired()
        with self._lock:
            if self._done_locked():
                return {"op": "done"}, None
            if not self._queue:
                streak = self._wait_streaks.get(worker, 0)
                self._wait_streaks[worker] = streak + 1
                # deterministic per-(worker, streak) jitter: advice is
                # reproducible run to run, but desynchronized worker to
                # worker; capped so a worker never oversleeps a lease
                seconds = backoff_seconds(
                    streak,
                    base=WAIT_SECONDS,
                    cap=min(WAIT_CAP, max(WAIT_SECONDS, self.lease_timeout / 2)),
                    rng=random.Random(f"{worker}:{streak}"),
                )
                return {"op": "wait", "seconds": round(seconds, 4)}, None
            self._wait_streaks.pop(worker, None)
            point = self._queue.popleft()
            self._attempts[point] = self._attempts.get(point, 0) + 1
            self._leases[point] = _Lease(
                worker, time.monotonic() + self.lease_timeout
            )
            self.stats["served"] += 1
            return {"op": "task", "point": point.to_dict()}, point

    def heartbeat(self, worker: str, point: SweepPoint) -> None:
        """Renew ``worker``'s lease on ``point`` (ignore stale claims)."""
        with self._lock:
            lease = self._leases.get(point)
            if lease is not None and lease.worker == worker:
                lease.deadline = time.monotonic() + self.lease_timeout
                self.stats["heartbeats"] += 1

    def reap_expired(self) -> None:
        """Requeue every lease whose deadline has passed."""
        now = time.monotonic()
        expired: List[Tuple[SweepPoint, str]] = []
        with self._lock:
            for point, lease in list(self._leases.items()):
                if lease.deadline <= now:
                    del self._leases[point]
                    expired.append((point, lease.worker))
        for point, worker in expired:
            self._requeue_detached(
                point,
                f"lease expired after {self.lease_timeout:.1f}s "
                f"(worker {worker} silent)",
                counter="expired",
            )

    def complete(self, point: SweepPoint, msg: dict, worker: str) -> bool:
        """Install one streamed result (idempotently) and mark it done.

        Returns ``False`` — after requeueing the point — when the
        payload does not decode as a cache entry: a corrupt result must
        cost one retry, not the coordinator process.
        """
        try:
            res, energy = decode_entry(
                {"result": msg["result"], "energy": msg["energy"]}
            )
        except Exception as exc:
            self.reject(point, worker, f"corrupt result payload ({exc!r})")
            return False
        with self._lock:
            duplicate = point in self._completed
            if duplicate:
                self.stats["duplicates"] += 1
            self._completed.add(point)
            self._leases.pop(point, None)
            self.failures.pop(point, None)
            if not duplicate:
                self._producers[point] = worker
        # install outside the lock: determinism makes re-installation of a
        # duplicate byte-identical, so ordering between racers is moot —
        # but provenance (worker name, timestamp) is NOT byte-identical
        # across racers, so only the first completion records it; a late
        # duplicate must not overwrite the original producer's sidecar
        self.runner.install(
            point,
            res,
            energy,
            provenance=(
                None
                if duplicate
                else self.runner.point_provenance(
                    point, worker=worker, backend="socket"
                )
            ),
        )
        if self.runner.verbose and not duplicate:
            print(
                f"[sweep:socket] {len(self._completed)}/{self.total} done: "
                f"{point.describe()} ({worker})",
                flush=True,
            )
        self._check_finished()
        return True

    def requeue(
        self, point: SweepPoint, reason: str, worker: Optional[str] = None
    ) -> None:
        """Return a leased point to the queue after a worker loss.

        With ``worker`` given, the requeue only happens if that worker
        still holds the lease — a disconnect observed *after* the lease
        already expired (and was requeued, and possibly re-served to
        someone else) must not requeue the point a second time.
        """
        with self._lock:
            lease = self._leases.get(point)
            if lease is None and worker is not None:
                return  # lease already expired/completed: nothing to do
            if worker is not None and lease.worker != worker:
                return  # someone else holds it now
            self._leases.pop(point, None)
        self._requeue_detached(point, reason)

    def reject(self, point: SweepPoint, worker: str, reason: str) -> None:
        """Requeue a point whose result payload was undecodable."""
        with self._lock:
            lease = self._leases.get(point)
            if lease is not None and lease.worker == worker:
                del self._leases[point]
        self._requeue_detached(
            point, f"{reason} from {worker}", counter="rejected"
        )

    def note_rejected(self, worker: str, reason: str) -> None:
        """Count a protocol-level rejection not tied to a known point."""
        with self._lock:
            self.stats["rejected"] += 1
        if self.runner.verbose:
            print(f"[sweep:socket] rejected {worker}: {reason}", flush=True)

    def task_failed(self, point: SweepPoint, message: str, worker: str) -> None:
        """A worker reported a simulation error for ``point``."""
        self.requeue(point, f"{worker}: {message}", worker=worker)

    def _requeue_detached(
        self, point: SweepPoint, reason: str, counter: str = "requeued"
    ) -> None:
        """Queue a point whose lease is already removed (or never taken)."""
        with self._lock:
            if point in self._completed or point in self.failures:
                return
            if point in self._queue:
                return  # already waiting: never double-queue
            self._reasons.setdefault(point, []).append(reason)
            if self._attempts.get(point, 0) >= self.max_attempts:
                self.failures[point] = reason
            else:
                self._queue.append(point)
                self._requeues[point] = self._requeues.get(point, 0) + 1
                self.stats["requeued"] += 1
                if counter != "requeued":
                    self.stats[counter] += 1
        self._check_finished()

    # ------------------------------------------------------------------
    def campaign_report(self) -> CampaignReport:
        """Snapshot the per-point ledger as a :class:`CampaignReport`."""
        with self._lock:
            records = []
            for point in self.points:
                if point in self._completed:
                    status = "completed"
                elif point in self.failures:
                    status = "failed"
                else:
                    status = "pending"
                records.append(
                    PointRecord(
                        point=point.describe(),
                        digest=point.digest(),
                        status=status,
                        attempts=self._attempts.get(point, 0),
                        requeues=self._requeues.get(point, 0),
                        reasons=list(self._reasons.get(point, ())),
                        worker=self._producers.get(point),
                    )
                )
            stats = dict(self.stats)
        return CampaignReport(backend="socket", records=records, stats=stats)

    # ------------------------------------------------------------------
    def _done_locked(self) -> bool:
        return len(self._completed) + len(self.failures) >= self.total

    def _check_finished(self) -> None:
        with self._lock:
            if self._done_locked():
                self.finished.set()


class _HeartbeatPump(threading.Thread):
    """Worker-side daemon that renews the lease of the point in flight.

    The pump shares the connection's write lock with the main loop but
    its messages are one-way (the coordinator never answers a
    heartbeat), so the main loop's strict send→reply alternation is
    untouched.  ``watch``/``clear`` bracket each simulation; a hang
    fault calls ``clear`` first, which is exactly what distinguishes a
    wedged process (no heartbeats → lease expires) from a merely slow
    one (heartbeats carry the lease).
    """

    def __init__(self, send, interval: float) -> None:
        super().__init__(daemon=True)
        self._send = send
        self.interval = interval
        self._lock = threading.Lock()
        self._point: Optional[dict] = None
        self._worker = ""
        self._stop = threading.Event()

    def watch(self, worker: str, point: dict) -> None:
        """Start renewing the lease on ``point``."""
        with self._lock:
            self._worker = worker
            self._point = point

    def clear(self) -> None:
        """Stop renewing (simulation finished, or a hang fault fired)."""
        with self._lock:
            self._point = None

    def shutdown(self) -> None:
        """Terminate the pump (connection teardown)."""
        self._stop.set()

    def run(self) -> None:
        """Send one heartbeat per interval while a point is watched."""
        while not self._stop.wait(self.interval):
            with self._lock:
                point, worker = self._point, self._worker
            if point is None:
                continue
            try:
                self._send(
                    {"op": "heartbeat", "worker": worker, "point": point}
                )
            except OSError:
                return  # connection is gone: the main loop handles it


def _worker_session(
    sock: socket.socket,
    name: str,
    injector: FaultInjector,
    state: dict,
    crash_after_tasks: Optional[int],
) -> str:
    """Run one connection's pull loop; ``"done"`` or ``"lost"``.

    ``state`` persists across reconnects: the rebuilt runner and the
    received-task counter (which the fault plan's ordinals index).
    """
    pump: Optional[_HeartbeatPump] = None
    write_lock = threading.Lock()
    with sock, sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:

        def send(obj: dict) -> None:
            with write_lock:
                _send(wfile, obj)

        try:
            send({"op": "hello", "worker": name})
            welcome = _recv(rfile)
            if welcome is None or welcome is _MALFORMED:
                return "lost"
            if welcome.get("op") != "welcome":
                raise RuntimeError(f"bad welcome from coordinator: {welcome!r}")
            if welcome.get("proto") not in ACCEPTED_PROTOS:
                raise RuntimeError(
                    f"coordinator speaks protocol {welcome.get('proto')!r}, "
                    f"this worker speaks {sorted(ACCEPTED_PROTOS)}"
                )
            params = welcome["params"]
            interval = float(welcome.get("heartbeat_interval") or 0.0)
            if interval > 0:
                pump = _HeartbeatPump(send, interval)
                pump.start()
            while True:
                send({"op": "get"})
                msg = _recv(rfile)
                if msg is None or msg is _MALFORMED:
                    return "lost"
                if msg.get("op") == "done":
                    return "done"
                if msg.get("op") == "wait":
                    time.sleep(float(msg.get("seconds", WAIT_SECONDS)))
                    continue
                if msg.get("op") != "task":
                    raise RuntimeError(
                        f"unexpected coordinator message: {msg!r}"
                    )
                point = _point_of(msg)
                state["received"] += 1
                action = injector.on_task()
                if (
                    crash_after_tasks is not None
                    and state["received"] >= crash_after_tasks
                ):
                    os._exit(KILL_EXIT_CODE)
                if action is not None and action.kind == "kill":
                    os._exit(KILL_EXIT_CODE)
                if action is not None and action.kind == "drop":
                    return "lost"  # the with-block slams the socket shut
                if action is not None and action.kind == "hang":
                    # a wedged process heartbeats nothing: the lease
                    # must expire and the point migrate
                    if pump is not None:
                        pump.clear()
                    if action.seconds > 0:
                        time.sleep(action.seconds)
                    else:
                        while True:  # wedge until torn down
                            time.sleep(3600)
                if pump is not None:
                    pump.watch(name, msg["point"])
                if state["runner"] is None:
                    state["runner"] = SweepRunner(verbose=False, **params)
                runner: SweepRunner = state["runner"]
                try:
                    res, energy = runner.run_point(point)
                except Exception as exc:
                    if pump is not None:
                        pump.clear()
                    send(
                        {
                            "op": "error",
                            "point": point.to_dict(),
                            "message": str(exc),
                        }
                    )
                    if _recv(rfile) is None:
                        return "lost"
                    continue
                delivery = injector.on_delivery()
                blob = encode_entry(res, energy)
                result_msg = {
                    "op": "result",
                    "point": point.to_dict(),
                    "result": blob["result"],
                    "energy": blob["energy"],
                }
                if delivery is not None and delivery.kind == "delay":
                    # slow, not wedged: the pump keeps the lease alive
                    time.sleep(delivery.seconds)
                if delivery is not None and delivery.kind == "corrupt":
                    send(
                        {
                            "op": "result",
                            "point": point.to_dict(),
                            "result": {"__corrupt__": True},
                            "energy": {},
                        }
                    )
                else:
                    send(result_msg)
                if _recv(rfile) is None:
                    return "lost"
                if delivery is not None and delivery.kind == "duplicate":
                    send(result_msg)
                    if _recv(rfile) is None:
                        return "lost"
                if pump is not None:
                    pump.clear()
        finally:
            if pump is not None:
                pump.shutdown()


def worker_main(
    host: str,
    port: int,
    worker_name: Optional[str] = None,
    crash_after_tasks: Optional[int] = None,
    fault_plan: Optional[dict] = None,
    connect_attempts: int = DEFAULT_CONNECT_ATTEMPTS,
) -> int:
    """Worker loop: pull tasks from ``host:port`` until the sweep is done.

    This is the body of ``repro-cmp work host:port`` and of the worker
    processes the backend spawns locally.  The loop survives a lost
    coordinator — connection refused at dial time, or a connection that
    dies mid-sweep — by redialing with jittered exponential backoff,
    giving up only after ``connect_attempts`` consecutive failures.

    ``crash_after_tasks`` is the legacy fault seam (hard-exit after
    receiving that many tasks); ``fault_plan`` is the general one — the
    dict form of a :class:`~repro.harness.faults.FaultPlan`, passed as a
    dict so it survives the ``spawn`` start method.
    """
    name = worker_name or default_worker_id()
    injector = FaultInjector(fault_plan, name)
    state = {"runner": None, "received": 0}
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=600)
        except OSError:
            failures += 1
            if failures > connect_attempts:
                raise RuntimeError(
                    f"coordinator {host}:{port} unreachable after "
                    f"{connect_attempts} attempts"
                )
            time.sleep(backoff_seconds(failures - 1, rng=injector.rng))
            continue
        try:
            outcome = _worker_session(
                sock, name, injector, state, crash_after_tasks
            )
        except OSError:
            outcome = "lost"
        if outcome == "done":
            return 0
        failures += 1
        if failures > connect_attempts:
            raise RuntimeError(
                f"lost coordinator {host}:{port} and failed to rejoin "
                f"after {connect_attempts} attempts"
            )
        time.sleep(backoff_seconds(failures - 1, rng=injector.rng))


class SocketWorkStealingBackend:
    """Coordinator + pull-workers over TCP.

    With ``spawn_workers > 0`` the backend forks that many local worker
    processes for the duration of the sweep — a one-process-per-task-pull
    sibling of :class:`~repro.harness.backends.local.LocalBackend` that
    exercises the full network path.  With ``spawn_workers = 0`` it only
    serves, and remote ``repro-cmp work`` shells supply the labor.

    ``lease_timeout`` bounds how long a silent worker can hold a point;
    ``fault_plan`` installs a deterministic
    :class:`~repro.harness.faults.FaultPlan` into the spawned workers
    (the chaos tests' seam).  After :meth:`execute`, :attr:`last_report`
    holds the per-point :class:`~repro.harness.campaign.CampaignReport`.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: int = 2,
        timeout: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        crash_plan: Optional[Dict[int, int]] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        fault_plan: PlanLike = None,
    ) -> None:
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.lease_timeout = float(lease_timeout)
        #: legacy fault seam: worker index -> crash_after_tasks; folded
        #: into the fault plan as kill actions on the spawned names
        self.crash_plan = dict(crash_plan or {})
        plan = coerce_plan(fault_plan)
        for index, after in self.crash_plan.items():
            plan.kill(f"local-{index}", on_task=after)
        self.fault_plan = plan
        #: stats of the last :meth:`execute` (served/requeued/...)
        self.last_stats: Dict[str, int] = {}
        #: per-point ledger of the last :meth:`execute`
        self.last_report: Optional[CampaignReport] = None

    def execute(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> int:
        """Serve ``pending`` to workers; block until installed or failed."""
        pending = list(pending)
        if not pending:
            return 0
        server = _TaskServer(
            (self.host, self.port),
            runner,
            pending,
            self.max_attempts,
            lease_timeout=self.lease_timeout,
        )
        host, port = server.server_address[:2]
        # a wildcard bind accepts remote workers, but spawned local
        # workers must dial loopback — connecting to 0.0.0.0 is not
        # portable
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        serve_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        serve_thread.start()
        procs: List[multiprocessing.Process] = []
        plan_dict = self.fault_plan.to_dict() if self.fault_plan else None
        try:
            if runner.verbose:
                print(
                    f"[sweep:socket] serving {len(pending)} points on "
                    f"{host}:{port} ({self.spawn_workers} local workers, "
                    f"lease {self.lease_timeout:g}s)",
                    flush=True,
                )
            for i in range(self.spawn_workers):
                proc = multiprocessing.Process(
                    target=worker_main,
                    args=(connect_host, port),
                    kwargs={
                        "worker_name": f"local-{i}",
                        "fault_plan": plan_dict,
                    },
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            outcome = self._await(server, procs)
        finally:
            server.shutdown()
            server.server_close()
            for proc in procs:
                # spawned workers hold no state worth a long goodbye
                # (the coordinator alone installs results): give them a
                # moment to exit on "done", then terminate — a wedged
                # hang-fault worker would otherwise block teardown
                proc.join(timeout=2)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            self.last_stats = dict(server.stats)
            self.last_report = server.campaign_report()
        if server.failures:
            lost = ", ".join(
                f"{point.describe()} ({why})"
                for point, why in sorted(
                    server.failures.items(), key=lambda kv: kv[0].triple
                )
            )
            raise RuntimeError(f"sweep points failed on every attempt: {lost}")
        if outcome == "starved":
            raise RuntimeError(
                f"all {self.spawn_workers} spawned workers exited and no "
                f"external workers connected, with "
                f"{self.remaining(runner, pending)} points unfinished"
            )
        if outcome == "timeout":
            raise TimeoutError(
                f"socket sweep timed out after {self.timeout}s with "
                f"{self.remaining(runner, pending)} points missing"
            )
        return len(pending)

    def _await(
        self,
        server: _TaskServer,
        procs: Sequence[multiprocessing.Process],
    ) -> str:
        """Block until done; returns ``finished``/``timeout``/``starved``.

        Each tick also reaps expired leases — this is the clock that
        frees a hung worker's point even when no other worker is
        polling.  Starvation — every spawned worker dead, no external
        worker connected, points remaining — is detected so a
        crash-everything scenario fails immediately instead of burning
        the whole timeout.  A healthy worker only exits after the
        coordinator's ``done``, so all-dead truly means no labor left; a
        still-connected external shell keeps the sweep alive (it can
        finish the work).  With ``spawn_workers=0`` only the timeout
        applies: a new shell may connect at any moment.
        """
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while not server.finished.wait(0.2):
            server.reap_expired()
            if (
                procs
                and not any(proc.is_alive() for proc in procs)
                and server.active_connections == 0
            ):
                if server.finished.is_set():
                    return "finished"
                return "starved"
            if deadline is not None and time.monotonic() >= deadline:
                return "timeout"
        return "finished"

    @staticmethod
    def remaining(runner: SweepRunner, pending: Sequence[SweepPoint]) -> int:
        """How many of ``pending`` the runner still cannot serve."""
        return sum(1 for point in pending if runner.lookup(point) is None)


register_backend("socket", SocketWorkStealingBackend)
