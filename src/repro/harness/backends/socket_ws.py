"""Work-stealing sweep execution over TCP.

A coordinator (:class:`SocketWorkStealingBackend`, or the ``repro-cmp
serve`` command) owns the planned task list and serves it over a tiny
newline-delimited-JSON protocol; workers — child processes spawned by the
backend, or ``repro-cmp work host:port`` shells on any machine — *pull*
tasks one at a time, simulate them with a local serial runner, and stream
the serialized results back.  Pulling is what makes the schedule
work-stealing: a fast worker drains more of the queue, and a task whose
worker crashes mid-flight is simply requeued for the next puller.

Protocol (one JSON object per line, worker → coordinator unless noted)::

    {"op": "hello", "worker": <name>}
        -> {"op": "welcome", "proto": 2, "params": {...runner params...}}
    {"op": "get"}
        -> {"op": "task", "point": {...SweepPoint.to_dict()...}}
         | {"op": "wait", "seconds": s}     # queue empty, leases pending
         | {"op": "done"}                   # matrix complete, disconnect
    {"op": "result", "point": {...}, "result": {...}, "energy": {...}}
        -> {"op": "ack"}
    {"op": "error", "point": {...}, "message": <text>}
        -> {"op": "ack"}

Protocol 2 ships full serialized
:class:`~repro.harness.spec.SweepPoint` tasks (protocol 1 sent bare
``[workload, total_mb, technique]`` triples, which hardwired the paper
matrix; a v1 worker is rejected at the welcome handshake).  Workers
rebuild their runner from the coordinator's ``params`` and the point from
its canonical dict, so a remote shell needs no flags beyond the address —
and no shared filesystem: results travel over the socket in the
cache-entry format and the coordinator alone installs them
(byte-identical to a serial sweep, even when a crash makes a task run
twice, because points are deterministic and installation is idempotent).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..runner import SweepRunner, decode_entry, encode_entry
from ..spec import SweepPoint
from .base import default_worker_id, register_backend

#: protocol version sent in the welcome message (2 = SweepPoint tasks)
PROTO_VERSION = 2

#: how many times a point may be attempted before the sweep fails
DEFAULT_MAX_ATTEMPTS = 3

#: seconds an idle worker is told to sleep before re-polling
WAIT_SECONDS = 0.1


def _send(wfile, obj: dict) -> None:
    """Write one protocol message (a JSON line)."""
    wfile.write((json.dumps(obj) + "\n").encode("utf-8"))
    wfile.flush()


def _recv(rfile) -> Optional[dict]:
    """Read one protocol message; ``None`` on EOF or malformed line."""
    line = rfile.readline()
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError:
        return None
    return msg if isinstance(msg, dict) else None


def _point_of(msg: dict) -> SweepPoint:
    """Rebuild the wire point (canonical dict) as a :class:`SweepPoint`."""
    return SweepPoint.from_dict(msg["point"])


class _Handler(socketserver.StreamRequestHandler):
    """One connected worker: serve gets, accept results, requeue on drop."""

    def handle(self) -> None:
        """Serve one worker connection (socketserver hook)."""
        server: "_TaskServer" = self.server  # type: ignore[assignment]
        worker = "?"
        leased: Optional[SweepPoint] = None
        server.connection_opened()
        try:
            while True:
                msg = _recv(self.rfile)
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    worker = str(msg.get("worker", "?"))
                    _send(
                        self.wfile,
                        {
                            "op": "welcome",
                            "proto": PROTO_VERSION,
                            "params": server.params,
                        },
                    )
                elif op == "get":
                    reply, leased = server.lease(worker)
                    _send(self.wfile, reply)
                    if reply["op"] == "done":
                        return
                elif op == "result":
                    server.complete(_point_of(msg), msg, worker)
                    if leased == _point_of(msg):
                        leased = None
                    _send(self.wfile, {"op": "ack"})
                elif op == "error":
                    server.task_failed(
                        _point_of(msg), str(msg.get("message", "")), worker
                    )
                    if leased == _point_of(msg):
                        leased = None
                    _send(self.wfile, {"op": "ack"})
                else:
                    return
        finally:
            server.connection_closed()
            if leased is not None:
                server.requeue(leased, f"worker {worker} disconnected")


class _TaskServer(socketserver.ThreadingTCPServer):
    """Coordinator state: the queue, leases, retries, and installation."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        runner: SweepRunner,
        pending: Sequence[SweepPoint],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        super().__init__(address, _Handler)
        self.runner = runner
        self.params = runner.runner_params(cache_dir=None)
        self.total = len(pending)
        self.max_attempts = max_attempts
        self._lock = threading.Lock()
        self._queue: deque = deque(pending)
        self._attempts: Dict[SweepPoint, int] = {}
        self._completed: set = set()
        self.failures: Dict[SweepPoint, str] = {}
        self.finished = threading.Event()
        #: currently connected workers (spawned or external)
        self.active_connections = 0
        #: observability counters (tests assert on these)
        self.stats = {"served": 0, "requeued": 0, "duplicates": 0}
        if not pending:
            self.finished.set()

    # ------------------------------------------------------------------
    def connection_opened(self) -> None:
        """A worker connected (handler thread start)."""
        with self._lock:
            self.active_connections += 1

    def connection_closed(self) -> None:
        """A worker disconnected (handler thread end)."""
        with self._lock:
            self.active_connections -= 1

    # ------------------------------------------------------------------
    def lease(self, worker: str) -> Tuple[dict, Optional[SweepPoint]]:
        """Hand the next queued point to ``worker`` (or wait/done)."""
        with self._lock:
            if self._done_locked():
                return {"op": "done"}, None
            if not self._queue:
                return {"op": "wait", "seconds": WAIT_SECONDS}, None
            point = self._queue.popleft()
            self._attempts[point] = self._attempts.get(point, 0) + 1
            self.stats["served"] += 1
            return {"op": "task", "point": point.to_dict()}, point

    def complete(self, point: SweepPoint, msg: dict, worker: str) -> None:
        """Install one streamed result (idempotently) and mark it done."""
        res, energy = decode_entry(
            {"result": msg["result"], "energy": msg["energy"]}
        )
        with self._lock:
            duplicate = point in self._completed
            if duplicate:
                self.stats["duplicates"] += 1
            self._completed.add(point)
            self.failures.pop(point, None)
        # install outside the lock: determinism makes re-installation of a
        # duplicate byte-identical, so ordering between racers is moot —
        # but provenance (worker name, timestamp) is NOT byte-identical
        # across racers, so only the first completion records it; a late
        # duplicate must not overwrite the original producer's sidecar
        self.runner.install(
            point,
            res,
            energy,
            provenance=(
                None
                if duplicate
                else self.runner.point_provenance(
                    point, worker=worker, backend="socket"
                )
            ),
        )
        if self.runner.verbose and not duplicate:
            print(
                f"[sweep:socket] {len(self._completed)}/{self.total} done: "
                f"{point.describe()} ({worker})",
                flush=True,
            )
        self._check_finished()

    def requeue(self, point: SweepPoint, reason: str) -> None:
        """Return a leased point to the queue after a worker loss."""
        with self._lock:
            if point in self._completed or point in self.failures:
                return
            if self._attempts.get(point, 0) >= self.max_attempts:
                self.failures[point] = reason
            else:
                self._queue.append(point)
                self.stats["requeued"] += 1
        self._check_finished()

    def task_failed(self, point: SweepPoint, message: str, worker: str) -> None:
        """A worker reported a simulation error for ``point``."""
        self.requeue(point, f"{worker}: {message}")

    # ------------------------------------------------------------------
    def _done_locked(self) -> bool:
        return len(self._completed) + len(self.failures) >= self.total

    def _check_finished(self) -> None:
        with self._lock:
            if self._done_locked():
                self.finished.set()


def worker_main(
    host: str,
    port: int,
    worker_name: Optional[str] = None,
    crash_after_tasks: Optional[int] = None,
) -> int:
    """Worker loop: pull tasks from ``host:port`` until the sweep is done.

    This is the body of ``repro-cmp work host:port`` and of the worker
    processes the backend spawns locally.  ``crash_after_tasks`` is a
    fault-injection seam for the retry tests: the process hard-exits
    after *receiving* (not completing) that many tasks, exactly like a
    worker dying mid-simulation.
    """
    name = worker_name or default_worker_id()
    sock = socket.create_connection((host, port), timeout=600)
    received = 0
    runner: Optional[SweepRunner] = None
    with sock, sock.makefile("rb") as rfile, sock.makefile("wb") as wfile:
        _send(wfile, {"op": "hello", "worker": name})
        welcome = _recv(rfile)
        if not welcome or welcome.get("op") != "welcome":
            raise RuntimeError(f"bad welcome from coordinator: {welcome!r}")
        if welcome.get("proto") != PROTO_VERSION:
            raise RuntimeError(
                f"coordinator speaks protocol {welcome.get('proto')!r}, "
                f"this worker speaks {PROTO_VERSION}"
            )
        params = welcome["params"]
        while True:
            _send(wfile, {"op": "get"})
            msg = _recv(rfile)
            if msg is None or msg.get("op") == "done":
                return 0
            if msg.get("op") == "wait":
                time.sleep(float(msg.get("seconds", WAIT_SECONDS)))
                continue
            if msg.get("op") != "task":
                raise RuntimeError(f"unexpected coordinator message: {msg!r}")
            point = _point_of(msg)
            received += 1
            if crash_after_tasks is not None and received >= crash_after_tasks:
                os._exit(17)
            if runner is None:
                runner = SweepRunner(verbose=False, **params)
            try:
                res, energy = runner.run_point(point)
            except Exception as exc:
                _send(
                    wfile,
                    {
                        "op": "error",
                        "point": point.to_dict(),
                        "message": str(exc),
                    },
                )
                _recv(rfile)
                continue
            blob = encode_entry(res, energy)
            _send(
                wfile,
                {
                    "op": "result",
                    "point": point.to_dict(),
                    "result": blob["result"],
                    "energy": blob["energy"],
                },
            )
            _recv(rfile)


class SocketWorkStealingBackend:
    """Coordinator + pull-workers over TCP.

    With ``spawn_workers > 0`` the backend forks that many local worker
    processes for the duration of the sweep — a one-process-per-task-pull
    sibling of :class:`~repro.harness.backends.local.LocalBackend` that
    exercises the full network path.  With ``spawn_workers = 0`` it only
    serves, and remote ``repro-cmp work`` shells supply the labor.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: int = 2,
        timeout: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        crash_plan: Optional[Dict[int, int]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        #: fault injection: worker index -> crash_after_tasks (tests only)
        self.crash_plan = crash_plan or {}
        #: stats of the last :meth:`execute` (served/requeued/duplicates)
        self.last_stats: Dict[str, int] = {}

    def execute(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> int:
        """Serve ``pending`` to workers; block until installed or failed."""
        pending = list(pending)
        if not pending:
            return 0
        server = _TaskServer(
            (self.host, self.port), runner, pending, self.max_attempts
        )
        host, port = server.server_address[:2]
        # a wildcard bind accepts remote workers, but spawned local
        # workers must dial loopback — connecting to 0.0.0.0 is not
        # portable
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        serve_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        serve_thread.start()
        procs: List[multiprocessing.Process] = []
        try:
            if runner.verbose:
                print(
                    f"[sweep:socket] serving {len(pending)} points on "
                    f"{host}:{port} ({self.spawn_workers} local workers)",
                    flush=True,
                )
            for i in range(self.spawn_workers):
                proc = multiprocessing.Process(
                    target=worker_main,
                    args=(connect_host, port),
                    kwargs={
                        "worker_name": f"local-{i}",
                        "crash_after_tasks": self.crash_plan.get(i),
                    },
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            outcome = self._await(server, procs)
        finally:
            server.shutdown()
            server.server_close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
            self.last_stats = dict(server.stats)
        if server.failures:
            lost = ", ".join(
                f"{point.describe()} ({why})"
                for point, why in sorted(
                    server.failures.items(), key=lambda kv: kv[0].triple
                )
            )
            raise RuntimeError(f"sweep points failed on every attempt: {lost}")
        if outcome == "starved":
            raise RuntimeError(
                f"all {self.spawn_workers} spawned workers exited and no "
                f"external workers connected, with "
                f"{self.remaining(runner, pending)} points unfinished"
            )
        if outcome == "timeout":
            raise TimeoutError(
                f"socket sweep timed out after {self.timeout}s with "
                f"{self.remaining(runner, pending)} points missing"
            )
        return len(pending)

    def _await(
        self,
        server: _TaskServer,
        procs: Sequence[multiprocessing.Process],
    ) -> str:
        """Block until done; returns ``finished``/``timeout``/``starved``.

        Starvation — every spawned worker dead, no external worker
        connected, points remaining — is detected so a crash-everything
        scenario fails immediately instead of burning the whole timeout.
        A healthy worker only exits after the coordinator's ``done``, so
        all-dead truly means no labor left; a still-connected external
        shell keeps the sweep alive (it can finish the work).  With
        ``spawn_workers=0`` only the timeout applies: a new shell may
        connect at any moment.
        """
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while not server.finished.wait(0.2):
            if (
                procs
                and not any(proc.is_alive() for proc in procs)
                and server.active_connections == 0
            ):
                if server.finished.is_set():
                    return "finished"
                return "starved"
            if deadline is not None and time.monotonic() >= deadline:
                return "timeout"
        return "finished"

    @staticmethod
    def remaining(runner: SweepRunner, pending: Sequence[SweepPoint]) -> int:
        """How many of ``pending`` the runner still cannot serve."""
        return sum(1 for point in pending if runner.lookup(point) is None)


register_backend("socket", SocketWorkStealingBackend)
