"""Pluggable sweep-execution backends (see ``docs/architecture.md``)."""

from .base import (
    PointSpec,
    SweepBackend,
    backend_names,
    make_backend,
    register_backend,
)
from .batch import (
    BatchQueueBackend,
    read_task_file,
    run_batch_worker,
    write_task_file,
)
from .lease import (
    DEFAULT_LEASE_TIMEOUT,
    claim_lease,
    release_lease,
    renew_lease,
)
from .local import LocalBackend, resolve_jobs
from .socket_ws import SocketWorkStealingBackend, worker_main

__all__ = [
    "PointSpec",
    "SweepBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "BatchQueueBackend",
    "read_task_file",
    "run_batch_worker",
    "write_task_file",
    "DEFAULT_LEASE_TIMEOUT",
    "claim_lease",
    "release_lease",
    "renew_lease",
    "LocalBackend",
    "resolve_jobs",
    "SocketWorkStealingBackend",
    "worker_main",
]
