"""The sweep-backend seam: how a planned point list gets executed.

The sweep harness separates *what* to simulate from *how* to run it:
:meth:`~repro.harness.executor.ParallelSweepRunner.plan_points` produces
a deduplicated, baseline-first list of
:class:`~repro.harness.spec.SweepPoint` tasks, and
:meth:`~repro.harness.runner.SweepRunner.install` publishes each finished
result into the runner's memo and sharded
:class:`~repro.harness.result_cache.ResultCache`.  A backend is anything
that moves every pending point from "planned" to "installed" between
those two seams.  Points travel the wire in their canonical serialized
form (:meth:`SweepPoint.to_dict`), so a worker anywhere rebuilds exactly
the coordinator's point — same digest, same cache key.

Built-in backends:

* ``local`` — :class:`~repro.harness.backends.local.LocalBackend`, a
  :mod:`multiprocessing` pool on this host (the default);
* ``socket`` — :class:`~repro.harness.backends.socket_ws.SocketWorkStealingBackend`,
  a TCP coordinator that workers (local child processes or remote
  ``repro-cmp work`` shells) pull tasks from;
* ``batch`` — :class:`~repro.harness.backends.batch.BatchQueueBackend`,
  a task file plus manifest-driven ingest of per-worker cache shards,
  for queue systems and multi-host sync without open connections.

Every backend must preserve the harness invariant: the installed results
— and the cache blobs they serialize to — are **byte-identical** to a
serial sweep of the same points and seed, no matter how tasks were
distributed, retried after a crash, or installed more than once.

The distributed backends additionally participate in the fault-tolerance
layer: both accept a ``fault_plan``
(:class:`~repro.harness.faults.FaultPlan`) and a ``lease_timeout``, and
both publish a per-point :class:`~repro.harness.campaign.CampaignReport`
as :attr:`last_report` after :meth:`~SweepBackend.execute` — the
executor writes it next to the cache manifest.  ``last_report`` is an
optional attribute of the protocol: backends without retry machinery
(``local``) simply never set one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Protocol, Sequence, Tuple

from ..spec import SweepPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runner import SweepRunner

#: deprecated alias — one matrix point used to be a ``(workload,
#: total MB, technique label)`` tuple; backends now receive typed
#: :class:`~repro.harness.spec.SweepPoint` tasks
PointSpec = SweepPoint


class SweepBackend(Protocol):
    """Executes a planned task list against a sweep runner.

    Implementations receive the coordinating runner (for its parameters,
    cache, and ``install`` seam) plus the pending points, and return only
    after every point has been installed — raising if any point cannot
    be completed.  See ``docs/architecture.md`` for a writing-a-backend
    guide.
    """

    #: registry name, e.g. ``"local"`` (class attribute on implementations)
    name: str

    def execute(
        self, runner: "SweepRunner", pending: Sequence[SweepPoint]
    ) -> int:
        """Run every point in ``pending`` and install its results.

        Returns the number of points executed (retries of the same point
        count once).  Must raise on unrecoverable failure rather than
        silently dropping points.
        """
        ...


#: backend registry: name -> zero-config factory
_REGISTRY: Dict[str, Callable[..., SweepBackend]] = {}


def register_backend(name: str, factory: Callable[..., SweepBackend]) -> None:
    """Register a backend factory under a ``--backend`` name."""
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted (for help text and errors)."""
    return tuple(sorted(_REGISTRY))


def make_backend(name: str, **options) -> SweepBackend:
    """Instantiate a registered backend by name.

    ``options`` are passed to the backend factory; unknown names raise
    ``ValueError`` listing what is available.
    """
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep backend {name!r}; one of: "
            f"{', '.join(backend_names())}"
        ) from None
    return factory(**options)


def default_worker_id() -> str:
    """Default worker identity (host-pid), shared by every backend."""
    import os
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


def _ensure_builtins() -> None:
    """Import the built-in backend modules so they self-register."""
    from . import batch, local, socket_ws  # noqa: F401
