"""Local multiprocessing backend (the default sweep executor).

This is PR 1's worker pool refactored behind the
:class:`~repro.harness.backends.base.SweepBackend` protocol: a
:mod:`multiprocessing` pool whose initializer builds one serial
:class:`~repro.harness.runner.SweepRunner` per worker process (amortizing
workload construction), with completed points streamed back to the parent
in the serialized cache-entry format so installation is byte-identical to
a serial run.  Tasks cross the process boundary in the point's canonical
dict form (:meth:`~repro.harness.spec.SweepPoint.to_dict`) — the same
wire format the socket and batch backends use.  Workers write straight
into the shared on-disk cache when one is configured; the parent then
skips the redundant write.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional, Sequence, Tuple

from ..runner import SweepRunner, decode_entry, encode_entry
from ..spec import SweepPoint
from .base import register_backend

#: per-worker serial runner, created once by the pool initializer
_WORKER_RUNNER: Optional[SweepRunner] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (``None``/``0`` = all cores)."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _init_worker(params: dict) -> None:
    """Pool initializer: build this worker's serial runner."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = SweepRunner(verbose=False, **params)
    _WORKER_RUNNER.backend_label = "local"


def _run_point(point_dict: dict) -> Tuple[dict, dict, dict]:
    """Execute one sweep point in a pool worker.

    Receives the point's serialized dict and returns it with the
    *serialized* result/energy blobs — exactly the cache-entry format —
    so the parent reconstructs results the same way a cache hit would,
    keeping serial and parallel sweeps byte-identical.
    """
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    point = SweepPoint.from_dict(point_dict)
    try:
        res, energy = _WORKER_RUNNER.run_point(point)
    except Exception as exc:
        raise RuntimeError(
            f"sweep point {point.describe()} failed: {exc}"
        ) from exc
    blob = encode_entry(res, energy)
    return point_dict, blob["result"], blob["energy"]


class LocalBackend:
    """Process-pool execution on this host.

    ``jobs`` follows the CLI convention (``None``/``0`` = all cores);
    a single pending point, or ``jobs=1``, takes an inline no-pool fast
    path through :meth:`~repro.harness.runner.SweepRunner.run_point`.
    """

    name = "local"

    def __init__(
        self,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method

    def execute(
        self, runner: SweepRunner, pending: Sequence[SweepPoint]
    ) -> int:
        """Fan ``pending`` out across the worker pool (or run inline)."""
        pending = list(pending)
        if not pending:
            return 0
        if self.jobs == 1 or len(pending) == 1:
            for point in pending:
                runner.run_point(point)
            return len(pending)
        params = runner.runner_params(cache_dir=runner.cache_dir)
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        n_workers = min(self.jobs, len(pending))
        if runner.verbose:
            print(
                f"[sweep] {len(pending)} points on {n_workers} workers "
                f"(scale={runner.scale})",
                flush=True,
            )
        with ctx.Pool(
            processes=n_workers,
            initializer=_init_worker,
            initargs=(params,),
        ) as pool:
            done = 0
            for point_d, result_d, energy_d in pool.imap_unordered(
                _run_point, [p.to_dict() for p in pending], chunksize=1
            ):
                point = SweepPoint.from_dict(point_d)
                res, energy = decode_entry(
                    {"result": result_d, "energy": energy_d}
                )
                # the worker already persisted the entry when caching is on
                runner.install(
                    point, res, energy, write_cache=runner.cache is None
                )
                done += 1
                if runner.verbose:
                    print(
                        f"[sweep] {done}/{len(pending)} done: "
                        f"{point.describe()}",
                        flush=True,
                    )
        return len(pending)


register_backend("local", LocalBackend)
