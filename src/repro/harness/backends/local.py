"""Local multiprocessing backend (the default sweep executor).

This is PR 1's worker pool refactored behind the
:class:`~repro.harness.backends.base.SweepBackend` protocol: a
:mod:`multiprocessing` pool whose initializer builds one serial
:class:`~repro.harness.runner.SweepRunner` per worker process (amortizing
workload construction), with completed points streamed back to the parent
in the serialized cache-entry format so installation is byte-identical to
a serial run.  Workers write straight into the shared on-disk cache when
one is configured; the parent then skips the redundant write.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional, Sequence, Tuple

from ..runner import SweepRunner, decode_entry, encode_entry
from .base import PointSpec, register_backend

#: per-worker serial runner, created once by the pool initializer
_WORKER_RUNNER: Optional[SweepRunner] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (``None``/``0`` = all cores)."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _init_worker(params: dict) -> None:
    """Pool initializer: build this worker's serial runner."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = SweepRunner(verbose=False, **params)


def _run_point(spec: PointSpec) -> Tuple[PointSpec, dict, dict]:
    """Execute one matrix point in a pool worker.

    Returns the spec with the *serialized* result/energy blobs — exactly
    the cache-entry format — so the parent reconstructs results the same
    way a cache hit would, keeping serial and parallel sweeps
    byte-identical.
    """
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    workload, total_mb, tech_label = spec
    try:
        res, energy = _WORKER_RUNNER.run_point(workload, total_mb, tech_label)
    except Exception as exc:
        raise RuntimeError(
            f"sweep point {workload} {total_mb}MB {tech_label} failed: {exc}"
        ) from exc
    blob = encode_entry(res, energy)
    return spec, blob["result"], blob["energy"]


class LocalBackend:
    """Process-pool execution on this host.

    ``jobs`` follows the CLI convention (``None``/``0`` = all cores);
    a single pending point, or ``jobs=1``, takes an inline no-pool fast
    path through :meth:`~repro.harness.runner.SweepRunner.run_point`.
    """

    name = "local"

    def __init__(
        self,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method

    def execute(self, runner: SweepRunner, pending: Sequence[PointSpec]) -> int:
        """Fan ``pending`` out across the worker pool (or run inline)."""
        pending = list(pending)
        if not pending:
            return 0
        if self.jobs == 1 or len(pending) == 1:
            for spec in pending:
                runner.run_point(*spec)
            return len(pending)
        params = runner.runner_params(cache_dir=runner.cache_dir)
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        n_workers = min(self.jobs, len(pending))
        if runner.verbose:
            print(
                f"[sweep] {len(pending)} points on {n_workers} workers "
                f"(scale={runner.scale})",
                flush=True,
            )
        with ctx.Pool(
            processes=n_workers,
            initializer=_init_worker,
            initargs=(params,),
        ) as pool:
            done = 0
            for spec, result_d, energy_d in pool.imap_unordered(
                _run_point, pending, chunksize=1
            ):
                res, energy = decode_entry(
                    {"result": result_d, "energy": energy_d}
                )
                # the worker already persisted the entry when caching is on
                runner.install(
                    *spec, res, energy, write_cache=runner.cache is None
                )
                done += 1
                if runner.verbose:
                    wl, mb, tech = spec
                    print(
                        f"[sweep] {done}/{len(pending)} done: "
                        f"{wl} {mb}MB {tech}",
                        flush=True,
                    )
        return len(pending)


register_backend("local", LocalBackend)
