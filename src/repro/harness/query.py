"""The formal result-query API: one query object, four consumers.

Selection used to be scattered: ``figures.py`` filtered metric lists
with loose kwargs (``select_metrics``/``metrics_by_point``), the CLI
emitted tables and CSV with its own ad-hoc loops, and the ensemble
aggregator picked columns by hand.  This module extracts that logic into
one frozen, serializable :class:`ResultQuery` — filter axes + sort +
projection + limit — executed through a single seam,
:meth:`ResultStore.run_query`, by every consumer:

* the CLI (``repro-cmp query``, ``--query`` on ``run``/``scenario run``),
* the figure renderer (the slice builders in ``figures.py``),
* the ensemble aggregator (``repro.scenarios.stats.aggregate_metrics``),
* the HTTP result service (``repro.serving``, ``GET /v1/query``).

Like :class:`~repro.harness.spec.ExperimentSpec`, a query round-trips
losslessly through JSON and TOML, and additionally parses from the
compact ``key=value`` form shared by the CLI filter argument and HTTP
query strings — the same text selects the same rows everywhere.

:class:`ResultStore` mounts the pair (result-cache directory, experiment
spec) as a read-only table of metric rows: each expanded point is looked
up in the cache (never simulated unless ``simulate_missing``), paired
against its baseline twin, and addressed by its process-independent
:meth:`~repro.harness.spec.SweepPoint.digest`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .metrics import PointMetrics
from .runner import SweepRunner
from .spec import ExperimentSpec, SweepPoint, dumps_toml, loads_toml

#: coordinate columns every metric row carries
COORDINATE_FIELDS: Tuple[str, ...] = (
    "workload",
    "total_mb",
    "technique",
    "n_cores",
)

#: metric columns of a :class:`~repro.harness.metrics.PointMetrics` row
METRIC_FIELDS: Tuple[str, ...] = (
    "occupancy",
    "miss_rate",
    "bandwidth_increase",
    "amat_increase",
    "ipc_loss",
    "energy_reduction",
    "l2_leakage_share",
    "peak_temp_c",
)

#: every sortable/filterable column name
QUERY_FIELDS: Tuple[str, ...] = COORDINATE_FIELDS + METRIC_FIELDS

#: every projectable column name (rows served by a store also carry the
#: point digest, which is an address rather than a measurement)
PROJECTION_FIELDS: Tuple[str, ...] = ("digest",) + QUERY_FIELDS

#: accepted query keys (CLI tokens and HTTP params) -> canonical field
PARAM_ALIASES: Dict[str, str] = {
    "workload": "workloads",
    "workloads": "workloads",
    "size": "sizes_mb",
    "sizes": "sizes_mb",
    "size_mb": "sizes_mb",
    "sizes_mb": "sizes_mb",
    "total_mb": "sizes_mb",
    "technique": "techniques",
    "techniques": "techniques",
    "cores": "cores",
    "n_cores": "cores",
    "sort": "sort",
    "fields": "fields",
    "limit": "limit",
}


class QueryError(ValueError):
    """A result query failed to parse or validate."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise QueryError(message)


_MISSING = object()


def _sort_value(row: Any, attr: str) -> Tuple[bool, Any]:
    """Sort key of one row attribute; ``None`` values order last (asc).

    Works on :class:`~repro.harness.metrics.PointMetrics` (plain
    attributes) and on ensemble summary rows, whose metric values live
    in a ``stats`` mapping of
    :class:`~repro.scenarios.stats.SummaryStat` — there the *mean*
    orders the row.
    """
    value = getattr(row, attr, _MISSING)
    if value is _MISSING:
        stats = getattr(row, "stats", None)
        if stats is not None and attr in stats:
            value = stats[attr].mean
        else:
            raise QueryError(
                f"cannot sort these rows by {attr!r} (not a column of "
                f"{type(row).__name__})"
            )
    return (value is None, 0 if value is None else value)


@dataclass(frozen=True)
class ResultQuery:
    """One declarative selection over metric rows.

    Empty filter tuples mean "any value"; the zero query selects every
    row unchanged.  ``sort`` names columns, optionally ``-``-prefixed
    for descending, applied stably left-to-right; ``fields`` projects
    the served row dicts (the ``digest`` pseudo-column is projectable);
    ``limit`` truncates after sorting.  Instances are frozen and
    hashable, and round-trip through JSON/TOML like experiment specs.
    """

    workloads: Tuple[str, ...] = ()
    sizes_mb: Tuple[int, ...] = ()
    techniques: Tuple[str, ...] = ()
    cores: Tuple[int, ...] = ()
    sort: Tuple[str, ...] = ()
    fields: Tuple[str, ...] = ()
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("workloads", "sizes_mb", "techniques", "cores", "sort", "fields"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for wl in self.workloads:
            _require(
                isinstance(wl, str) and bool(wl),
                f"workload filters must be names, got {wl!r}",
            )
        for mb in self.sizes_mb:
            _require(
                isinstance(mb, int) and not isinstance(mb, bool) and mb >= 1,
                f"size filters must be positive integers (MB), got {mb!r}",
            )
        for tech in self.techniques:
            _require(
                isinstance(tech, str) and bool(tech),
                f"technique filters must be labels, got {tech!r}",
            )
        for n in self.cores:
            _require(
                isinstance(n, int) and not isinstance(n, bool) and n >= 1,
                f"cores filters must be positive integers, got {n!r}",
            )
        for token in self.sort:
            _require(
                isinstance(token, str) and token.lstrip("-") in QUERY_FIELDS,
                f"unknown sort column {token!r}; one of: "
                f"{', '.join(QUERY_FIELDS)} (prefix with '-' to descend)",
            )
        for name in self.fields:
            _require(
                name in PROJECTION_FIELDS,
                f"unknown field {name!r}; one of: "
                f"{', '.join(PROJECTION_FIELDS)}",
            )
        if self.limit is not None:
            _require(
                isinstance(self.limit, int)
                and not isinstance(self.limit, bool)
                and self.limit >= 1,
                f"limit must be a positive integer, got {self.limit!r}",
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def matches(self, row: Any) -> bool:
        """Whether one row passes every filter axis.

        ``row`` needs the coordinate attributes (``workload``,
        ``total_mb``, ``technique``, ``n_cores``) — point metrics and
        ensemble summary rows both qualify.  A ``cores`` filter matches
        only rows that *pin* ``n_cores``; rows inheriting the runner
        default carry ``None`` and are excluded.
        """
        if self.workloads and row.workload not in self.workloads:
            return False
        if self.sizes_mb and row.total_mb not in self.sizes_mb:
            return False
        if self.techniques and row.technique not in self.techniques:
            return False
        if self.cores and row.n_cores not in self.cores:
            return False
        return True

    def arrange(self, rows: Sequence[Any]) -> List[Any]:
        """Sort (stably, left-to-right precedence) and apply ``limit``."""
        out = list(rows)
        for token in reversed(self.sort):
            descending = token.startswith("-")
            attr = token.lstrip("-")
            out.sort(key=lambda r: _sort_value(r, attr), reverse=descending)
        if self.limit is not None:
            out = out[: self.limit]
        return out

    def apply(self, rows: Iterable[Any]) -> List[Any]:
        """Filter + sort + limit: the whole query over in-memory rows.

        This is the single implementation of row selection — figure
        slice builders, the ensemble aggregator, the CLI and the HTTP
        service all funnel through it (directly or via
        :meth:`ResultStore.run_query`).
        """
        return self.arrange([r for r in rows if self.matches(r)])

    def project(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Project one row dict onto ``fields`` (all columns when unset)."""
        if not self.fields:
            return dict(row)
        return {name: row.get(name) for name in self.fields}

    # ------------------------------------------------------------------
    # Parsing (CLI filter strings and HTTP query parameters)
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ResultQuery":
        """Parse the compact filter form: whitespace-separated ``k=v``.

        Example: ``'workload=uniform,fft size=4 sort=-energy_reduction
        fields=workload,technique,energy_reduction limit=5'``.  The
        empty string is the zero query (select everything).
        """
        pairs: List[Tuple[str, str]] = []
        for token in text.split():
            _require(
                "=" in token,
                f"bad query token {token!r}; expected key=value",
            )
            key, _, value = token.partition("=")
            pairs.append((key, value))
        return cls.from_params(pairs)

    @classmethod
    def from_params(cls, pairs: Iterable[Tuple[str, str]]) -> "ResultQuery":
        """Build from ``(key, value)`` pairs (HTTP query-string shaped).

        Keys accept the aliases in :data:`PARAM_ALIASES` (``size`` and
        ``total_mb`` both filter capacity; ``cores`` and ``n_cores`` are
        synonyms); repeated keys and comma-separated values both extend
        the same filter axis.  Raises :class:`QueryError` on unknown
        keys or unparseable values.
        """
        buckets: Dict[str, List[str]] = {}
        for key, raw in pairs:
            canonical = PARAM_ALIASES.get(str(key).strip().lower())
            _require(
                canonical is not None,
                f"unknown query key {key!r}; one of: "
                f"{', '.join(sorted(set(PARAM_ALIASES)))}",
            )
            for part in str(raw).split(","):
                part = part.strip()
                if part:
                    buckets.setdefault(canonical, []).append(part)

        def ints(name: str) -> Tuple[int, ...]:
            out = []
            for part in buckets.get(name, ()):
                try:
                    out.append(int(part))
                except ValueError:
                    raise QueryError(
                        f"{name} values must be integers, got {part!r}"
                    ) from None
            return tuple(out)

        limit: Optional[int] = None
        if "limit" in buckets:
            values = buckets["limit"]
            _require(
                len(values) == 1,
                f"limit given {len(values)} times; pass one value",
            )
            try:
                limit = int(values[0])
            except ValueError:
                raise QueryError(
                    f"limit must be an integer, got {values[0]!r}"
                ) from None
        return cls(
            workloads=tuple(buckets.get("workloads", ())),
            sizes_mb=ints("sizes_mb"),
            techniques=tuple(buckets.get("techniques", ())),
            cores=ints("cores"),
            sort=tuple(buckets.get("sort", ())),
            fields=tuple(buckets.get("fields", ())),
            limit=limit,
        )

    # ------------------------------------------------------------------
    # Serialization (JSON/TOML round-trip, like ExperimentSpec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical dict; unset axes are omitted."""
        out: Dict[str, Any] = {}
        for name in ("workloads", "sizes_mb", "techniques", "cores", "sort", "fields"):
            value = getattr(self, name)
            if value:
                out[name] = list(value)
        if self.limit is not None:
            out["limit"] = self.limit
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultQuery":
        """Rebuild a query from :meth:`to_dict` output (validating)."""
        _require(
            isinstance(data, Mapping), f"query must be a dict, got {data!r}"
        )
        known = {
            "workloads", "sizes_mb", "techniques", "cores", "sort", "fields",
            "limit",
        }
        unknown = set(data) - known
        _require(
            not unknown,
            f"unknown query keys: {', '.join(sorted(unknown))}",
        )
        return cls(
            workloads=tuple(data.get("workloads", ())),
            sizes_mb=tuple(data.get("sizes_mb", ())),
            techniques=tuple(data.get("techniques", ())),
            cores=tuple(data.get("cores", ())),
            sort=tuple(data.get("sort", ())),
            fields=tuple(data.get("fields", ())),
            limit=data.get("limit"),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ResultQuery":
        """Parse a JSON query document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError(f"invalid JSON query: {exc}") from exc
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """Canonical TOML text."""
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ResultQuery":
        """Parse a TOML query document."""
        return cls.from_dict(loads_toml(text))


def index_by_triple(
    metrics: Iterable[PointMetrics],
) -> Dict[Tuple[str, int, str], PointMetrics]:
    """Index metric rows by ``(workload, total_mb, technique)``.

    The supported replacement for the deprecated
    :func:`~repro.harness.metrics.metrics_by_point`.
    """
    return {(m.workload, m.total_mb, m.technique): m for m in metrics}


@dataclass
class QueryResult:
    """Everything one :meth:`ResultStore.run_query` execution produced.

    ``metrics`` are the selected rows as objects (figure/table
    consumers); ``rows`` are the same rows as projected, JSON-safe dicts
    with the point ``digest`` (wire consumers).  ``missing`` counts spec
    points whose results are not in the cache — selection never sees
    them — and ``total`` is the full expansion size.
    """

    name: str
    query: ResultQuery
    metrics: List[PointMetrics] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    missing: int = 0
    total: int = 0

    @property
    def matched(self) -> int:
        """How many rows the query selected."""
        return len(self.rows)


class ResultStore:
    """A read-only table of metric rows over (result cache, spec).

    The store expands the spec once, pairs every point with its baseline
    twin through the runner's cache, and indexes the rows by point
    digest.  Missing entries (either the point's blob or its baseline's)
    are *skipped* — a serving layer must never silently burn CPU
    resimulating — unless ``simulate_missing`` asks for on-demand fill
    (the CLI's ``--simulate``).  Rows are computed lazily and memoized:
    the store is a snapshot, matching the immutability contract of the
    content-addressed read path.
    """

    def __init__(
        self,
        runner: SweepRunner,
        spec: ExperimentSpec,
        simulate_missing: bool = False,
    ) -> None:
        self.runner = runner
        self.spec = spec
        self.simulate_missing = simulate_missing
        self._points: Optional[List[SweepPoint]] = None
        self._pairs: Optional[List[Tuple[SweepPoint, Optional[PointMetrics]]]] = None
        self._by_digest: Optional[Dict[str, SweepPoint]] = None

    @classmethod
    def open(
        cls,
        cache_dir: str,
        spec: ExperimentSpec,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        n_cores: Optional[int] = None,
        warmup: Optional[float] = None,
        simulate_missing: bool = False,
        verbose: bool = False,
        trace_root: Optional[str] = None,
    ) -> "ResultStore":
        """Mount a cache directory under a spec's resolved run context.

        Context resolution mirrors ``repro-cmp run``: explicit keyword
        overrides beat the spec's ``[run]`` table, which beats the
        runner defaults — so the store computes exactly the cache keys a
        run of the same spec populated.  ``trace_root`` anchors relative
        ``trace:`` workload paths; it defaults to the spec file's own
        directory (``spec.base_dir``), matching ``repro-cmp run``.
        """
        ctx = spec.context(
            scale=scale, seed=seed, n_cores=n_cores, warmup=warmup
        )
        kwargs: Dict[str, Any] = {}
        if "scale" in ctx:
            kwargs["scale"] = float(ctx["scale"])
        if "seed" in ctx:
            kwargs["seed"] = int(ctx["seed"])
        if "n_cores" in ctx:
            kwargs["n_cores"] = int(ctx["n_cores"])
        if "warmup" in ctx:
            kwargs["warmup_fraction"] = float(ctx["warmup"])
        runner = SweepRunner(
            cache_dir=cache_dir,
            verbose=verbose,
            trace_root=trace_root if trace_root is not None else spec.base_dir,
            **kwargs,
        )
        return cls(runner, spec, simulate_missing=simulate_missing)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The mounted spec's name (labels query results)."""
        return self.spec.name

    def points(self) -> List[SweepPoint]:
        """The spec's expanded point list (memoized)."""
        if self._points is None:
            self._points = self.runner.expand_spec(self.spec)
        return self._points

    def digest_index(self) -> Dict[str, SweepPoint]:
        """Point digest -> point, for the content-addressed read path."""
        if self._by_digest is None:
            self._by_digest = {p.digest(): p for p in self.points()}
        return self._by_digest

    def _metrics_or_none(self, point: SweepPoint) -> Optional[PointMetrics]:
        if self.simulate_missing:
            return self.runner.metrics_for(point)
        base = self.runner.lookup(point.baseline_twin())
        pair = self.runner.lookup(point)
        if base is None or pair is None:
            return None
        return PointMetrics.for_point(point, base[0], base[1], pair[0], pair[1])

    def pairs(self) -> List[Tuple[SweepPoint, Optional[PointMetrics]]]:
        """``(point, metrics-or-None)`` per spec point, in spec order."""
        if self._pairs is None:
            self._pairs = [(p, self._metrics_or_none(p)) for p in self.points()]
        return self._pairs

    def metrics(self) -> List[PointMetrics]:
        """Every available metric row, in spec order."""
        return [m for _, m in self.pairs() if m is not None]

    def missing_points(self) -> List[SweepPoint]:
        """Spec points whose results (or baselines) are not cached."""
        return [p for p, m in self.pairs() if m is None]

    # ------------------------------------------------------------------
    def run_query(self, query: ResultQuery) -> QueryResult:
        """Execute one query against the store: the consumer seam.

        Selection/order/limit run through :meth:`ResultQuery.apply`;
        the wire rows carry each point's digest and honor the query's
        projection.
        """
        selected = query.apply(self.metrics())
        point_of = {id(m): p for p, m in self.pairs() if m is not None}
        rows = [
            query.project({"digest": point_of[id(m)].digest(), **m.as_dict()})
            for m in selected
        ]
        return QueryResult(
            name=self.name,
            query=query,
            metrics=selected,
            rows=rows,
            missing=len(self.missing_points()),
            total=len(self.points()),
        )

    def metrics_for_digest(
        self, digest: str
    ) -> Optional[Tuple[SweepPoint, Optional[PointMetrics]]]:
        """Resolve one point digest; ``None`` when the spec lacks it.

        A known digest whose blob (or baseline) is uncached returns
        ``(point, None)`` — the serving layer maps that to 404 without
        conflating it with an unknown address.
        """
        point = self.digest_index().get(digest)
        if point is None:
            return None
        for p, m in self.pairs():
            if p is point:
                return (p, m)
        return (point, None)  # pragma: no cover - index/pairs stay in sync

    def provenance_for_digest(self, digest: str) -> Optional[Dict[str, Any]]:
        """Provenance sidecar of one point digest; ``None`` when absent."""
        point = self.digest_index().get(digest)
        if point is None or self.runner.cache is None:
            return None
        return self.runner.cache.get_provenance(self.runner.point_key(point))
