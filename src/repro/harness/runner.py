"""Sweep runner with a sharded on-disk result cache.

Every figure of the paper draws from the same simulation matrix
(6 benchmarks × 4 cache sizes × 8 technique configurations), so the eight
per-figure benches share one result cache keyed by the full configuration.
A cache entry stores the serialized :class:`~repro.sim.stats.SimResult`
plus the energy breakdown; cache misses simulate on demand.

Storage is a :class:`~repro.harness.result_cache.ResultCache`: entries are
sharded by key digest, written atomically (tmp file + ``os.replace``) so an
interrupted run can never leave a truncated blob behind, and corrupt
entries are skipped and resimulated instead of crashing every later load.
Loaded and simulated points are additionally memoized in-process, which is
what lets the parallel executor hand results straight to figure code.

The cache key includes a schema version — bump :data:`CACHE_VERSION` when
simulator semantics change so stale entries are never mixed into figures.
For the (workload × size × technique) matrix itself, prefer
:class:`~repro.harness.executor.ParallelSweepRunner`, which shards the
matrix across a process pool.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..power.energy import EnergyBreakdown, EnergyModel
from ..sim.config import (
    BASELINE,
    CMPConfig,
    PAPER_TOTAL_L2_MB,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
)
from ..sim.simulator import simulate
from ..sim.stats import SimResult
from ..workloads.registry import PAPER_BENCHMARKS, get_workload
from .metrics import PointMetrics
from .result_cache import ResultCache

#: bump when simulator/workload semantics change (invalidates caches)
CACHE_VERSION = 8

#: default warmup: skips the workloads' init phase (DESIGN.md §5)
DEFAULT_WARMUP = 0.17

#: (SimResult, EnergyBreakdown) of one sweep point
PointResult = Tuple[SimResult, EnergyBreakdown]


def _breakdown_to_dict(bd: EnergyBreakdown) -> dict:
    return asdict(bd)


def _breakdown_from_dict(d: dict) -> EnergyBreakdown:
    return EnergyBreakdown(**d)


def decode_entry(blob: dict) -> PointResult:
    """Decode one cache entry; raises on schema mismatch."""
    return (
        SimResult.from_dict(blob["result"]),
        _breakdown_from_dict(blob["energy"]),
    )


def encode_entry(res: SimResult, energy: EnergyBreakdown) -> dict:
    """Inverse of :func:`decode_entry` (the on-disk entry format)."""
    return {"result": res.to_dict(), "energy": _breakdown_to_dict(energy)}


class SweepRunner:
    """Simulates (workload × size × technique) points with caching."""

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.n_cores = n_cores
        self.warmup = warmup_fraction
        self.cache_dir = cache_dir
        self.cache = ResultCache(cache_dir, CACHE_VERSION) if cache_dir else None
        self.verbose = verbose
        self._workloads: Dict[str, object] = {}
        self._memo: Dict[str, PointResult] = {}

    # ------------------------------------------------------------------
    def runner_params(self, **overrides) -> dict:
        """JSON-safe constructor kwargs that rebuild an equivalent runner.

        Backends ship these to their workers (over a socket, or inside a
        batch task file) so every worker simulates with exactly the
        coordinator's scale/seed/warmup — the precondition for
        byte-identical results.  ``cache_dir`` is included only when
        passed as an override: each backend decides where (and whether)
        its workers persist entries.
        """
        params = dict(
            scale=self.scale,
            seed=self.seed,
            n_cores=self.n_cores,
            warmup_fraction=self.warmup,
        )
        params.update(overrides)
        return params

    # ------------------------------------------------------------------
    def technique_configs(self) -> Dict[str, TechniqueConfig]:
        """Baseline + the paper's seven technique configurations."""
        out = {"baseline": TechniqueConfig(name=BASELINE)}
        out.update(paper_techniques(self.scale))
        return out

    def technique_order(self) -> List[str]:
        """Figure ordering: baseline first, then the paper's seven."""
        return ["baseline", *paper_technique_order()]

    def config_for(self, total_mb: int, tech: TechniqueConfig) -> CMPConfig:
        """System config for one sweep point."""
        return (
            CMPConfig(n_cores=self.n_cores, seed=self.seed)
            .with_total_l2_mb(total_mb)
            .with_technique(tech)
        )

    # ------------------------------------------------------------------
    def cache_key(self, workload: str, cfg: CMPConfig) -> str:
        """Full cache key of one point (workload context + config key)."""
        return f"{workload}-sc{self.scale}-w{self.warmup}-{cfg.key()}"

    def point_key(self, workload: str, total_mb: int, tech_label: str) -> str:
        """Cache key of a point given by its matrix coordinates."""
        tech = self.technique_configs()[tech_label]
        return self.cache_key(workload, self.config_for(total_mb, tech))

    def _workload(self, name: str):
        if name not in self._workloads:
            self._workloads[name] = get_workload(
                name, n_cores=self.n_cores, scale=self.scale, seed=self.seed
            )
        return self._workloads[name]

    # ------------------------------------------------------------------
    def lookup(
        self, workload: str, total_mb: int, tech_label: str
    ) -> Optional[PointResult]:
        """Memo/disk lookup of one point; ``None`` means "must simulate".

        Corrupt or schema-stale disk entries are invalidated here, so the
        caller's resimulation overwrites them with a good blob.
        """
        key = self.point_key(workload, total_mb, tech_label)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.cache is None:
            return None
        blob = self.cache.get(key)
        if blob is None:
            return None
        try:
            pair = decode_entry(blob)
        except (KeyError, TypeError, ValueError):
            self.cache.invalidate(key)
            return None
        self._memo[key] = pair
        return pair

    def install(
        self,
        workload: str,
        total_mb: int,
        tech_label: str,
        res: SimResult,
        energy: EnergyBreakdown,
        write_cache: bool = True,
    ) -> None:
        """Publish one point's results into the memo (and the disk cache).

        The parallel executor calls this with results received from pool
        workers; ``write_cache=False`` skips the disk write when the
        worker already persisted the entry itself.
        """
        key = self.point_key(workload, total_mb, tech_label)
        self._memo[key] = (res, energy)
        if write_cache and self.cache is not None:
            self.cache.put(key, encode_entry(res, energy))

    def run_point(
        self, workload: str, total_mb: int, tech_label: str
    ) -> PointResult:
        """Simulate (or load) one point; returns (result, energy)."""
        hit = self.lookup(workload, total_mb, tech_label)
        if hit is not None:
            return hit
        if self.verbose:
            print(
                f"[sweep] simulating {workload} {total_mb}MB {tech_label} "
                f"(scale={self.scale})",
                flush=True,
            )
        tech = self.technique_configs()[tech_label]
        cfg = self.config_for(total_mb, tech)
        res = simulate(cfg, self._workload(workload), warmup_fraction=self.warmup)
        energy = EnergyModel(cfg).evaluate(res)
        self.install(workload, total_mb, tech_label, res, energy)
        return res, energy

    # ------------------------------------------------------------------
    def metrics_for(
        self, workload: str, total_mb: int, tech_label: str
    ) -> PointMetrics:
        """Metrics of one point relative to its baseline twin."""
        base_res, base_e = self.run_point(workload, total_mb, "baseline")
        res, e = self.run_point(workload, total_mb, tech_label)
        return PointMetrics.compute(
            workload, total_mb, tech_label, base_res, base_e, res, e
        )

    def sweep(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> List[PointMetrics]:
        """The full figure matrix as a flat metric list."""
        techniques = list(techniques or paper_technique_order())
        out: List[PointMetrics] = []
        for mb in sizes:
            for wl in benchmarks:
                for tech in techniques:
                    out.append(self.metrics_for(wl, mb, tech))
        return out

    def averaged(
        self, points: List[PointMetrics], attr: str
    ) -> Dict[Tuple[int, str], float]:
        """Average ``attr`` across benchmarks, keyed by (size, technique)."""
        sums: Dict[Tuple[int, str], List[float]] = {}
        for p in points:
            sums.setdefault((p.total_mb, p.technique), []).append(getattr(p, attr))
        return {k: sum(v) / len(v) for k, v in sums.items()}
