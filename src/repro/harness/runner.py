"""Sweep runner with an on-disk result cache.

Every figure of the paper draws from the same simulation matrix
(6 benchmarks × 4 cache sizes × 8 technique configurations), so the eight
per-figure benches share one JSON cache keyed by the full configuration.
A cache entry stores the serialized :class:`~repro.sim.stats.SimResult`
plus the energy breakdown; cache misses simulate on demand.

The cache key includes a schema version — bump :data:`CACHE_VERSION` when
simulator semantics change so stale entries are never mixed into figures.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..power.energy import EnergyBreakdown, EnergyModel
from ..sim.config import (
    BASELINE,
    CMPConfig,
    PAPER_TOTAL_L2_MB,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
)
from ..sim.simulator import simulate
from ..sim.stats import SimResult
from ..workloads.registry import PAPER_BENCHMARKS, get_workload
from .metrics import PointMetrics

#: bump when simulator/workload semantics change (invalidates caches)
CACHE_VERSION = 7

#: default warmup: skips the workloads' init phase (DESIGN.md §5)
DEFAULT_WARMUP = 0.17


def _breakdown_to_dict(bd: EnergyBreakdown) -> dict:
    return asdict(bd)


def _breakdown_from_dict(d: dict) -> EnergyBreakdown:
    return EnergyBreakdown(**d)


class SweepRunner:
    """Simulates (workload × size × technique) points with caching."""

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.n_cores = n_cores
        self.warmup = warmup_fraction
        self.cache_dir = cache_dir
        self.verbose = verbose
        self._workloads: Dict[str, object] = {}
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def technique_configs(self) -> Dict[str, TechniqueConfig]:
        """Baseline + the paper's seven technique configurations."""
        out = {"baseline": TechniqueConfig(name=BASELINE)}
        out.update(paper_techniques(self.scale))
        return out

    def technique_order(self) -> List[str]:
        """Figure ordering: baseline first, then the paper's seven."""
        return ["baseline", *paper_technique_order()]

    def config_for(self, total_mb: int, tech: TechniqueConfig) -> CMPConfig:
        """System config for one sweep point."""
        return CMPConfig(n_cores=self.n_cores, seed=self.seed) \
            .with_total_l2_mb(total_mb).with_technique(tech)

    # ------------------------------------------------------------------
    def _cache_path(self, workload: str, cfg: CMPConfig) -> Optional[str]:
        if not self.cache_dir:
            return None
        key = (
            f"v{CACHE_VERSION}-{workload}-sc{self.scale}-w{self.warmup}"
            f"-{cfg.key()}"
        )
        return os.path.join(self.cache_dir, key + ".json")

    def _workload(self, name: str):
        if name not in self._workloads:
            self._workloads[name] = get_workload(
                name, n_cores=self.n_cores, scale=self.scale, seed=self.seed
            )
        return self._workloads[name]

    def run_point(
        self, workload: str, total_mb: int, tech_label: str
    ) -> Tuple[SimResult, EnergyBreakdown]:
        """Simulate (or load) one point; returns (result, energy)."""
        tech = self.technique_configs()[tech_label]
        cfg = self.config_for(total_mb, tech)
        path = self._cache_path(workload, cfg)
        if path and os.path.exists(path):
            with open(path) as fh:
                blob = json.load(fh)
            return (
                SimResult.from_dict(blob["result"]),
                _breakdown_from_dict(blob["energy"]),
            )
        if self.verbose:
            print(f"[sweep] simulating {workload} {total_mb}MB {tech_label} "
                  f"(scale={self.scale})", flush=True)
        res = simulate(cfg, self._workload(workload),
                       warmup_fraction=self.warmup)
        energy = EnergyModel(cfg).evaluate(res)
        if path:
            with open(path, "w") as fh:
                json.dump(
                    {"result": res.to_dict(),
                     "energy": _breakdown_to_dict(energy)},
                    fh,
                )
        return res, energy

    # ------------------------------------------------------------------
    def metrics_for(
        self, workload: str, total_mb: int, tech_label: str
    ) -> PointMetrics:
        """Metrics of one point relative to its baseline twin."""
        base_res, base_e = self.run_point(workload, total_mb, "baseline")
        res, e = self.run_point(workload, total_mb, tech_label)
        return PointMetrics.compute(
            workload, total_mb, tech_label, base_res, base_e, res, e
        )

    def sweep(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> List[PointMetrics]:
        """The full figure matrix as a flat metric list."""
        techniques = list(techniques or paper_technique_order())
        out: List[PointMetrics] = []
        for mb in sizes:
            for wl in benchmarks:
                for tech in techniques:
                    out.append(self.metrics_for(wl, mb, tech))
        return out

    def averaged(
        self, points: List[PointMetrics], attr: str
    ) -> Dict[Tuple[int, str], float]:
        """Average ``attr`` across benchmarks, keyed by (size, technique)."""
        sums: Dict[Tuple[int, str], List[float]] = {}
        for p in points:
            sums.setdefault((p.total_mb, p.technique), []).append(
                getattr(p, attr))
        return {k: sum(v) / len(v) for k, v in sums.items()}
