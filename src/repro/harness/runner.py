"""Sweep runner with a sharded on-disk result cache.

Every figure of the paper draws from the same simulation matrix
(6 benchmarks × 4 cache sizes × 8 technique configurations), so the eight
per-figure benches share one result cache keyed by the full configuration.
A cache entry stores the serialized :class:`~repro.sim.stats.SimResult`
plus the energy breakdown; cache misses simulate on demand.

Points are typed: the runner's unit of work is a
:class:`~repro.harness.spec.SweepPoint` — workload, total L2 capacity, a
full :class:`~repro.sim.config.TechniqueConfig`, and optional
runner-context overrides.  Cache keys are derived from the point's
canonical serialized form via
:func:`~repro.sim.config.stable_digest`, so any process on any host
computes the same key for the same point.  (The pre-spec
``(workload, total_mb, tech_label)`` string triples rode through one
release as deprecated shims and are gone; build points with
:meth:`SweepRunner.point`.)

Storage is a :class:`~repro.harness.result_cache.ResultCache`: entries are
sharded by key digest, written atomically (tmp file + ``os.replace``) so an
interrupted run can never leave a truncated blob behind, and corrupt
entries are skipped and resimulated instead of crashing every later load.
Loaded and simulated points are additionally memoized in-process, which is
what lets the parallel executor hand results straight to figure code.

The cache key includes a schema version — bump :data:`CACHE_VERSION` when
simulator semantics change so stale entries are never mixed into figures.
For whole matrices or spec files, prefer
:class:`~repro.harness.executor.ParallelSweepRunner`, which shards the
point list across a backend.
"""

from __future__ import annotations

import datetime
import json
import os
import re
import socket
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..power.energy import EnergyBreakdown, EnergyModel
from ..sim.config import (
    BASELINE,
    CMPConfig,
    PAPER_TOTAL_L2_MB,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
    stable_digest,
)
from ..sim.simulator import simulate
from ..sim.stats import SimResult
from ..workloads.registry import PAPER_BENCHMARKS, get_workload
from .metrics import PointMetrics
from .result_cache import ResultCache
from .spec import ExperimentSpec, SpecError, SweepPoint

#: bump when simulator/workload semantics change (invalidates caches).
#: v9: point-digest cache keys (the spec-API redesign).
CACHE_VERSION = 9

#: default warmup: skips the workloads' init phase (DESIGN.md §5)
DEFAULT_WARMUP = 0.17

#: (SimResult, EnergyBreakdown) of one sweep point
PointResult = Tuple[SimResult, EnergyBreakdown]

#: characters allowed in cache-key prefixes: anything else (``/``, ``:``,
#: ``\\``, ...) is path-hostile on some filesystem
_KEY_UNSAFE = re.compile(r"[^A-Za-z0-9._+-]")


def _breakdown_to_dict(bd: EnergyBreakdown) -> dict:
    return asdict(bd)


def _breakdown_from_dict(d: dict) -> EnergyBreakdown:
    return EnergyBreakdown(**d)


def decode_entry(blob: dict) -> PointResult:
    """Decode one cache entry; raises on schema mismatch."""
    return (
        SimResult.from_dict(blob["result"]),
        _breakdown_from_dict(blob["energy"]),
    )


def encode_entry(res: SimResult, energy: EnergyBreakdown) -> dict:
    """Inverse of :func:`decode_entry` (the on-disk entry format)."""
    return {"result": res.to_dict(), "energy": _breakdown_to_dict(energy)}


class SweepRunner:
    """Simulates typed sweep points with in-process and on-disk caching."""

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
        trace_root: Optional[str] = None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.n_cores = n_cores
        self.warmup = warmup_fraction
        self.cache_dir = cache_dir
        #: directory relative ``trace:`` workload paths resolve against
        #: (the spec file's directory when running a spec file).  Not
        #: part of cache keys — points keep their relative names, so
        #: digests stay host-portable.
        self.trace_root = trace_root
        self.cache = ResultCache(cache_dir, CACHE_VERSION) if cache_dir else None
        self.verbose = verbose
        #: provenance identity: which execution path produced entries
        #: (backends overwrite this on their worker runners)
        self.backend_label = "serial"
        self.worker_id = f"{socket.gethostname()}-{os.getpid()}"
        self._workloads: Dict[tuple, object] = {}
        self._memo: Dict[str, PointResult] = {}
        #: memoized technique table (``point_key`` sits on the cache hot
        #: path; rebuilding 8 TechniqueConfigs per lookup was measurable —
        #: see ``benchmarks/bench_sweep_parallel.py``)
        self._tech_configs: Optional[Dict[str, TechniqueConfig]] = None

    # ------------------------------------------------------------------
    def runner_params(self, **overrides) -> dict:
        """JSON-safe constructor kwargs that rebuild an equivalent runner.

        Backends ship these to their workers (over a socket, or inside a
        batch task file) so every worker simulates with exactly the
        coordinator's scale/seed/warmup — the precondition for
        byte-identical results.  ``cache_dir`` is included only when
        passed as an override: each backend decides where (and whether)
        its workers persist entries.
        """
        params = dict(
            scale=self.scale,
            seed=self.seed,
            n_cores=self.n_cores,
            warmup_fraction=self.warmup,
        )
        if self.trace_root is not None:
            # absolute, so workers resolve trace files regardless of cwd
            params["trace_root"] = os.path.abspath(self.trace_root)
        params.update(overrides)
        return params

    # ------------------------------------------------------------------
    # Point construction / coercion
    # ------------------------------------------------------------------
    def technique_configs(self) -> Dict[str, TechniqueConfig]:
        """Baseline + the paper's seven technique configurations.

        Memoized per runner: the table is pure in ``self.scale``, and the
        cache-lookup hot path resolves labels through it.
        """
        if self._tech_configs is None:
            out = {BASELINE: TechniqueConfig(name=BASELINE)}
            out.update(paper_techniques(self.scale))
            self._tech_configs = out
        return self._tech_configs

    def technique_order(self) -> List[str]:
        """Figure ordering: baseline first, then the paper's seven."""
        return [BASELINE, *paper_technique_order()]

    def point(self, workload: str, total_mb: int, tech_label: str) -> SweepPoint:
        """Typed :class:`SweepPoint` for paper-matrix coordinates.

        ``tech_label`` is resolved through :meth:`technique_configs`
        (this runner's scaled technique table); the returned point
        inherits the runner context, so its cache key matches any other
        runner configured with the same scale/seed/cores/warmup.
        """
        techs = self.technique_configs()
        if tech_label not in techs:
            raise SpecError(
                f"unknown technique {tech_label!r}; one of: "
                f"{', '.join(self.technique_order())}"
            )
        return SweepPoint(
            workload=workload,
            total_mb=int(total_mb),
            technique=techs[tech_label],
            tech_label=tech_label,
        )

    def points_for(
        self,
        benchmarks: Iterable[str],
        sizes: Iterable[int],
        techniques: Iterable[str],
    ) -> List[SweepPoint]:
        """Grid of points in canonical sweep order (sizes, workloads, techs)."""
        techniques = list(techniques)
        return [
            self.point(wl, mb, tech)
            for mb in sizes
            for wl in benchmarks
            for tech in techniques
        ]

    def expand_spec(self, spec: ExperimentSpec) -> List[SweepPoint]:
        """Expand a spec with this runner's scale (label resolution)."""
        return spec.expand(scale=self.scale)

    # ------------------------------------------------------------------
    # Context resolution and cache keys
    # ------------------------------------------------------------------
    def context_for(self, point: SweepPoint) -> Dict[str, Union[int, float]]:
        """Effective execution context: point overrides, else runner values."""
        return {
            "n_cores": point.n_cores if point.n_cores is not None else self.n_cores,
            "scale": point.scale if point.scale is not None else self.scale,
            "seed": point.seed if point.seed is not None else self.seed,
            "warmup": point.warmup if point.warmup is not None else self.warmup,
        }

    def config_for(self, point: SweepPoint) -> CMPConfig:
        """System config for one sweep point (honoring its overrides)."""
        ctx = self.context_for(point)
        return (
            CMPConfig(n_cores=int(ctx["n_cores"]), seed=int(ctx["seed"]))
            .with_total_l2_mb(point.total_mb)
            .with_technique(point.technique)
        )

    def point_key(self, p: SweepPoint) -> str:
        """Cache key of one point: readable prefix + stable digest.

        The digest covers the point's canonical form *resolved against
        the effective context* (overrides, else runner defaults), plus
        the full ``CMPConfig.key()`` — so a point without overrides and
        the same point with overrides equal to the runner's defaults
        share one cache entry, while any semantic difference (decay
        cycles, core count, warmup, geometry) separates them.

        For ``trace:`` workloads (including trace components of mixes)
        the payload also folds in each trace file's **content** sha256,
        so re-capturing or overwriting a trace at the same path can
        never serve stale cached results.  Content hashes (not resolved
        paths) go into the digest, keeping keys host-portable.
        """
        ctx = self.context_for(p)
        payload = {
            "workload": p.workload,
            "total_mb": p.total_mb,
            "tech_label": p.tech_label,
            "technique": p.technique.to_dict(),
            "config": self.config_for(p).key(),
            **ctx,
        }
        if "trace:" in p.workload:
            payload["traces"] = self._trace_digests(p.workload)
        digest = stable_digest(json.dumps(payload, sort_keys=True))
        # the digest is the identity; the prefix is only readable and
        # must stay a single path component safe on every filesystem
        # (trace: workload names carry ':' and filesystem paths)
        prefix = f"{p.workload}-{p.tech_label}-{p.total_mb}MB"
        return f"{_KEY_UNSAFE.sub('_', prefix)}-{digest[:20]}"

    def _trace_digests(self, workload: str) -> Dict[str, Optional[str]]:
        """Content sha256 per ``trace:`` component of ``workload``.

        Unreadable components map to ``None`` — key computation must not
        raise (lookups may precede the run that reports the real error),
        and a missing file can never alias a readable one's key.
        """
        from ..traces.workload import trace_components, trace_digest, trace_path

        digests: Dict[str, Optional[str]] = {}
        for component in trace_components(workload):
            try:
                digests[component] = trace_digest(
                    trace_path(component, self.trace_root)
                )
            except (OSError, ValueError):
                digests[component] = None
        return digests

    def _workload(self, name: str, ctx: Dict[str, Union[int, float]]):
        key = (name, int(ctx["n_cores"]), float(ctx["scale"]), int(ctx["seed"]))
        if key not in self._workloads:
            self._workloads[key] = get_workload(
                name,
                n_cores=key[1],
                scale=key[2],
                seed=key[3],
                trace_root=self.trace_root,
            )
        return self._workloads[key]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def lookup(self, point: SweepPoint) -> Optional[PointResult]:
        """Memo/disk lookup of one point; ``None`` means "must simulate".

        Corrupt or schema-stale disk entries are invalidated here, so the
        caller's resimulation overwrites them with a good blob.
        """
        key = self.point_key(point)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if self.cache is None:
            return None
        blob = self.cache.get(key)
        if blob is None:
            return None
        try:
            pair = decode_entry(blob)
        except (KeyError, TypeError, ValueError):
            self.cache.invalidate(key)
            return None
        self._memo[key] = pair
        return pair

    def partition_cached(
        self, points: Iterable[SweepPoint]
    ) -> Tuple[List[SweepPoint], List[SweepPoint]]:
        """Split a point list into ``(cached, missing)`` by lookup.

        The resume seam: ``repro-cmp run --resume`` partitions the
        planned campaign first, reports how much of it is already
        settled in the cache, and hands only ``missing`` onward.  A
        point counts as cached only if its entry actually decodes —
        :meth:`lookup` invalidates corrupt/stale blobs — so resuming
        over a damaged cache re-simulates exactly the damaged points.
        """
        cached: List[SweepPoint] = []
        missing: List[SweepPoint] = []
        for point in points:
            if self.lookup(point) is not None:
                cached.append(point)
            else:
                missing.append(point)
        return cached, missing

    def provenance(self, **overrides: str) -> Dict[str, str]:
        """Provenance record for a result this process just produced.

        Worker id, host, backend label and a UTC timestamp — stored in
        a cache *sidecar* (never the result blob, which must stay
        byte-identical), and surfaced per entry by ``repro-cmp cache
        manifest``.  ``overrides`` patch individual fields (the socket
        coordinator records the remote worker's name, not its own).
        """
        now = datetime.datetime.now(datetime.timezone.utc)
        info = {
            "worker": self.worker_id,
            "host": socket.gethostname(),
            "backend": self.backend_label,
            "installed_at": now.isoformat(timespec="seconds"),
        }
        info.update(overrides)
        return info

    def point_provenance(self, point: SweepPoint, **overrides: str) -> Dict:
        """:meth:`provenance` plus the capture identity of trace points.

        For ``trace:`` workloads (including trace components of mixes)
        the record gains a ``traces`` table mapping each component to
        its resolved file, size, and sha256 — so a served
        ``/v1/provenance/<digest>`` answer identifies which capture
        produced the result.
        """
        info: Dict = self.provenance(**overrides)
        from ..traces.workload import trace_provenance

        refs = trace_provenance(point.workload, self.trace_root)
        if refs:
            info["traces"] = refs
        return info

    def install(
        self,
        point: SweepPoint,
        res: SimResult,
        energy: EnergyBreakdown,
        write_cache: bool = True,
        provenance: Optional[Dict[str, str]] = None,
    ) -> None:
        """Publish one point's results into the memo (and the disk cache).

        The parallel executor calls this with results received from
        workers; ``write_cache=False`` skips the disk write when the
        worker already persisted the entry itself.  ``provenance``
        (when given, and a cache is configured) is recorded as the
        entry's sidecar — pass it for freshly *simulated* results, not
        for cache/memo republications.
        """
        key = self.point_key(point)
        self._memo[key] = (res, energy)
        if write_cache and self.cache is not None:
            self.cache.put(key, encode_entry(res, energy))
        if provenance is not None and self.cache is not None:
            self.cache.put_provenance(key, provenance)

    def run_point(self, p: SweepPoint) -> PointResult:
        """Simulate (or load) one point; returns (result, energy)."""
        hit = self.lookup(p)
        if hit is not None:
            return hit
        ctx = self.context_for(p)
        if self.verbose:
            print(
                f"[sweep] simulating {p.describe()} (scale={ctx['scale']})",
                flush=True,
            )
        cfg = self.config_for(p)
        res = simulate(
            cfg,
            self._workload(p.workload, ctx),
            warmup_fraction=float(ctx["warmup"]),
        )
        energy = EnergyModel(cfg).evaluate(res)
        self.install(p, res, energy, provenance=self.point_provenance(p))
        return res, energy

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics_for(self, p: SweepPoint) -> PointMetrics:
        """Metrics of one point relative to its baseline twin."""
        base_res, base_e = self.run_point(p.baseline_twin())
        res, e = self.run_point(p)
        return PointMetrics.for_point(p, base_res, base_e, res, e)

    def run_spec(
        self, spec: Union[ExperimentSpec, Iterable[SweepPoint]]
    ) -> List[PointMetrics]:
        """Metrics for every point a spec (or point list) describes.

        This is the seam figure code selects from: one flat, ordered
        metric list per scenario, each point paired against its baseline
        twin (simulated on demand when the spec does not list it).
        """
        points = (
            self.expand_spec(spec) if isinstance(spec, ExperimentSpec) else spec
        )
        return [self.metrics_for(p) for p in points]

    def sweep(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> List[PointMetrics]:
        """A (benchmarks × sizes × techniques) grid as a flat metric list."""
        techniques = list(techniques or paper_technique_order())
        return self.run_spec(self.points_for(benchmarks, sizes, techniques))

    def averaged(
        self, points: List[PointMetrics], attr: str
    ) -> Dict[Tuple[int, str], float]:
        """Average ``attr`` across benchmarks, keyed by (size, technique)."""
        sums: Dict[Tuple[int, str], List[float]] = {}
        for p in points:
            sums.setdefault((p.total_mb, p.technique), []).append(getattr(p, attr))
        return {k: sum(v) / len(v) for k, v in sums.items()}
