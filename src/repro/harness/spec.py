"""Declarative experiment specs: typed sweep points, serializable scenarios.

This module is the experiment-description layer of the harness.  Instead
of passing ``(workload, total_mb, technique_label)`` string triples
around — which hardwires the paper's 6×4×8 matrix — an experiment is:

* a :class:`SweepPoint`: one frozen, hashable simulation point carrying
  the workload name, the total L2 capacity, a **full**
  :class:`~repro.sim.config.TechniqueConfig`, and optional runner-context
  overrides (``n_cores``/``scale``/``seed``/``warmup``); or
* an :class:`ExperimentSpec`: a named scenario that declares axes
  (workloads × sizes × techniques), constraints (``skip`` filters), and
  explicit off-grid points, and expands to an ordered point list.

Both serialize losslessly to JSON and TOML (:func:`load_spec` /
:func:`save_spec`, ``repro-cmp spec load|expand|validate``), so a
scenario is a *file*: authored once, shipped verbatim to socket/batch
workers, and replayed bit-identically anywhere.  Identity is digest
based — :meth:`SweepPoint.digest` hashes the canonical JSON form with
:func:`~repro.sim.config.stable_digest`, so cache keys agree across
processes, hosts, and ``PYTHONHASHSEED`` values.

The paper's own 192-point matrix ships as ``specs/paper_matrix.toml``
(programmatically: :func:`paper_matrix_spec`); any new scenario — more
cores, off-grid decay times, different counter hardware — is another
spec file, not another Python module.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..sim.config import (
    BASELINE,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
    stable_digest,
)

#: schema marker of serialized specs; bump on incompatible layout changes
SPEC_FORMAT = 1

#: runner-context keys a spec (or a point) may override
CONTEXT_KEYS = ("n_cores", "scale", "seed", "warmup")

#: keys a ``skip`` constraint may match on
SKIP_KEYS = ("workload", "size_mb", "technique")

#: keys an ``[ensemble]`` table may set (see ``repro.scenarios.ensemble``)
ENSEMBLE_KEYS = ("replicas", "base_seed", "seed_stride")


class SpecError(ValueError):
    """An experiment spec (or sweep point) failed validation."""


def _require(cond: bool, message: str) -> None:
    """Raise :class:`SpecError` with ``message`` unless ``cond`` holds."""
    if not cond:
        raise SpecError(message)


# ---------------------------------------------------------------------------
# SweepPoint
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified simulation point of a sweep.

    ``technique`` is the resolved hardware configuration (actual decay
    cycles, counter mode); ``tech_label`` is the presentation name used
    by figures and cache-key prefixes — for the paper's techniques it
    keeps the *nominal* decay time (``decay512K``) even when the cycles
    are scaled.  The four context fields default to ``None``, meaning
    "inherit from the executing runner"; a point that pins them runs
    with its own core count / scale / seed / warmup regardless of the
    runner's defaults.
    """

    workload: str
    total_mb: int
    technique: TechniqueConfig = field(default_factory=TechniqueConfig)
    tech_label: Optional[str] = None
    n_cores: Optional[int] = None
    scale: Optional[float] = None
    seed: Optional[int] = None
    warmup: Optional[float] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.workload, str) and bool(self.workload),
            f"workload must be a non-empty string, got {self.workload!r}",
        )
        _require(
            isinstance(self.total_mb, int) and self.total_mb >= 1,
            f"total_mb must be a positive integer, got {self.total_mb!r}",
        )
        _require(
            isinstance(self.technique, TechniqueConfig),
            f"technique must be a TechniqueConfig, got {self.technique!r}",
        )
        if self.tech_label is None:
            object.__setattr__(self, "tech_label", self.technique.label())
        if self.n_cores is not None:
            _require(int(self.n_cores) >= 1, "n_cores override must be >= 1")
        if self.scale is not None:
            _require(float(self.scale) > 0, "scale override must be positive")
        if self.warmup is not None:
            _require(
                0.0 <= float(self.warmup) < 1.0,
                "warmup override must be in [0, 1)",
            )

    # -- identity ---------------------------------------------------------
    @property
    def triple(self) -> Tuple[str, int, str]:
        """Legacy ``(workload, total_mb, tech_label)`` view of the point."""
        return (self.workload, self.total_mb, self.tech_label)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``water_ns 4MB decay64K``."""
        return f"{self.workload} {self.total_mb}MB {self.tech_label}"

    def baseline_twin(self) -> "SweepPoint":
        """The unoptimized point every relative metric pairs against.

        Same workload, capacity, and context overrides; technique
        replaced by the always-on baseline.
        """
        if self.tech_label == BASELINE and self.technique.name == BASELINE:
            return self
        return replace(
            self,
            technique=TechniqueConfig(name=BASELINE),
            tech_label=BASELINE,
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical dict; unset context overrides are omitted."""
        out: Dict[str, Any] = {
            "workload": self.workload,
            "total_mb": self.total_mb,
            "tech_label": self.tech_label,
            "technique": self.technique.to_dict(),
        }
        for key in CONTEXT_KEYS:
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output (validating)."""
        _require(isinstance(data, Mapping), f"point must be a dict, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        _require(
            not unknown, f"unknown point fields: {', '.join(sorted(unknown))}"
        )
        for key in ("workload", "total_mb", "technique"):
            _require(key in data, f"point is missing required field {key!r}")
        try:
            technique = TechniqueConfig.from_dict(data["technique"])
        except ValueError as exc:
            raise SpecError(f"bad technique in point: {exc}") from exc
        kwargs: Dict[str, Any] = {}
        for key in CONTEXT_KEYS:
            if data.get(key) is not None:
                kwargs[key] = data[key]
        return cls(
            workload=str(data["workload"]),
            total_mb=int(data["total_mb"]),
            technique=technique,
            tech_label=(
                str(data["tech_label"]) if data.get("tech_label") else None
            ),
            **kwargs,
        )

    def digest(self) -> str:
        """Process-independent identity digest of the point.

        Hashes the canonical JSON form with
        :func:`~repro.sim.config.stable_digest`, so the digest survives
        serialization, socket/batch transport, and differing
        ``PYTHONHASHSEED`` values — the property the distributed cache
        keys rely on.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return stable_digest(canonical)


# ---------------------------------------------------------------------------
# Technique-label resolution
# ---------------------------------------------------------------------------
def resolve_technique(
    label: str,
    scale: float = 1.0,
    custom: Optional[Mapping[str, TechniqueConfig]] = None,
) -> TechniqueConfig:
    """Resolve a technique axis label to a full configuration.

    Resolution order: the spec's own ``[techniques.<label>]`` tables
    (used verbatim — their ``decay_cycles`` are literal, never scaled),
    then ``baseline``, then the paper's seven labels (whose nominal
    decay times are multiplied by ``scale``, matching the runner's
    time-dilation convention).
    """
    if custom and label in custom:
        return custom[label]
    if label == BASELINE:
        return TechniqueConfig(name=BASELINE)
    table = paper_techniques(scale)
    if label in table:
        return table[label]
    known = [BASELINE, *paper_technique_order()]
    if custom:
        known = [*custom, *known]
    raise SpecError(
        f"unknown technique label {label!r}; one of: {', '.join(known)}"
    )


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------
@dataclass
class ExperimentSpec:
    """A named, serializable scenario: axes, constraints, extra points.

    The grid axes expand in the harness's canonical sweep order (sizes
    outermost, then workloads, then techniques); ``skip`` filters drop
    grid points matching every key they name; ``points`` appends
    explicit off-grid points after the grid.  ``run`` carries the
    scenario's *requested* runner context (scale/seed/n_cores/warmup) —
    applied when the spec is executed through the CLI, overridable by
    explicit flags, and deliberately **not** baked into the expanded
    points, so one spec file can be replayed at any fidelity.

    ``ensemble`` declares the scenario's *requested* replication —
    ``replicas``/``base_seed``/``seed_stride`` — consumed by the
    ensemble engine (:mod:`repro.scenarios.ensemble`) and the
    ``--replicas`` CLI flag; like ``run`` it never changes what
    :meth:`expand` returns, so plain single-run consumers are
    unaffected by a spec that also describes an ensemble.
    """

    name: str
    workloads: Tuple[str, ...] = ()
    sizes_mb: Tuple[int, ...] = ()
    techniques: Tuple[str, ...] = ()
    description: str = ""
    custom_techniques: Dict[str, TechniqueConfig] = field(default_factory=dict)
    run: Dict[str, Any] = field(default_factory=dict)
    skip: Tuple[Dict[str, Any], ...] = ()
    points: Tuple[Dict[str, Any], ...] = ()
    ensemble: Dict[str, Any] = field(default_factory=dict)
    #: directory the spec was loaded from (set by :func:`load_spec`);
    #: anchors relative ``trace:`` paths so shipped specs are portable.
    #: Never serialized and excluded from equality — it is *where* the
    #: file lives, not part of what the scenario describes.
    base_dir: Optional[str] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.workloads = tuple(self.workloads)
        self.sizes_mb = tuple(self.sizes_mb)
        self.techniques = tuple(self.techniques)
        self.skip = tuple(dict(s) for s in self.skip)
        self.points = tuple(dict(p) for p in self.points)
        self.ensemble = dict(self.ensemble)
        self.validate()

    # -- validation ---------------------------------------------------------
    def validate(self, strict: bool = False) -> None:
        """Check internal consistency; raises :class:`SpecError`.

        ``strict`` additionally verifies that every workload exists in
        the registry and every grid/point technique label resolves —
        what ``repro-cmp spec validate`` runs before a spec is shipped.
        """
        _require(
            isinstance(self.name, str) and bool(self.name),
            "spec needs a non-empty name",
        )
        has_grid = bool(self.workloads or self.sizes_mb or self.techniques)
        if has_grid:
            _require(
                bool(self.workloads and self.sizes_mb and self.techniques),
                "a grid spec needs all three axes (workloads, sizes_mb, "
                "techniques); drop all three for a pure point list",
            )
        _require(
            has_grid or bool(self.points),
            "spec declares no grid axes and no explicit points",
        )
        for wl in self.workloads:
            _require(
                isinstance(wl, str) and bool(wl),
                f"workload axis entries must be names, got {wl!r}",
            )
        for mb in self.sizes_mb:
            _require(
                isinstance(mb, int) and not isinstance(mb, bool) and mb >= 1,
                f"sizes_mb entries must be positive integers, got {mb!r}",
            )
        for label in self.techniques:
            _require(
                isinstance(label, str) and bool(label),
                f"technique axis entries must be labels, got {label!r}",
            )
        for label, cfg in self.custom_techniques.items():
            _require(
                isinstance(cfg, TechniqueConfig),
                f"custom technique {label!r} must be a TechniqueConfig",
            )
        unknown = set(self.run) - set(CONTEXT_KEYS)
        _require(
            not unknown,
            f"unknown [run] keys: {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(CONTEXT_KEYS)})",
        )
        self._validate_ensemble()
        for rule in self.skip:
            _require(
                isinstance(rule, dict) and bool(rule),
                f"skip rules must be non-empty tables, got {rule!r}",
            )
            bad = set(rule) - set(SKIP_KEYS)
            _require(
                not bad,
                f"unknown skip keys: {', '.join(sorted(bad))} "
                f"(allowed: {', '.join(SKIP_KEYS)})",
            )
        for entry in self.points:
            _require(
                isinstance(entry, dict),
                f"points entries must be tables, got {entry!r}",
            )
            for key in ("workload", "size_mb", "technique"):
                _require(
                    key in entry,
                    f"explicit point {entry!r} is missing {key!r}",
                )
            bad = set(entry) - {"workload", "size_mb", "technique", *CONTEXT_KEYS}
            _require(
                not bad,
                f"unknown point keys: {', '.join(sorted(bad))}",
            )
            self._validate_point_values(entry)
        if strict:
            from ..workloads.registry import check_workload

            for wl in self._all_workloads():
                try:
                    # base_dir (the spec file's directory) anchors the
                    # relative paths of trace: workloads, so a shipped
                    # spec validates wherever it is checked out
                    check_workload(wl, trace_root=self.base_dir)
                except ValueError as exc:
                    raise SpecError(str(exc)) from None
            for label in self._all_technique_labels():
                resolve_technique(label, 1.0, self.custom_techniques)

    def _validate_ensemble(self) -> None:
        """Check the ``[ensemble]`` table (shape only, like ``[run]``)."""
        unknown = set(self.ensemble) - set(ENSEMBLE_KEYS)
        _require(
            not unknown,
            f"unknown [ensemble] keys: {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(ENSEMBLE_KEYS)})",
        )
        if "replicas" in self.ensemble:
            v = self.ensemble["replicas"]
            _require(
                isinstance(v, int) and not isinstance(v, bool) and v >= 1,
                f"[ensemble] replicas must be a positive integer, got {v!r}",
            )
        for key in ("base_seed", "seed_stride"):
            if key in self.ensemble:
                v = self.ensemble[key]
                _require(
                    isinstance(v, int) and not isinstance(v, bool),
                    f"[ensemble] {key} must be an integer, got {v!r}",
                )
        if "seed_stride" in self.ensemble:
            _require(
                self.ensemble["seed_stride"] != 0,
                "[ensemble] seed_stride must be non-zero (replicas would "
                "collapse onto one seed)",
            )

    @staticmethod
    def _validate_point_values(entry: Mapping[str, Any]) -> None:
        """Value checks for one explicit point (validate-time, not expand)."""
        _require(
            isinstance(entry["workload"], str) and bool(entry["workload"]),
            f"point workload must be a name, got {entry['workload']!r}",
        )
        size = entry["size_mb"]
        _require(
            isinstance(size, int) and not isinstance(size, bool) and size >= 1,
            f"point size_mb must be a positive integer, got {size!r}",
        )
        _require(
            isinstance(entry["technique"], str) and bool(entry["technique"]),
            f"point technique must be a label, got {entry['technique']!r}",
        )
        numeric = (int, float)
        if "n_cores" in entry:
            v = entry["n_cores"]
            _require(
                isinstance(v, int) and not isinstance(v, bool) and v >= 1,
                f"point n_cores must be a positive integer, got {v!r}",
            )
        if "scale" in entry:
            v = entry["scale"]
            _require(
                isinstance(v, numeric) and not isinstance(v, bool) and v > 0,
                f"point scale must be positive, got {v!r}",
            )
        if "seed" in entry:
            v = entry["seed"]
            _require(
                isinstance(v, int) and not isinstance(v, bool),
                f"point seed must be an integer, got {v!r}",
            )
        if "warmup" in entry:
            v = entry["warmup"]
            _require(
                isinstance(v, numeric)
                and not isinstance(v, bool)
                and 0.0 <= v < 1.0,
                f"point warmup must be in [0, 1), got {v!r}",
            )

    def _all_workloads(self) -> List[str]:
        return [*self.workloads, *(str(p["workload"]) for p in self.points)]

    def _all_technique_labels(self) -> List[str]:
        return [*self.techniques, *(str(p["technique"]) for p in self.points)]

    # -- execution context ----------------------------------------------------
    def context(self, **overrides: Any) -> Dict[str, Any]:
        """The spec's requested runner context, merged with overrides.

        Overrides whose value is ``None`` (an unset CLI flag) defer to
        the spec's ``[run]`` table; everything still unset is left out,
        so the runner's own defaults apply last.
        """
        ctx = dict(self.run)
        for key, value in overrides.items():
            _require(key in CONTEXT_KEYS, f"unknown context key {key!r}")
            if value is not None:
                ctx[key] = value
        return ctx

    # -- expansion ------------------------------------------------------------
    def _skipped(self, workload: str, size_mb: int, label: str) -> bool:
        for rule in self.skip:
            if "workload" in rule and rule["workload"] != workload:
                continue
            if "size_mb" in rule and int(rule["size_mb"]) != size_mb:
                continue
            if "technique" in rule and rule["technique"] != label:
                continue
            return True
        return False

    def expand(self, scale: float = 1.0) -> List[SweepPoint]:
        """The ordered point list this scenario describes.

        ``scale`` resolves the paper's nominal technique labels to
        scaled decay cycles (pass the executing runner's scale; the
        runner does this via ``expand_spec``).  Grid order is the
        harness's canonical sweep order — sizes, then workloads, then
        techniques — followed by the explicit ``points`` in file order.
        A point that pins its own ``scale`` resolves its technique with
        that value instead.
        """
        out: List[SweepPoint] = []
        for mb in self.sizes_mb:
            for wl in self.workloads:
                for label in self.techniques:
                    if self._skipped(wl, mb, label):
                        continue
                    out.append(
                        SweepPoint(
                            workload=wl,
                            total_mb=mb,
                            technique=resolve_technique(
                                label, scale, self.custom_techniques
                            ),
                            tech_label=label,
                        )
                    )
        for entry in self.points:
            label = str(entry["technique"])
            overrides = {
                key: entry[key] for key in CONTEXT_KEYS if key in entry
            }
            point_scale = float(overrides.get("scale", scale))
            out.append(
                SweepPoint(
                    workload=str(entry["workload"]),
                    total_mb=int(entry["size_mb"]),
                    technique=resolve_technique(
                        label, point_scale, self.custom_techniques
                    ),
                    tech_label=label,
                    **overrides,
                )
            )
        return out

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical dict (the on-disk schema, format 1)."""
        out: Dict[str, Any] = {
            "format": SPEC_FORMAT,
            "name": self.name,
        }
        if self.description:
            out["description"] = self.description
        if self.workloads or self.sizes_mb or self.techniques:
            out["axes"] = {
                "workloads": list(self.workloads),
                "sizes_mb": list(self.sizes_mb),
                "techniques": list(self.techniques),
            }
        if self.custom_techniques:
            out["techniques"] = {
                label: cfg.to_dict()
                for label, cfg in self.custom_techniques.items()
            }
        if self.run:
            out["run"] = dict(self.run)
        if self.skip:
            out["skip"] = [dict(rule) for rule in self.skip]
        if self.points:
            out["points"] = [dict(entry) for entry in self.points]
        if self.ensemble:
            out["ensemble"] = dict(self.ensemble)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (validating)."""
        _require(isinstance(data, Mapping), f"spec must be a dict, got {data!r}")
        fmt = data.get("format", SPEC_FORMAT)
        _require(
            fmt == SPEC_FORMAT,
            f"unsupported spec format {fmt!r} (this build reads "
            f"format {SPEC_FORMAT})",
        )
        known = {
            "format", "name", "description", "axes", "techniques", "run",
            "skip", "points", "ensemble",
        }
        unknown = set(data) - known
        _require(
            not unknown,
            f"unknown spec sections: {', '.join(sorted(unknown))}",
        )
        axes = data.get("axes", {})
        _require(isinstance(axes, Mapping), "[axes] must be a table")
        bad_axes = set(axes) - {"workloads", "sizes_mb", "techniques"}
        _require(
            not bad_axes,
            f"unknown [axes] keys: {', '.join(sorted(bad_axes))}",
        )
        custom_raw = data.get("techniques", {})
        _require(isinstance(custom_raw, Mapping), "[techniques] must be a table")
        _require(
            isinstance(data.get("ensemble", {}), Mapping),
            "[ensemble] must be a table",
        )
        custom: Dict[str, TechniqueConfig] = {}
        for label, table in custom_raw.items():
            try:
                custom[label] = TechniqueConfig.from_dict(table)
            except ValueError as exc:
                raise SpecError(
                    f"bad technique table [techniques.{label}]: {exc}"
                ) from exc
        return cls(
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            workloads=tuple(axes.get("workloads", ())),
            sizes_mb=tuple(axes.get("sizes_mb", ())),
            techniques=tuple(axes.get("techniques", ())),
            custom_techniques=custom,
            run=dict(data.get("run", {})),
            skip=tuple(data.get("skip", ())),
            points=tuple(data.get("points", ())),
            ensemble=dict(data.get("ensemble", {})),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON spec document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON spec: {exc}") from exc
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """Canonical TOML text (the preferred on-disk format)."""
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        """Parse a TOML spec document."""
        return cls.from_dict(loads_toml(text))


# ---------------------------------------------------------------------------
# Spec construction helpers
# ---------------------------------------------------------------------------
def grid_spec(
    name: str,
    workloads: Iterable[str],
    sizes_mb: Iterable[int],
    techniques: Iterable[str],
    description: str = "",
    **kwargs: Any,
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` for a plain (workload×size×technique) grid."""
    return ExperimentSpec(
        name=name,
        description=description,
        workloads=tuple(workloads),
        sizes_mb=tuple(sizes_mb),
        techniques=tuple(techniques),
        **kwargs,
    )


def paper_matrix_spec() -> ExperimentSpec:
    """The paper's full figure matrix as a spec (6 × 4 × 8 = 192 points).

    This is the programmatic twin of the shipped
    ``specs/paper_matrix.toml``; a regression test keeps the two equal.
    """
    from ..sim.config import PAPER_TOTAL_L2_MB
    from ..workloads.registry import PAPER_BENCHMARKS

    return grid_spec(
        name="paper_matrix",
        description=(
            "Full figure matrix of Monchiero et al., ICPP 2009: 6 "
            "benchmarks x 4 total-L2 capacities x 8 technique configs. "
            "Scale/seed are inherited from the runner so the same spec "
            "replays at any fidelity."
        ),
        workloads=PAPER_BENCHMARKS,
        sizes_mb=PAPER_TOTAL_L2_MB,
        techniques=(BASELINE, *paper_technique_order()),
    )


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------
def load_spec(path: str) -> ExperimentSpec:
    """Load a spec file, dispatching on extension (.toml / .json).

    The loaded spec remembers its directory in ``base_dir`` so relative
    ``trace:`` workload paths resolve against the spec file, wherever
    the process's working directory is.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        spec = ExperimentSpec.from_json(text)
    elif path.endswith(".toml"):
        spec = ExperimentSpec.from_toml(text)
    else:
        raise SpecError(f"{path}: spec files must end in .toml or .json")
    spec.base_dir = os.path.dirname(os.path.abspath(path))
    return spec


def save_spec(spec: ExperimentSpec, path: str) -> str:
    """Write a spec file, dispatching on extension (.toml / .json)."""
    if path.endswith(".json"):
        text = spec.to_json()
    elif path.endswith(".toml"):
        text = spec.to_toml()
    else:
        raise SpecError(f"{path}: spec files must end in .toml or .json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


# ---------------------------------------------------------------------------
# TOML (subset) emitter + reader
# ---------------------------------------------------------------------------
# Spec documents use a small, regular TOML subset: scalar top-level keys,
# one level of tables ([axes], [run], [techniques.<label>]), and arrays
# of tables ([[skip]], [[points]]).  The emitter below produces it; the
# reader prefers the stdlib ``tomllib`` (Python >= 3.11) and falls back
# to a minimal parser of the same subset so 3.10 hosts — and containers
# without tomllib — can still run spec files.

try:  # pragma: no cover - exercised indirectly on every 3.11+ host
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - 3.10 fallback path
    _tomllib = None


def _toml_scalar(value: Any) -> str:
    """Format one scalar/array value as TOML."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text if ("." in text or "e" in text or "n" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings share JSON escaping
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise SpecError(f"cannot serialize {value!r} to TOML")


_BARE_KEY_RE = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    """Quote ``key`` unless it is a bare TOML key.

    Custom-technique labels (e.g. ``decay@16K``) are arbitrary strings;
    emitting them unquoted in ``[techniques.<label>]`` headers produces
    invalid TOML that ``tomllib`` rejects on load.
    """
    if _BARE_KEY_RE.match(key):
        return key
    return json.dumps(key)  # TOML basic strings share JSON escaping


def _toml_table_body(table: Mapping[str, Any]) -> List[str]:
    """``key = value`` lines of one table (scalars and arrays only)."""
    lines = []
    for key, value in table.items():
        if isinstance(value, Mapping):
            raise SpecError(
                f"nested table under {key!r} is deeper than the spec "
                f"TOML subset supports"
            )
        lines.append(f"{_toml_key(key)} = {_toml_scalar(value)}")
    return lines


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialize a spec dict to TOML (subset; see module notes)."""
    chunks: List[str] = []
    scalars = {
        k: v
        for k, v in data.items()
        if not isinstance(v, Mapping)
        and not (isinstance(v, list) and v and isinstance(v[0], Mapping))
    }
    if scalars:
        chunks.append("\n".join(_toml_table_body(scalars)))
    for key, value in data.items():
        if key in scalars:
            continue
        if isinstance(value, Mapping):
            subtables = {
                k: v for k, v in value.items() if isinstance(v, Mapping)
            }
            plain = {k: v for k, v in value.items() if k not in subtables}
            if plain or not subtables:
                chunks.append(
                    "\n".join([f"[{_toml_key(key)}]", *_toml_table_body(plain)])
                )
            for sub, table in subtables.items():
                chunks.append(
                    "\n".join(
                        [
                            f"[{_toml_key(key)}.{_toml_key(sub)}]",
                            *_toml_table_body(table),
                        ]
                    )
                )
        else:  # list of tables
            for entry in value:
                chunks.append(
                    "\n".join([f"[[{_toml_key(key)}]]", *_toml_table_body(entry)])
                )
    return "\n\n".join(chunks) + "\n"


def loads_toml(text: str) -> Dict[str, Any]:
    """Parse TOML text into a dict (stdlib ``tomllib`` when available)."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML spec: {exc}") from exc
    return parse_toml_minimal(text)


def _parse_toml_value(token: str) -> Any:
    """Parse one TOML scalar/array token (fallback parser)."""
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise SpecError(f"unterminated array: {token!r}")
        return [
            _parse_toml_value(item)
            for item in _split_toml_array(token[1:-1])
        ]
    if token.startswith('"'):
        try:
            return json.loads(token)
        except json.JSONDecodeError as exc:
            raise SpecError(f"bad TOML string {token!r}: {exc}") from exc
    if token in ("true", "false"):
        return token == "true"
    try:
        if any(c in token for c in ".eE") and not token.startswith("0x"):
            return float(token)
        return int(token, 0)
    except ValueError as exc:
        raise SpecError(f"cannot parse TOML value {token!r}") from exc


def _split_toml_array(body: str) -> List[str]:
    """Split an array body on top-level commas (respecting strings)."""
    items: List[str] = []
    depth = 0
    in_str = False
    current = ""
    i = 0
    while i < len(body):
        ch = body[i]
        if in_str:
            current += ch
            if ch == "\\":
                current += body[i + 1]
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
            current += ch
        elif ch == "[":
            depth += 1
            current += ch
        elif ch == "]":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            items.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current.strip():
        items.append(current)
    return items


def _bracket_depth(text: str) -> int:
    """Net ``[``/``]`` nesting outside basic strings (for continuations)."""
    depth = 0
    in_str = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_str:
            if ch == "\\":
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        i += 1
    return depth


def _strip_toml_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a basic string."""
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_str:
            if ch == "\\":
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
        elif ch == "#":
            return line[:i]
        i += 1
    return line


def _parse_toml_key(token: str) -> str:
    """One (possibly quoted) key of a header path or assignment."""
    token = token.strip()
    if token.startswith('"'):
        try:
            return json.loads(token)
        except json.JSONDecodeError as exc:
            raise SpecError(f"bad TOML key {token!r}: {exc}") from exc
    return token


def _split_toml_path(path: str) -> List[str]:
    """Split a header path on dots outside quotes (``a."b.c"`` → 2 parts)."""
    parts: List[str] = []
    current = ""
    in_str = False
    i = 0
    while i < len(path):
        ch = path[i]
        if in_str:
            current += ch
            if ch == "\\" and i + 1 < len(path):
                current += path[i + 1]
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
            current += ch
        elif ch == ".":
            parts.append(_parse_toml_key(current))
            current = ""
        else:
            current += ch
        i += 1
    parts.append(_parse_toml_key(current))
    return parts


def parse_toml_minimal(text: str) -> Dict[str, Any]:
    """Fallback TOML reader for the spec subset (no ``tomllib``).

    Supports ``[table]``/``[a.b]`` headers, ``[[array.of.tables]]``,
    ``key = value`` with strings/ints/floats/bools, single- and
    multi-line arrays, and ``#`` comments — exactly what
    :func:`dumps_toml` emits (plus reasonable hand-edits).
    """
    root: Dict[str, Any] = {}
    current: Dict[str, Any] = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_toml_comment(lines[i]).strip()
        i += 1
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise SpecError(f"bad table-array header: {line!r}")
            path = _split_toml_path(line[2:-2].strip())
            parent = root
            for part in path[:-1]:
                parent = parent.setdefault(part, {})
            arr = parent.setdefault(path[-1], [])
            if not isinstance(arr, list):
                raise SpecError(f"{'.'.join(path)} is both table and array")
            current = {}
            arr.append(current)
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise SpecError(f"bad table header: {line!r}")
            path = _split_toml_path(line[1:-1].strip())
            parent = root
            for part in path[:-1]:
                parent = parent.setdefault(part, {})
            table = parent.setdefault(path[-1], {})
            if not isinstance(table, dict):
                raise SpecError(f"{'.'.join(path)} is both scalar and table")
            current = table
            continue
        if "=" not in line:
            raise SpecError(f"expected 'key = value', got {line!r}")
        key, _, value = line.partition("=")
        key = _parse_toml_key(key.strip())
        value = value.strip()
        # multi-line array: keep consuming until brackets balance
        # (counted outside strings — a lone "[" inside a quoted value is
        # data, not an array opener)
        while _bracket_depth(value) > 0:
            if i >= len(lines):
                raise SpecError(f"unterminated array for key {key!r}")
            value += " " + _strip_toml_comment(lines[i]).strip()
            i += 1
        current[key] = _parse_toml_value(value)
    return root
