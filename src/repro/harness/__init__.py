"""Experiment harness: sweep runners, result cache, figure regeneration."""

from .executor import ParallelSweepRunner, resolve_jobs
from .figures import (
    EXPERIMENTS,
    FigureTable,
    fig3a,
    fig3b,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    run_experiment,
    table1,
)
from .metrics import (
    PointMetrics,
    amat_increase,
    bandwidth_increase,
    decay_induced_miss_fraction,
    energy_reduction,
    ipc_loss,
    l2_miss_rate,
    occupancy,
)
from .result_cache import CacheStats, PruneReport, ResultCache
from .runner import CACHE_VERSION, DEFAULT_WARMUP, SweepRunner

__all__ = [
    "ParallelSweepRunner",
    "resolve_jobs",
    "CacheStats",
    "PruneReport",
    "ResultCache",
    "EXPERIMENTS",
    "FigureTable",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "run_experiment",
    "table1",
    "PointMetrics",
    "amat_increase",
    "bandwidth_increase",
    "decay_induced_miss_fraction",
    "energy_reduction",
    "ipc_loss",
    "l2_miss_rate",
    "occupancy",
    "CACHE_VERSION",
    "DEFAULT_WARMUP",
    "SweepRunner",
]
