"""Experiment harness: sweep runner, result cache, figure regeneration."""

from .figures import (
    EXPERIMENTS,
    FigureTable,
    fig3a,
    fig3b,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig6a,
    fig6b,
    run_experiment,
    table1,
)
from .metrics import (
    PointMetrics,
    amat_increase,
    bandwidth_increase,
    decay_induced_miss_fraction,
    energy_reduction,
    ipc_loss,
    l2_miss_rate,
    occupancy,
)
from .runner import CACHE_VERSION, DEFAULT_WARMUP, SweepRunner

__all__ = [
    "EXPERIMENTS",
    "FigureTable",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "run_experiment",
    "table1",
    "PointMetrics",
    "amat_increase",
    "bandwidth_increase",
    "decay_induced_miss_fraction",
    "energy_reduction",
    "ipc_loss",
    "l2_miss_rate",
    "occupancy",
    "CACHE_VERSION",
    "DEFAULT_WARMUP",
    "SweepRunner",
]
