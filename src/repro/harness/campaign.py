"""Campaign observability: what happened to every point of a sweep.

A paper-scale campaign that *survived* failures is only trustworthy if
it can say exactly what it survived.  The distributed backends therefore
account per point — attempts, requeues, the reason for every retry, and
which worker finally produced the result — and publish the whole record
as a :class:`CampaignReport`:

* **JSON** — ``campaign.json``, written atomically next to the cache
  manifest (``<cache>/v<N>/campaign.json``) by
  :meth:`~repro.harness.executor.ParallelSweepRunner.prefetch_points`
  after any backend run, so the report travels with the results it
  describes;
* **table** — :meth:`CampaignReport.render`, printed after a sweep when
  anything eventful happened (a clean run prints one summary line).

The report is observability, never authority: result blobs and their
byte-identity to a serial run are the correctness contract; the report
exists so a 192-point × N-replica campaign that limped through worker
deaths tells you which points were retried, how often, and why.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .result_cache import atomic_write

#: report file name, written next to the cache manifest
REPORT_NAME = "campaign.json"

#: report schema marker
REPORT_FORMAT = 1


@dataclass
class PointRecord:
    """The per-point ledger: attempts, requeues, reasons, outcome."""

    point: str
    digest: str
    status: str = "pending"  # "completed" | "failed" | "pending"
    attempts: int = 0
    requeues: int = 0
    reasons: List[str] = field(default_factory=list)
    worker: Optional[str] = None

    @property
    def eventful(self) -> bool:
        """Whether this point saw anything beyond one clean attempt."""
        return (
            self.status != "completed"
            or self.attempts > 1
            or self.requeues > 0
            or bool(self.reasons)
        )

    def to_dict(self) -> dict:
        """JSON-safe row (inverse of :meth:`from_dict`)."""
        return {
            "point": self.point,
            "digest": self.digest,
            "status": self.status,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "reasons": list(self.reasons),
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PointRecord":
        """Rebuild a row from its dict form."""
        return cls(
            point=str(d["point"]),
            digest=str(d["digest"]),
            status=str(d.get("status", "pending")),
            attempts=int(d.get("attempts", 0)),
            requeues=int(d.get("requeues", 0)),
            reasons=[str(r) for r in d.get("reasons", ())],
            worker=d.get("worker"),
        )


@dataclass
class CampaignReport:
    """One backend run's structured failure/retry report."""

    backend: str
    records: List[PointRecord] = field(default_factory=list)
    #: backend counters (served/requeued/expired/rejected/duplicates/...)
    stats: Dict[str, int] = field(default_factory=dict)

    # -- aggregates -----------------------------------------------------
    @property
    def total(self) -> int:
        """Points the backend was asked to run."""
        return len(self.records)

    @property
    def completed(self) -> int:
        """Points that finished."""
        return sum(1 for r in self.records if r.status == "completed")

    @property
    def failed(self) -> int:
        """Points that exhausted every attempt."""
        return sum(1 for r in self.records if r.status == "failed")

    @property
    def eventful(self) -> bool:
        """Whether any point needed more than one clean attempt."""
        return any(r.eventful for r in self.records)

    def summary(self) -> str:
        """One line: totals plus the backend's counters."""
        counters = ", ".join(
            f"{k}={v}" for k, v in sorted(self.stats.items()) if v
        )
        text = (
            f"[campaign:{self.backend}] {self.completed}/{self.total} "
            f"completed, {self.failed} failed"
        )
        return f"{text} ({counters})" if counters else text

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """The ``campaign.json`` document."""
        return {
            "format": REPORT_FORMAT,
            "backend": self.backend,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "stats": dict(self.stats),
            "points": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignReport":
        """Rebuild a report from a loaded ``campaign.json``."""
        return cls(
            backend=str(d.get("backend", "?")),
            records=[PointRecord.from_dict(r) for r in d.get("points", ())],
            stats={str(k): int(v) for k, v in d.get("stats", {}).items()},
        )

    def write(self, directory: str) -> str:
        """Atomically publish ``campaign.json`` inside ``directory``."""
        return atomic_write(
            os.path.join(directory, REPORT_NAME),
            json.dumps(self.to_dict(), indent=1, sort_keys=True).encode(
                "utf-8"
            ),
        )

    # -- rendering ------------------------------------------------------
    def render(self, eventful_only: bool = False) -> str:
        """Aligned per-point table (optionally only eventful rows)."""
        rows = [
            r for r in self.records if not eventful_only or r.eventful
        ]
        header = ("point", "status", "att", "req", "worker", "last reason")
        cells = [header]
        for r in rows:
            cells.append(
                (
                    r.point,
                    r.status,
                    str(r.attempts),
                    str(r.requeues),
                    r.worker or "-",
                    r.reasons[-1] if r.reasons else "-",
                )
            )
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(header))
        ]
        lines = [self.summary()]
        for i, row in enumerate(cells):
            lines.append(
                "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        if eventful_only and len(rows) < self.total:
            lines.append(f"({self.total - len(rows)} uneventful points hidden)")
        return "\n".join(lines)


def read_report(directory: str) -> Optional[CampaignReport]:
    """Load ``campaign.json`` from a cache version directory, if present."""
    try:
        with open(os.path.join(directory, REPORT_NAME)) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return CampaignReport.from_dict(doc) if isinstance(doc, dict) else None
