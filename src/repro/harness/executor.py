"""Parallel sweep-execution engine.

:class:`ParallelSweepRunner` shards the (workload × size × technique)
simulation matrix across a :mod:`multiprocessing` worker pool.  Design
points:

* **determinism** — every point is keyed by (workload, scale, seed,
  config); each pool worker rebuilds the workload from the same seed, so
  a point's :class:`~repro.sim.stats.SimResult` is byte-identical no
  matter which worker runs it, in what order, or whether it ran serially;
* **baseline-first scheduling** — :meth:`plan` orders the unique baseline
  points ahead of every technique point, so the (baseline, technique)
  pairs that relative metrics need are never blocked behind unrelated
  work and an interrupted sweep leaves the most reusable cache;
* **shared cache** — workers write completed points straight into the
  sharded :class:`~repro.harness.result_cache.ResultCache` (atomic
  ``os.replace`` publication makes concurrent writers safe) *and* stream
  the serialized results back to the parent, so a ``cache_dir=None``
  runner still works and the parent never re-reads what it was just sent;
* **worker reuse** — a pool initializer builds one serial
  :class:`~repro.harness.runner.SweepRunner` per worker process, so
  workload construction is amortized across all points a worker executes.

The executor is deliberately process-local; its task list (:meth:`plan`)
and result installation (:meth:`~repro.harness.runner.SweepRunner.install`)
are the seams where a future distributed backend (work-stealing over
sockets, a batch queue) would plug in.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, List, Optional, Tuple

from ..sim.config import PAPER_TOTAL_L2_MB, paper_technique_order
from ..workloads.registry import PAPER_BENCHMARKS
from .runner import (
    DEFAULT_WARMUP,
    SweepRunner,
    decode_entry,
    encode_entry,
)

#: one matrix point: (workload, total MB, technique label)
PointSpec = Tuple[str, int, str]

#: per-worker serial runner, created once by the pool initializer
_WORKER_RUNNER: Optional[SweepRunner] = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count for a ``--jobs`` value (``None``/``0`` = all cores)."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _init_worker(params: dict) -> None:
    """Pool initializer: build this worker's serial runner."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = SweepRunner(verbose=False, **params)


def _run_point(spec: PointSpec) -> Tuple[PointSpec, dict, dict]:
    """Execute one matrix point in a pool worker.

    Returns the spec with the *serialized* result/energy blobs — exactly
    the cache-entry format — so the parent reconstructs results the same
    way a cache hit would, keeping serial and parallel sweeps
    byte-identical.
    """
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    workload, total_mb, tech_label = spec
    try:
        res, energy = _WORKER_RUNNER.run_point(workload, total_mb, tech_label)
    except Exception as exc:
        raise RuntimeError(
            f"sweep point {workload} {total_mb}MB {tech_label} failed: {exc}"
        ) from exc
    blob = encode_entry(res, energy)
    return spec, blob["result"], blob["energy"]


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that executes matrices on a process pool.

    Drop-in compatible: ``metrics_for``/``run_point`` behave exactly like
    the serial runner (and serve from the shared memo/cache), while
    :meth:`sweep` and :meth:`prefetch` fan uncached points out across
    ``jobs`` workers.  Results are byte-identical to a serial sweep of
    the same matrix and seed.
    """

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(
            scale=scale,
            seed=seed,
            n_cores=n_cores,
            warmup_fraction=warmup_fraction,
            cache_dir=cache_dir,
            verbose=verbose,
        )
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method

    # ------------------------------------------------------------------
    def plan(
        self,
        benchmarks: Iterable[str],
        sizes: Iterable[int],
        techniques: Iterable[str],
    ) -> List[PointSpec]:
        """Deduplicated task list with every baseline point first.

        Relative metrics pair each technique point with its baseline
        twin, so baselines are the highest-fanout results; scheduling
        them first keeps metric computation unblocked however the pool
        interleaves the rest.
        """
        benchmarks = list(benchmarks)
        sizes = list(sizes)
        baselines: List[PointSpec] = []
        rest: List[PointSpec] = []
        seen: set = set()
        for mb in sizes:
            for wl in benchmarks:
                spec = (wl, mb, "baseline")
                if spec not in seen:
                    seen.add(spec)
                    baselines.append(spec)
        for mb in sizes:
            for wl in benchmarks:
                for tech in techniques:
                    spec = (wl, mb, tech)
                    if spec not in seen:
                        seen.add(spec)
                        rest.append(spec)
        return baselines + rest

    # ------------------------------------------------------------------
    def prefetch(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> int:
        """Simulate every uncached point of a matrix on the pool.

        Returns the number of points actually simulated.  After this,
        ``metrics_for``/``sweep`` over the same matrix are pure memo
        lookups.
        """
        techniques = list(techniques or paper_technique_order())
        specs = self.plan(benchmarks, sizes, techniques)
        pending = [
            s for s in specs if self.lookup(*s) is None
        ]
        if not pending:
            return 0
        if self.jobs == 1 or len(pending) == 1:
            for spec in pending:
                self.run_point(*spec)
            return len(pending)
        self._run_pool(pending)
        return len(pending)

    def _run_pool(self, pending: List[PointSpec]) -> None:
        """Fan ``pending`` out across the worker pool."""
        params = dict(
            scale=self.scale,
            seed=self.seed,
            n_cores=self.n_cores,
            warmup_fraction=self.warmup,
            cache_dir=self.cache_dir,
        )
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        n_workers = min(self.jobs, len(pending))
        if self.verbose:
            print(
                f"[sweep] {len(pending)} points on {n_workers} workers "
                f"(scale={self.scale})",
                flush=True,
            )
        with ctx.Pool(
            processes=n_workers,
            initializer=_init_worker,
            initargs=(params,),
        ) as pool:
            done = 0
            for spec, result_d, energy_d in pool.imap_unordered(
                _run_point, pending, chunksize=1
            ):
                res, energy = decode_entry(
                    {"result": result_d, "energy": energy_d}
                )
                # the worker already persisted the entry when caching is on
                self.install(*spec, res, energy, write_cache=self.cache is None)
                done += 1
                if self.verbose:
                    wl, mb, tech = spec
                    print(
                        f"[sweep] {done}/{len(pending)} done: {wl} {mb}MB {tech}",
                        flush=True,
                    )

    # ------------------------------------------------------------------
    def sweep(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> List:
        """Parallel version of :meth:`SweepRunner.sweep`.

        Simulates the matrix on the pool, then assembles metrics in the
        serial runner's deterministic order — the returned list compares
        equal, element by element, to the serial result.
        """
        benchmarks = list(benchmarks)
        sizes = list(sizes)
        techniques = list(techniques or paper_technique_order())
        self.prefetch(benchmarks=benchmarks, sizes=sizes, techniques=techniques)
        return super().sweep(
            benchmarks=benchmarks, sizes=sizes, techniques=techniques
        )
