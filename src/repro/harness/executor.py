"""Parallel sweep-execution engine.

:class:`ParallelSweepRunner` plans a point list — a grid, or an expanded
:class:`~repro.harness.spec.ExperimentSpec` — and hands the uncached
:class:`~repro.harness.spec.SweepPoint` tasks to a pluggable
:class:`~repro.harness.backends.base.SweepBackend` for execution.  Design
points:

* **determinism** — every point is keyed by the digest of its canonical
  serialized form resolved against the effective runner context; each
  worker rebuilds the workload from the same seed, so a point's
  :class:`~repro.sim.stats.SimResult` is byte-identical no matter which
  worker runs it, in what order, or whether it ran serially;
* **baseline-first scheduling** — :meth:`plan_points` orders the unique
  baseline twins ahead of every technique point, so the (baseline,
  technique) pairs that relative metrics need are never blocked behind
  unrelated work and an interrupted sweep leaves the most reusable cache;
* **pluggable execution** — the default backend is the local
  :mod:`multiprocessing` pool
  (:class:`~repro.harness.backends.local.LocalBackend`); ``--backend
  socket`` distributes the same plan to pull-workers over TCP, and
  ``--backend batch`` to task-file workers synced through the cache
  manifest.  All of them install results through
  :meth:`~repro.harness.runner.SweepRunner.install`, the seam that keeps
  every execution strategy byte-identical to the serial runner.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..sim.config import PAPER_TOTAL_L2_MB, paper_technique_order
from ..workloads.registry import PAPER_BENCHMARKS
from .backends import (
    LocalBackend,
    PointSpec,
    SweepBackend,
    make_backend,
    resolve_jobs,
)
from .metrics import PointMetrics
from .runner import DEFAULT_WARMUP, SweepRunner
from .spec import ExperimentSpec, SweepPoint

__all__ = ["ParallelSweepRunner", "PointSpec", "resolve_jobs"]


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that executes point lists through a backend.

    Drop-in compatible: ``metrics_for``/``run_point`` behave exactly like
    the serial runner (and serve from the shared memo/cache), while
    :meth:`run_spec`, :meth:`sweep` and :meth:`prefetch` fan uncached
    points out through the configured backend.  Results are
    byte-identical to a serial sweep of the same points and seed
    whatever the backend.
    """

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        backend: Union[SweepBackend, str, None] = None,
        trace_root: Optional[str] = None,
    ) -> None:
        super().__init__(
            scale=scale,
            seed=seed,
            n_cores=n_cores,
            warmup_fraction=warmup_fraction,
            cache_dir=cache_dir,
            verbose=verbose,
            trace_root=trace_root,
        )
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method
        if backend is None or backend == "local":
            backend = LocalBackend(jobs=self.jobs, start_method=start_method)
        elif isinstance(backend, str):
            # other names get default-configured instances; pass a
            # constructed backend to control spawn counts/ports/queues
            backend = make_backend(backend)
        self.backend = backend
        self.backend_label = getattr(backend, "name", "local")

    # ------------------------------------------------------------------
    def plan_points(self, points: Iterable[SweepPoint]) -> List[SweepPoint]:
        """Deduplicated task list with every baseline twin first.

        Relative metrics pair each point with its baseline twin, so
        baselines are the highest-fanout results; scheduling them first
        keeps metric computation unblocked however the backend
        interleaves the rest.  Deduplication is by cache key, so a point
        with overrides equal to the runner's defaults collapses with its
        override-free twin.
        """
        points = list(points)
        baselines: List[SweepPoint] = []
        rest: List[SweepPoint] = []
        seen: set = set()
        for p in points:
            twin = p.baseline_twin()
            key = self.point_key(twin)
            if key not in seen:
                seen.add(key)
                baselines.append(twin)
        for p in points:
            key = self.point_key(p)
            if key not in seen:
                seen.add(key)
                rest.append(p)
        return baselines + rest

    def plan(
        self,
        benchmarks: Iterable[str],
        sizes: Iterable[int],
        techniques: Iterable[str],
    ) -> List[SweepPoint]:
        """Baseline-first plan of a (benchmarks × sizes × techniques) grid."""
        return self.plan_points(self.points_for(benchmarks, sizes, techniques))

    # ------------------------------------------------------------------
    def prefetch_points(self, points: Iterable[SweepPoint]) -> int:
        """Simulate every uncached point of a list on the backend.

        The plan includes each point's baseline twin.  Returns the
        number of points actually simulated; after this, ``metrics_for``
        over the same points is a pure memo lookup.  Backends that
        account per point (socket, batch) leave a
        :class:`~repro.harness.campaign.CampaignReport` which is
        published as ``campaign.json`` next to the cache manifest —
        also when the backend raised, so a failed campaign still says
        what happened.
        """
        pending = [
            p for p in self.plan_points(points) if self.lookup(p) is None
        ]
        if not pending:
            return 0
        try:
            self.backend.execute(self, pending)
        finally:
            self._publish_campaign_report()
        return len(pending)

    def _publish_campaign_report(self) -> None:
        """Write the backend's per-point ledger beside the manifest."""
        report = getattr(self.backend, "last_report", None)
        if report is None:
            return
        if self.cache is not None:
            report.write(self.cache.version_dir())
        if self.verbose:
            if report.eventful:
                print(report.render(eventful_only=True), flush=True)
            else:
                print(report.summary(), flush=True)

    def prefetch(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> int:
        """Grid convenience wrapper around :meth:`prefetch_points`."""
        techniques = list(techniques or paper_technique_order())
        return self.prefetch_points(
            self.points_for(benchmarks, sizes, techniques)
        )

    # ------------------------------------------------------------------
    def run_spec(
        self, spec: Union[ExperimentSpec, Iterable[SweepPoint]]
    ) -> List[PointMetrics]:
        """Backend-parallel version of :meth:`SweepRunner.run_spec`.

        Simulates the spec's points through the backend, then assembles
        metrics in the serial runner's deterministic order — the
        returned list compares equal, element by element, to the serial
        result.
        """
        points = (
            self.expand_spec(spec) if isinstance(spec, ExperimentSpec) else list(spec)
        )
        self.prefetch_points(points)
        return super().run_spec(points)
