"""Parallel sweep-execution engine.

:class:`ParallelSweepRunner` plans the (workload × size × technique)
simulation matrix and hands the uncached points to a pluggable
:class:`~repro.harness.backends.base.SweepBackend` for execution.  Design
points:

* **determinism** — every point is keyed by (workload, scale, seed,
  config); each worker rebuilds the workload from the same seed, so a
  point's :class:`~repro.sim.stats.SimResult` is byte-identical no matter
  which worker runs it, in what order, or whether it ran serially;
* **baseline-first scheduling** — :meth:`plan` orders the unique baseline
  points ahead of every technique point, so the (baseline, technique)
  pairs that relative metrics need are never blocked behind unrelated
  work and an interrupted sweep leaves the most reusable cache;
* **pluggable execution** — the default backend is the local
  :mod:`multiprocessing` pool
  (:class:`~repro.harness.backends.local.LocalBackend`); ``--backend
  socket`` distributes the same plan to pull-workers over TCP, and
  ``--backend batch`` to task-file workers synced through the cache
  manifest.  All of them install results through
  :meth:`~repro.harness.runner.SweepRunner.install`, the seam that keeps
  every execution strategy byte-identical to the serial runner.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..sim.config import PAPER_TOTAL_L2_MB, paper_technique_order
from ..workloads.registry import PAPER_BENCHMARKS
from .backends import (
    LocalBackend,
    PointSpec,
    SweepBackend,
    make_backend,
    resolve_jobs,
)
from .runner import DEFAULT_WARMUP, SweepRunner

__all__ = ["ParallelSweepRunner", "PointSpec", "resolve_jobs"]


class ParallelSweepRunner(SweepRunner):
    """A :class:`SweepRunner` that executes matrices through a backend.

    Drop-in compatible: ``metrics_for``/``run_point`` behave exactly like
    the serial runner (and serve from the shared memo/cache), while
    :meth:`sweep` and :meth:`prefetch` fan uncached points out through
    the configured backend.  Results are byte-identical to a serial sweep
    of the same matrix and seed whatever the backend.
    """

    def __init__(
        self,
        scale: float = 0.1,
        seed: int = 1,
        n_cores: int = 4,
        warmup_fraction: float = DEFAULT_WARMUP,
        cache_dir: Optional[str] = ".repro_cache",
        verbose: bool = True,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        backend: Union[SweepBackend, str, None] = None,
    ) -> None:
        super().__init__(
            scale=scale,
            seed=seed,
            n_cores=n_cores,
            warmup_fraction=warmup_fraction,
            cache_dir=cache_dir,
            verbose=verbose,
        )
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method
        if backend is None or backend == "local":
            backend = LocalBackend(jobs=self.jobs, start_method=start_method)
        elif isinstance(backend, str):
            # other names get default-configured instances; pass a
            # constructed backend to control spawn counts/ports/queues
            backend = make_backend(backend)
        self.backend = backend

    # ------------------------------------------------------------------
    def plan(
        self,
        benchmarks: Iterable[str],
        sizes: Iterable[int],
        techniques: Iterable[str],
    ) -> List[PointSpec]:
        """Deduplicated task list with every baseline point first.

        Relative metrics pair each technique point with its baseline
        twin, so baselines are the highest-fanout results; scheduling
        them first keeps metric computation unblocked however the
        backend interleaves the rest.
        """
        benchmarks = list(benchmarks)
        sizes = list(sizes)
        baselines: List[PointSpec] = []
        rest: List[PointSpec] = []
        seen: set = set()
        for mb in sizes:
            for wl in benchmarks:
                spec = (wl, mb, "baseline")
                if spec not in seen:
                    seen.add(spec)
                    baselines.append(spec)
        for mb in sizes:
            for wl in benchmarks:
                for tech in techniques:
                    spec = (wl, mb, tech)
                    if spec not in seen:
                        seen.add(spec)
                        rest.append(spec)
        return baselines + rest

    # ------------------------------------------------------------------
    def prefetch(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> int:
        """Simulate every uncached point of a matrix on the backend.

        Returns the number of points actually simulated.  After this,
        ``metrics_for``/``sweep`` over the same matrix are pure memo
        lookups.
        """
        techniques = list(techniques or paper_technique_order())
        specs = self.plan(benchmarks, sizes, techniques)
        pending = [s for s in specs if self.lookup(*s) is None]
        if not pending:
            return 0
        self.backend.execute(self, pending)
        return len(pending)

    # ------------------------------------------------------------------
    def sweep(
        self,
        benchmarks: Iterable[str] = PAPER_BENCHMARKS,
        sizes: Iterable[int] = PAPER_TOTAL_L2_MB,
        techniques: Optional[Iterable[str]] = None,
    ) -> List:
        """Backend-parallel version of :meth:`SweepRunner.sweep`.

        Simulates the matrix through the backend, then assembles metrics
        in the serial runner's deterministic order — the returned list
        compares equal, element by element, to the serial result.
        """
        benchmarks = list(benchmarks)
        sizes = list(sizes)
        techniques = list(techniques or paper_technique_order())
        self.prefetch(benchmarks=benchmarks, sizes=sizes, techniques=techniques)
        return super().sweep(
            benchmarks=benchmarks, sizes=sizes, techniques=techniques
        )
