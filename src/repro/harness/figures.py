"""Figure/table regeneration: prints the same rows/series the paper reports.

One function per experiment id.  Each returns a :class:`FigureTable` — an
ordered rows×cols grid of formatted values — whose ``render()`` is what
the benches print next to the paper's reference numbers (see the
figure-to-module map in ``PAPER.md``).

Figures are spec consumers: each builds a
:class:`~repro.harness.spec.ExperimentSpec` grid for its slice of the
matrix, runs it through the runner (``run_spec``), and *selects* from the
flat metric list — no figure re-enumerates the matrix point by point, so
the same code renders any scenario a spec file describes.  The paper's
own matrix ships as ``specs/paper_matrix.toml``.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..coherence.turnoff import table_rows
from ..sim.config import BASELINE, PAPER_TOTAL_L2_MB, paper_technique_order
from ..workloads.registry import PAPER_BENCHMARKS
from .metrics import PointMetrics
from .query import ResultQuery
from .runner import SweepRunner
from .spec import grid_spec


@dataclass
class FigureTable:
    """A rendered experiment: title + column headers + named rows."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[str] = field(default_factory=list)
    cells: Dict[str, List[str]] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, name: str, values: Sequence[str]) -> None:
        """Append one named row of pre-formatted cells."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {name!r} has {len(values)} cells, expected "
                f"{len(self.columns)}"
            )
        self.rows.append(name)
        self.cells[name] = list(values)

    def to_csv(self) -> str:
        """CSV rendering (header row, then one line per technique row)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow([self.exp_id, *self.columns])
        for r in self.rows:
            writer.writerow([r, *self.cells[r]])
        return buf.getvalue()

    def to_doc(self) -> Dict[str, object]:
        """JSON-safe document of the rendered table (the wire form)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": list(self.rows),
            "cells": {name: list(self.cells[name]) for name in self.rows},
            "notes": self.notes,
        }

    def render(self) -> str:
        """ASCII table in paper order."""
        w0 = max([len(r) for r in self.rows] + [len(self.exp_id)]) + 2
        widths = [
            max(len(c), *(len(self.cells[r][i]) for r in self.rows)) + 2
            for i, c in enumerate(self.columns)
        ]
        lines = [f"{self.exp_id}: {self.title}"]
        header = " " * w0 + "".join(
            c.rjust(w) for c, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rows:
            lines.append(
                r.ljust(w0)
                + "".join(v.rjust(w) for v, w in zip(self.cells[r], widths))
            )
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def _pct(x: float) -> str:
    return f"{x * 100:.1f}%"


def canonical_techniques(metrics: Sequence[PointMetrics]) -> List[str]:
    """Technique labels present in ``metrics``, in paper row order.

    Baseline first, then the paper's technique families, then any
    off-matrix labels (custom decay tunings, …) in first-appearance
    order — the row order every figure slice uses when the caller does
    not pin one.
    """
    seen = {m.technique for m in metrics}
    ordered = [t for t in (BASELINE, *paper_technique_order()) if t in seen]
    for m in metrics:
        if m.technique not in ordered:
            ordered.append(m.technique)
    return ordered


def size_slice(
    exp_id: str,
    title: str,
    attr: str,
    metrics: Sequence[PointMetrics],
    sizes: Optional[Sequence[int]] = None,
    techniques: Optional[Sequence[str]] = None,
    notes: str = "",
) -> FigureTable:
    """Shared shape of Figs 3–5: techniques × size, averaged over benchmarks.

    A pure builder over metric rows — selection runs through
    :class:`~repro.harness.query.ResultQuery`, so the CLI, the bench
    scripts, and the HTTP figure endpoint render identical slices from
    the same rows.  Unpinned axes derive from the rows themselves.
    """
    if sizes is None:
        sizes = sorted({m.total_mb for m in metrics})
    if techniques is None:
        techniques = canonical_techniques(metrics)
    table = FigureTable(
        exp_id=exp_id,
        title=title,
        columns=[f"{mb}MB" for mb in sizes],
        notes=notes,
    )
    for tech in techniques:
        if tech == BASELINE and attr not in ("occupancy", "miss_rate"):
            continue  # ratios vs. baseline are identically zero
        vals = []
        for mb in sizes:
            cell = ResultQuery(sizes_mb=(mb,), techniques=(tech,)).apply(metrics)
            mean = (
                sum(getattr(m, attr) for m in cell) / len(cell) if cell else 0.0
            )
            vals.append(_pct(mean))
        table.add_row(tech, vals)
    return table


def benchmark_slice(
    exp_id: str,
    title: str,
    attr: str,
    metrics: Sequence[PointMetrics],
    total_mb: int,
    benchmarks: Optional[Sequence[str]] = None,
    techniques: Optional[Sequence[str]] = None,
    notes: str = "",
) -> FigureTable:
    """Shared shape of Fig 6: techniques × benchmark at one size.

    Pure like :func:`size_slice`; a benchmark with no row at
    ``total_mb`` renders as ``-`` rather than failing, so partial caches
    still produce a table.
    """
    if benchmarks is None:
        benchmarks = list(
            dict.fromkeys(m.workload for m in metrics if m.total_mb == total_mb)
        )
    if techniques is None:
        techniques = canonical_techniques(metrics)
    table = FigureTable(
        exp_id=exp_id,
        title=f"{title} (total {total_mb}MB)",
        columns=list(benchmarks),
        notes=notes,
    )
    for tech in techniques:
        if tech == BASELINE:
            continue
        vals = []
        for wl in benchmarks:
            cell = ResultQuery(
                workloads=(wl,), sizes_mb=(total_mb,), techniques=(tech,)
            ).apply(metrics)
            vals.append(_pct(getattr(cell[0], attr)) if cell else "-")
        table.add_row(tech, vals)
    return table


def _size_figure(
    runner: SweepRunner,
    exp_id: str,
    title: str,
    attr: str,
    sizes: Sequence[int],
    benchmarks: Sequence[str],
    notes: str = "",
) -> FigureTable:
    """Run the figure's grid spec, then render it via :func:`size_slice`."""
    # Include the baseline in the spec: occupancy/miss-rate figures show
    # its row (100 % / baseline miss rate); its points are cached anyway
    # since every ratio metric pairs against them.
    spec = grid_spec(
        name=exp_id,
        description=title,
        workloads=benchmarks,
        sizes_mb=sizes,
        techniques=runner.technique_order(),
    )
    return size_slice(
        exp_id,
        title,
        attr,
        runner.run_spec(spec),
        sizes=sizes,
        techniques=runner.technique_order(),
        notes=notes,
    )


def fig3a(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 3(a): L2 occupation rate."""
    t = _size_figure(
        runner, "fig3a", "L2 occupation rate", "occupancy", sizes, benchmarks
    )
    # baseline occupancy is 100% by definition; shown for reference
    return t


def fig3b(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 3(b): aggregate L2 miss rate."""
    return _size_figure(
        runner,
        "fig3b",
        "L2 miss rate",
        "miss_rate",
        sizes,
        benchmarks,
        notes="note: absolute levels exceed the paper's (scaled runs "
        "amplify compulsory misses); orderings and trends are the "
        "reproduction target — see PAPER.md.",
    )


def fig4a(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 4(a): memory bandwidth increase vs. unoptimized."""
    return _size_figure(
        runner,
        "fig4a",
        "Memory bandwidth increase",
        "bandwidth_increase",
        sizes,
        benchmarks,
    )


def fig4b(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 4(b): AMAT increase vs. unoptimized."""
    return _size_figure(
        runner, "fig4b", "AMAT increase", "amat_increase", sizes, benchmarks
    )


def fig5a(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 5(a): system energy reduction."""
    return _size_figure(
        runner,
        "fig5a",
        "Energy reduction",
        "energy_reduction",
        sizes,
        benchmarks,
        notes="paper @4MB: protocol 13%, decay 30%, sel_decay 21%; "
        "@8MB: 25%/44%/38%.",
    )


def fig5b(
    runner: SweepRunner, sizes=PAPER_TOTAL_L2_MB, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 5(b): IPC loss."""
    return _size_figure(
        runner,
        "fig5b",
        "IPC loss",
        "ipc_loss",
        sizes,
        benchmarks,
        notes="paper @4MB: protocol 0%, decay 8%, sel_decay 2%.",
    )


def _benchmark_figure(
    runner: SweepRunner,
    exp_id: str,
    title: str,
    attr: str,
    total_mb: int,
    benchmarks: Sequence[str],
    notes: str = "",
) -> FigureTable:
    """Run the grid spec, then render it via :func:`benchmark_slice`."""
    spec = grid_spec(
        name=exp_id,
        description=title,
        workloads=benchmarks,
        sizes_mb=[total_mb],
        techniques=runner.technique_order(),
    )
    return benchmark_slice(
        exp_id,
        title,
        attr,
        runner.run_spec(spec),
        total_mb,
        benchmarks=benchmarks,
        techniques=runner.technique_order(),
        notes=notes,
    )


def fig6a(
    runner: SweepRunner, total_mb: int = 4, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 6(a): per-benchmark energy reduction at 4 MB."""
    return _benchmark_figure(
        runner,
        "fig6a",
        "Energy reduction per benchmark",
        "energy_reduction",
        total_mb,
        benchmarks,
        notes="paper signatures: protocol ~ decay for mpeg2dec, protocol "
        "beats decay-class savings for WATER-NS; SD trails decay "
        "for mpeg2enc and FMM.",
    )


def fig6b(
    runner: SweepRunner, total_mb: int = 4, benchmarks=PAPER_BENCHMARKS
) -> FigureTable:
    """Fig 6(b): per-benchmark IPC loss at 4 MB."""
    return _benchmark_figure(
        runner,
        "fig6b",
        "IPC loss per benchmark",
        "ipc_loss",
        total_mb,
        benchmarks,
        notes="paper signatures: scientific hurt more than multimedia; "
        "larger decay visibly helps VOLREND and mpeg2dec.",
    )


def show_cores_column(rows: Sequence) -> bool:
    """True when any row/metric pins ``n_cores`` (show a cores column).

    Shared by the single-run and ensemble tables so the two cannot
    drift: the column appears exactly when some point carries an
    ``n_cores`` override (e.g. the core-scaling family) — otherwise
    rows with identical workload/size/technique but different core
    counts would be indistinguishable.
    """
    return any(getattr(row, "n_cores", None) is not None for row in rows)


def format_cores(n_cores: Optional[int]) -> str:
    """Cores-column cell text (``-`` = the runner's default count)."""
    return str(n_cores) if n_cores is not None else "-"


#: ensemble-table columns: attribute -> column header
ENSEMBLE_COLUMNS = (
    ("energy_reduction", "energy_red"),
    ("ipc_loss", "ipc_loss"),
    ("occupancy", "occupancy"),
    ("miss_rate", "miss_rate"),
)


def ensemble_table(
    exp_id: str,
    aggregated: Sequence,
    title: str = "ensemble results (mean ± 95% CI)",
    columns: Sequence = ENSEMBLE_COLUMNS,
) -> FigureTable:
    """Render aggregated ensemble rows as ``value ± ci`` columns.

    ``aggregated`` is the :func:`repro.scenarios.stats.aggregate_metrics`
    output (one :class:`~repro.scenarios.stats.EnsembleMetrics` per base
    point); each selected metric renders as ``mean%±ci`` via
    :meth:`~repro.scenarios.stats.SummaryStat.format_pct`.  With one
    replica the ± vanishes and the table matches a single run.  A
    ``cores`` column appears only when some row pins ``n_cores`` (the
    core-scaling family; see :func:`show_cores_column`).
    """
    show_cores = show_cores_column(aggregated)
    table = FigureTable(
        exp_id=exp_id,
        title=title,
        columns=[
            "workload", "MB",
            *(["cores"] if show_cores else []),
            "technique", "n",
            *(h for _, h in columns),
        ],
    )
    for i, row in enumerate(aggregated):
        table.add_row(
            f"p{i:03d}",
            [
                row.workload,
                str(row.total_mb),
                *([format_cores(row.n_cores)] if show_cores else []),
                row.technique,
                str(row.n),
                *(row.stats[attr].format_pct() for attr, _ in columns),
            ],
        )
    return table


def table1() -> FigureTable:
    """Table I: the turn-off legality matrix (no simulation needed)."""
    t = FigureTable(
        exp_id="table1",
        title="When may an L2 line be turned off?",
        columns=["clean", "dirty"],
    )
    cells: Dict[str, Dict[bool, str]] = {}
    for org, dirty, decision in table_rows():
        cells.setdefault(org, {})[dirty] = decision.describe()
    for org, row in cells.items():
        t.add_row(org, [row[False], row[True]])
    return t


#: Experiment registry: id -> callable(runner) -> FigureTable.
EXPERIMENTS: Dict[str, Callable] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6a": fig6a,
    "fig6b": fig6b,
}


#: Figure-slice registry: id -> (title, metric attribute, table shape).
#: ``size`` slices are techniques × size averaged over benchmarks;
#: ``benchmark`` slices are techniques × benchmark at one size.  Used by
#: the serving layer to render any figure from *cached* rows alone.
FIGURE_SLICES: Dict[str, Dict[str, str]] = {
    "fig3a": {"title": "L2 occupation rate", "attr": "occupancy",
              "shape": "size"},
    "fig3b": {"title": "L2 miss rate", "attr": "miss_rate", "shape": "size"},
    "fig4a": {"title": "Memory bandwidth increase",
              "attr": "bandwidth_increase", "shape": "size"},
    "fig4b": {"title": "AMAT increase", "attr": "amat_increase",
              "shape": "size"},
    "fig5a": {"title": "Energy reduction", "attr": "energy_reduction",
              "shape": "size"},
    "fig5b": {"title": "IPC loss", "attr": "ipc_loss", "shape": "size"},
    "fig6a": {"title": "Energy reduction per benchmark",
              "attr": "energy_reduction", "shape": "benchmark"},
    "fig6b": {"title": "IPC loss per benchmark", "attr": "ipc_loss",
              "shape": "benchmark"},
}


def figure_slice(
    name: str,
    metrics: Sequence[PointMetrics],
    total_mb: Optional[int] = None,
) -> FigureTable:
    """Render one registered figure from in-memory metric rows.

    The read-only counterpart of :func:`run_experiment`: axes derive
    from the rows (never re-simulating), so a partially-populated cache
    renders a partial — but correct — table.  ``total_mb`` pins the size
    of benchmark-shaped figures (default: the paper's 4 MB when present,
    else the smallest size in the rows).  Raises ``ValueError`` on an
    unknown name or when no row matches.
    """
    if name not in FIGURE_SLICES:
        raise ValueError(
            f"unknown figure {name!r}; available: {sorted(FIGURE_SLICES)}"
        )
    if not metrics:
        raise ValueError(f"no metric rows to render figure {name!r} from")
    info = FIGURE_SLICES[name]
    if info["shape"] == "size":
        return size_slice(name, info["title"], info["attr"], metrics)
    sizes = sorted({m.total_mb for m in metrics})
    mb = total_mb if total_mb is not None else (4 if 4 in sizes else sizes[0])
    if mb not in sizes:
        raise ValueError(
            f"no metric rows at {mb}MB for figure {name!r}; "
            f"cached sizes: {sizes}"
        )
    return benchmark_slice(name, info["title"], info["attr"], metrics, mb)


def run_experiment(
    exp_id: str, runner: Optional[SweepRunner] = None, **kwargs
) -> FigureTable:
    """Regenerate one experiment by id (``table1`` needs no runner)."""
    if exp_id == "table1":
        return table1()
    if exp_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {exp_id!r}; "
            f"available: {sorted(EXPERIMENTS) + ['table1']}"
        )
    runner = runner or SweepRunner()
    return EXPERIMENTS[exp_id](runner, **kwargs)
