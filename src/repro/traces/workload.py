"""The ``trace:<file>`` workload family and its provenance helpers.

A trace workload is addressed by file, through the same name seam every
other workload uses::

    trace:traces/app.rtr            # relative to the spec file / trace root
    trace:/abs/path/capture.rtr     # absolute paths pass through

Names stay *relative* inside sweep points and cache keys (keeping result
digests host-portable); resolution against a ``trace_root`` — the spec
file's directory, by default — happens only when the workload is built.
Replay reuses the header's **meta name** (the source workload's name for
self-captures), so the result blobs a replay produces are byte-identical
to the direct generator run.  Mixes rebase trace components into their
own address windows exactly like synthetic components
(:mod:`repro.workloads.mix` is format-agnostic).

:func:`trace_provenance` exposes the capture file's sha256 for the
per-entry provenance sidecars, so a served ``/v1/provenance/<digest>``
answer identifies which capture produced a result.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Tuple

from ..workloads.trace import Workload, WorkloadMeta
from .format import TraceError, TraceFormatError, TraceReader

#: dispatch prefix of file-backed trace workload names
TRACE_PREFIX = "trace:"


def is_trace_name(name: str) -> bool:
    """True when ``name`` addresses a file-backed trace (``trace:<file>``)."""
    return name.startswith(TRACE_PREFIX)


def trace_path(name: str, trace_root: Optional[str] = None) -> str:
    """Resolve a ``trace:`` name to a filesystem path.

    Relative paths resolve against ``trace_root`` (the spec file's
    directory when running a spec) or the working directory; absolute
    paths are taken as-is.  Raises for names without the prefix or with
    an empty path.
    """
    if not is_trace_name(name):
        raise TraceError(f"not a trace name (no {TRACE_PREFIX!r} prefix): {name!r}")
    rel = name[len(TRACE_PREFIX) :]
    if not rel:
        raise TraceError(f"bad trace name {name!r}: empty file path")
    if os.path.isabs(rel) or trace_root is None:
        return rel
    return os.path.join(trace_root, rel)


def check_trace(name: str, trace_root: Optional[str] = None) -> str:
    """Validate that a ``trace:`` name resolves to a readable trace file.

    Returns the resolved path; raises :class:`TraceError` with a clean,
    actionable message (missing file, unreadable file, bad magic or
    version) — the error spec validation surfaces without a traceback.
    """
    path = trace_path(name, trace_root)
    if not os.path.exists(path):
        raise TraceError(
            f"trace file not found: {path!r} (from workload {name!r})"
        )
    reader = TraceReader(path)  # parses magic/version/header
    return reader.path


def trace_exists(name: str, trace_root: Optional[str] = None) -> bool:
    """True when ``name`` is a ``trace:`` name over a readable trace file."""
    if not is_trace_name(name):
        return False
    try:
        check_trace(name, trace_root)
    except TraceError:
        return False
    return True


def _replay_meta(name: str, reader: TraceReader) -> WorkloadMeta:
    """Build replay metadata from the header (trailer fills the gaps).

    Self-captures carry the source workload's full metadata — reused
    verbatim, *including the name*, which is what makes replay blobs
    byte-identical to the generator run.  Converted logs leave the
    stream-dependent fields null; those are recovered from the trailer
    statistics (``accesses_per_core`` drives warmup, so it must reflect
    the real stream length).
    """
    header = reader.header
    accesses = header.get("accesses_per_core")
    if not isinstance(accesses, int) or accesses < 0:
        accesses = max(reader.counts(), default=0)
    footprint = header.get("footprint_bytes")
    if not isinstance(footprint, int) or footprint < 0:
        trailer = reader.trailer()
        lo, hi = trailer.get("min_addr"), trailer.get("max_addr")
        line_bytes = header.get("line_bytes") or 64
        footprint = (hi - lo + line_bytes) if isinstance(lo, int) else 0
    shared = header.get("shared_bytes")
    return WorkloadMeta(
        name=str(header.get("name") or os.path.basename(reader.path)),
        suite=str(header.get("suite") or "captured"),
        kind=str(header.get("kind") or "trace"),
        accesses_per_core=accesses,
        footprint_bytes=footprint,
        shared_bytes=shared if isinstance(shared, int) else 0,
        description=str(header.get("description") or f"trace replay of {name}"),
    )


def trace_workload(
    name: str,
    n_cores: int = 4,
    scale: float = 1.0,
    seed: int = 1,
    line_bytes: int = 64,
    trace_root: Optional[str] = None,
) -> Workload:
    """Build the replay :class:`~repro.workloads.trace.Workload` of a trace.

    ``scale``/``seed``/``line_bytes`` are accepted for registry-signature
    compatibility but do not alter replay — a trace file *is* its record
    streams.  ``n_cores`` must match the capture's core count (checked
    here and again by ``streams()``).
    """
    path = trace_path(name, trace_root)
    try:
        reader = TraceReader(path)
    except TraceFormatError:
        raise
    except TraceError:
        raise
    except OSError as exc:  # pragma: no cover - open() errors wrap above
        raise TraceError(f"cannot open trace {path!r}: {exc}") from exc
    if n_cores != reader.n_cores:
        raise TraceError(
            f"trace {path!r} was captured for {reader.n_cores} core(s), "
            f"asked to replay on {n_cores}"
        )
    meta = _replay_meta(name, reader)
    return Workload(meta, reader.streams)


def trace_components(name: str) -> List[str]:
    """The ``trace:`` components a workload point name references.

    ``trace:x.rtr`` → itself; ``mix:uniform+trace:x.rtr`` → its trace
    components; anything else → empty list.
    """
    if is_trace_name(name):
        return [name]
    from ..workloads.mix import is_mix_name, parse_mix_name

    if is_mix_name(name):
        try:
            return [c for c in parse_mix_name(name) if is_trace_name(c)]
        except ValueError:
            return []
    return []


#: (abs path, size, mtime_ns) → sha256, so repeated points on one trace
#: file hash it once per process
_DIGEST_CACHE: Dict[Tuple[str, int, int], str] = {}


def trace_digest(path: str) -> str:
    """sha256 of the trace file, memoized by (path, size, mtime)."""
    abspath = os.path.abspath(path)
    st = os.stat(abspath)
    key = (abspath, st.st_size, st.st_mtime_ns)
    cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with open(abspath, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    _DIGEST_CACHE[key] = digest.hexdigest()
    return _DIGEST_CACHE[key]


def trace_provenance(
    name: str, trace_root: Optional[str] = None
) -> Dict[str, dict]:
    """Per-component capture identity for the provenance sidecar.

    Maps each ``trace:`` component of ``name`` to its resolved file,
    size, and sha256 — recorded with every ``trace:`` point so served
    provenance answers identify which capture produced a result.
    Components whose file vanished are skipped (the run itself would
    have failed earlier; provenance never raises).
    """
    refs: Dict[str, dict] = {}
    for component in trace_components(name):
        try:
            path = trace_path(component, trace_root)
            refs[component] = {
                "file": os.path.abspath(path),
                "bytes": os.path.getsize(path),
                "sha256": trace_digest(path),
            }
        except (OSError, TraceError):  # pragma: no cover - defensive
            continue
    return refs
