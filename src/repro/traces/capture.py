"""Capture adapters: synthetic self-capture and access-log converters.

Three ways records get into an ``.rtr`` container:

* :func:`capture_workload` — replay any registered synthetic workload
  (or mix) through its generator and dump the streams to a trace file,
  copying the source :class:`~repro.workloads.trace.WorkloadMeta`
  verbatim into the header.  Because the header carries the source
  workload's *meta name*, replaying the capture produces result blobs
  byte-identical to the direct generator run (the capture-replay
  identity golden);
* :func:`convert_csv` — ingest ``core,addr,write[,gap,ilp,barrier]``
  CSV access logs (hex or decimal addresses, optional header row);
* :func:`convert_mtrace` — ingest mtrace-style whitespace logs
  (``<core> <R|W|ld|st> <addr> [gap]``, ``#`` comments).

All three stream through :class:`~repro.traces.format.TraceWriter`
frame-by-frame, so capture memory stays constant however long the
trace is.
"""

from __future__ import annotations

import csv
import os
from itertools import islice
from typing import Dict, Iterable, Optional

from ..workloads.trace import WorkloadMeta, make_flags
from .format import FRAME_RECORDS, TraceError, TraceWriter


def workload_header(
    meta: WorkloadMeta, line_bytes: int, source: Optional[dict] = None
) -> dict:
    """The trace-header document for a captured workload's metadata."""
    return {
        "name": meta.name,
        "suite": meta.suite,
        "kind": meta.kind,
        "accesses_per_core": meta.accesses_per_core,
        "footprint_bytes": meta.footprint_bytes,
        "shared_bytes": meta.shared_bytes,
        "description": meta.description,
        "line_bytes": line_bytes,
        "source": dict(source or {}),
    }


def capture_workload(
    name: str,
    path: str,
    n_cores: int = 4,
    scale: float = 1.0,
    seed: int = 1,
    line_bytes: int = 64,
    limit: Optional[int] = None,
    trace_root: Optional[str] = None,
    frame_records: int = FRAME_RECORDS,
) -> dict:
    """Capture workload ``name`` to a trace file at ``path``.

    ``limit`` truncates each core's stream to at most that many records
    (for CI-sized smoke traces); the header's ``accesses_per_core`` is
    clamped accordingly so warmup fractions keep meaning the same thing
    on replay.  Returns a summary dict (header + trailer stats).
    """
    from ..workloads.registry import get_workload

    if limit is not None and limit < 1:
        raise TraceError(f"limit must be >= 1, got {limit}")
    workload = get_workload(
        name,
        n_cores=n_cores,
        scale=scale,
        seed=seed,
        line_bytes=line_bytes,
        trace_root=trace_root,
    )
    meta = workload.meta
    if limit is not None and limit < meta.accesses_per_core:
        meta = WorkloadMeta(
            name=meta.name,
            suite=meta.suite,
            kind=meta.kind,
            accesses_per_core=limit,
            footprint_bytes=meta.footprint_bytes,
            shared_bytes=meta.shared_bytes,
            description=meta.description,
        )
    header = workload_header(
        meta,
        line_bytes,
        source={
            "workload": name,
            "n_cores": n_cores,
            "scale": scale,
            "seed": seed,
            "limit": limit,
        },
    )
    with TraceWriter(path, n_cores, header, frame_records=frame_records) as w:
        for core, stream in enumerate(workload.streams(n_cores)):
            if limit is not None:
                stream = islice(stream, limit)
            w.extend(core, stream)
        summary = {"path": path, "header": dict(w.header), **w.trailer()}
    return summary


# ---------------------------------------------------------------------------
# Log converters
# ---------------------------------------------------------------------------
def _parse_addr(token: str, where: str) -> int:
    try:
        return int(token, 16) if token.lower().startswith("0x") else int(token)
    except ValueError:
        raise TraceError(f"{where}: bad address {token!r}") from None


def _parse_int(token: str, what: str, where: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise TraceError(f"{where}: bad {what} {token!r}") from None
    if value < 0:
        raise TraceError(f"{where}: negative {what} {value}")
    return value


def _converted_header(
    name: str, n_cores: int, line_bytes: int, source: dict
) -> dict:
    """Header for converted logs: stream stats are only known at close.

    ``accesses_per_core``/``footprint_bytes`` stay ``None`` here — the
    replay layer recovers them from the trailer statistics.
    """
    return {
        "name": name,
        "suite": "captured",
        "kind": "trace",
        "accesses_per_core": None,
        "footprint_bytes": None,
        "shared_bytes": None,
        "description": f"converted from {source.get('format', 'log')}",
        "line_bytes": line_bytes,
        "source": dict(source),
    }


def _max_core(rows: Iterable[int]) -> int:
    top = -1
    for core in rows:
        top = max(top, core)
    if top < 0:
        raise TraceError("input log holds no access records")
    return top


def _csv_rows(src: str):
    """Yield (lineno, fields) for data rows of a CSV log (header skipped).

    Fields are stripped but keep their column positions: an empty cell
    *between* populated ones (``0,,4096,1``) must fail loudly in the
    field parsers, not silently shift later columns left.  Only trailing
    empty cells (a common export artifact) are dropped.
    """
    with open(src, "r", newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            fields = [f.strip() for f in row]
            while fields and not fields[-1]:
                fields.pop()
            if not fields or fields[0].startswith("#"):
                continue
            if lineno == 1 and not fields[0].lstrip("-").isdigit():
                continue  # header row ("core,addr,write,...")
            yield lineno, fields


def _csv_record(src: str, lineno: int, fields: list):
    """Decode one CSV data row into ``(core, record)``."""
    where = f"{src}:{lineno}"
    if len(fields) < 3:
        raise TraceError(f"{where}: need at least core,addr,write")
    core = _parse_int(fields[0], "core", where)
    addr = _parse_addr(fields[1], where)
    write = _parse_int(fields[2], "write flag", where)
    gap = _parse_int(fields[3], "gap", where) if len(fields) > 3 else 0
    ilp = _parse_int(fields[4], "ilp class", where) if len(fields) > 4 else 1
    barrier = (
        bool(_parse_int(fields[5], "barrier flag", where))
        if len(fields) > 5
        else False
    )
    try:
        flags = make_flags(write=bool(write), ilp=ilp, barrier=barrier)
    except ValueError as exc:
        raise TraceError(f"{where}: {exc}") from None
    return core, (gap, addr, flags)


def convert_csv(
    src: str,
    path: str,
    n_cores: Optional[int] = None,
    name: Optional[str] = None,
    line_bytes: int = 64,
    frame_records: int = FRAME_RECORDS,
) -> dict:
    """Convert a ``core,addr,write[,gap,ilp,barrier]`` CSV log to a trace.

    Addresses may be decimal or ``0x`` hex; an optional header row and
    ``#`` comment lines are skipped.  When ``n_cores`` is not given, a
    first pass over the log finds the highest core id (the conversion
    stays constant-memory either way).
    """
    if n_cores is None:
        n_cores = 1 + _max_core(
            _csv_record(src, ln, f)[0] for ln, f in _csv_rows(src)
        )
    header = _converted_header(
        name or os.path.splitext(os.path.basename(path))[0],
        n_cores,
        line_bytes,
        {"format": "csv", "file": os.path.basename(src)},
    )
    with TraceWriter(path, n_cores, header, frame_records=frame_records) as w:
        for lineno, fields in _csv_rows(src):
            core, record = _csv_record(src, lineno, fields)
            if core >= n_cores:
                raise TraceError(
                    f"{src}:{lineno}: core {core} outside 0..{n_cores - 1}"
                )
            w.append(core, record)
        summary = {"path": path, "header": dict(w.header), **w.trailer()}
    return summary


_MTRACE_OPS = {"r": False, "ld": False, "l": False, "w": True, "st": True, "s": True}


def _mtrace_rows(src: str):
    """Yield (lineno, tokens) for data lines of an mtrace-style log."""
    with open(src, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.split("#", 1)[0].strip()
            if line:
                yield lineno, line.split()


def _mtrace_record(src: str, lineno: int, tokens: list):
    """Decode one ``<core> <R|W|ld|st> <addr> [gap]`` line."""
    where = f"{src}:{lineno}"
    if len(tokens) < 3:
        raise TraceError(f"{where}: need <core> <R|W|ld|st> <addr> [gap]")
    core = _parse_int(tokens[0], "core", where)
    op = tokens[1].lower()
    if op not in _MTRACE_OPS:
        raise TraceError(
            f"{where}: unknown op {tokens[1]!r} "
            f"(expected one of {sorted(set(_MTRACE_OPS))})"
        )
    addr = _parse_addr(tokens[2], where)
    gap = _parse_int(tokens[3], "gap", where) if len(tokens) > 3 else 0
    return core, (gap, addr, make_flags(write=_MTRACE_OPS[op]))


def convert_mtrace(
    src: str,
    path: str,
    n_cores: Optional[int] = None,
    name: Optional[str] = None,
    line_bytes: int = 64,
    frame_records: int = FRAME_RECORDS,
) -> dict:
    """Convert an mtrace-style whitespace access log to a trace.

    Lines are ``<core> <R|W|ld|st> <addr> [gap]`` with ``#`` comments;
    addresses decimal or ``0x`` hex.  ``n_cores`` defaults to one more
    than the highest core id seen (first pass).
    """
    if n_cores is None:
        n_cores = 1 + _max_core(
            _mtrace_record(src, ln, t)[0] for ln, t in _mtrace_rows(src)
        )
    header = _converted_header(
        name or os.path.splitext(os.path.basename(path))[0],
        n_cores,
        line_bytes,
        {"format": "mtrace", "file": os.path.basename(src)},
    )
    with TraceWriter(path, n_cores, header, frame_records=frame_records) as w:
        for lineno, tokens in _mtrace_rows(src):
            core, record = _mtrace_record(src, lineno, tokens)
            if core >= n_cores:
                raise TraceError(
                    f"{src}:{lineno}: core {core} outside 0..{n_cores - 1}"
                )
            w.append(core, record)
        summary = {"path": path, "header": dict(w.header), **w.trailer()}
    return summary


#: converter dispatch used by ``repro-cmp trace convert --trace-format``
CONVERTERS: Dict[str, object] = {
    "csv": convert_csv,
    "mtrace": convert_mtrace,
}
