"""File-backed access traces: container format, capture, and replay.

The subsystem has three layers:

* :mod:`repro.traces.format` — the ``.rtr`` binary container (varint
  delta-encoded records in zlib frames) with a constant-memory writer
  and streaming reader;
* :mod:`repro.traces.capture` — adapters that fill containers: synthetic
  self-capture plus CSV / mtrace-style log converters;
* :mod:`repro.traces.workload` — the ``trace:<file>`` workload family
  the registry dispatches to, and the provenance helpers recording which
  capture produced a result.
"""

from .capture import CONVERTERS, capture_workload, convert_csv, convert_mtrace
from .format import (
    FORMAT_VERSION,
    FRAME_RECORDS,
    MAGIC,
    TraceError,
    TraceFormatError,
    TraceReader,
    TraceWriter,
)
from .workload import (
    TRACE_PREFIX,
    check_trace,
    is_trace_name,
    trace_components,
    trace_digest,
    trace_exists,
    trace_path,
    trace_provenance,
    trace_workload,
)

__all__ = [
    "CONVERTERS",
    "FORMAT_VERSION",
    "FRAME_RECORDS",
    "MAGIC",
    "TRACE_PREFIX",
    "TraceError",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "capture_workload",
    "check_trace",
    "convert_csv",
    "convert_mtrace",
    "is_trace_name",
    "trace_components",
    "trace_digest",
    "trace_exists",
    "trace_path",
    "trace_provenance",
    "trace_workload",
]
