"""Binary trace container: varint frames, zlib payloads, streaming reader.

The ``.rtr`` ("repro trace") container stores one
:data:`~repro.workloads.trace.Record` stream per core in a compact,
seekable, append-written binary layout::

    file    := MAGIC  u8(version)  header  frame*  trailer
    header  := uvarint(len)  zlib(header JSON)
    frame   := uvarint(core)  uvarint(n_records)  uvarint(len)  zlib(body)
    body    := ( uvarint(gap)  uvarint(zigzag(addr delta))  uvarint(flags) )*
    trailer := uvarint(n_cores)  uvarint(len)  zlib(trailer JSON)  MAGIC

Records are delta-encoded per frame: the address delta of a frame's
first record is taken against 0, so **every frame decodes independently**
— a reader can skip frames it does not need with a single seek, without
touching their payloads.  The trailer is an end-of-stream frame whose
core id equals ``n_cores`` (an invalid stream index, so old records can
never alias it); its JSON carries per-core record counts and stream
statistics that are only known once writing finishes.  The closing magic
detects files truncated exactly at the trailer boundary.

Two access paths exist, both constant-memory:

* :meth:`TraceReader.scan` walks frame *headers* only (seeking past
  payloads) — how ``info``/``validate`` and trailer recovery work;
* :meth:`TraceReader.stream` yields one core's records, decoding **one
  frame at a time** and releasing it before the next is read.  The
  reader tracks the high-water resident decode state in
  :attr:`TraceReader.max_resident_records`, which the constant-memory
  regression test caps at one frame regardless of trace length.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple

from ..workloads.trace import Record

#: leading (and closing) file signature of the container
MAGIC = b"RPTR"

#: current container version; readers reject anything else
FORMAT_VERSION = 1

#: records per frame the writer flushes at (also the reader's resident cap)
FRAME_RECORDS = 4096

#: zlib level: traces are written once and replayed many times
COMPRESSION_LEVEL = 6


class TraceError(ValueError):
    """Any trace-container failure (I/O shape, format, or usage)."""


class TraceFormatError(TraceError):
    """The file is not a readable trace of a supported version."""


# ---------------------------------------------------------------------------
# Varint primitives (LEB128 unsigned + zigzag for signed deltas)
# ---------------------------------------------------------------------------
def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (non-negative) to ``out`` as LEB128."""
    if value < 0:
        raise TraceError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 value from ``buf`` at ``pos``; returns (value, end)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise TraceFormatError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed integer onto unsigned zigzag order (0,-1,1,-2,...).

    Width-independent: Python integers are unbounded, so the usual
    fixed-width ``(value << 1) ^ (value >> 63)`` trick would silently
    corrupt deltas beyond ±2^63 (e.g. a 64-bit kernel address followed
    by a low address).  ``~(value << 1)`` computes the same mapping for
    any magnitude.
    """
    return ~(value << 1) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def _read_uvarint_io(fh: BinaryIO) -> int:
    """Read one LEB128 value from a binary stream (raises on EOF)."""
    result = 0
    shift = 0
    while True:
        byte = fh.read(1)
        if not byte:
            raise TraceFormatError("truncated varint (unexpected end of file)")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def _encode_json_block(doc: dict) -> bytes:
    """Length-prefixed zlib-compressed canonical JSON block."""
    payload = zlib.compress(
        json.dumps(doc, sort_keys=True).encode("utf-8"), COMPRESSION_LEVEL
    )
    head = bytearray()
    encode_uvarint(len(payload), head)
    return bytes(head) + payload


def _read_json_block(fh: BinaryIO, what: str) -> dict:
    """Read a length-prefixed compressed JSON block written by the writer."""
    length = _read_uvarint_io(fh)
    payload = fh.read(length)
    if len(payload) != length:
        raise TraceFormatError(f"truncated {what} block")
    try:
        doc = json.loads(zlib.decompress(payload).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"corrupt {what} block: {exc}") from exc
    if not isinstance(doc, dict):
        raise TraceFormatError(f"corrupt {what} block: not an object")
    return doc


def encode_frame_body(records: List[Record]) -> bytes:
    """Delta-encode one frame's records (uncompressed body bytes)."""
    out = bytearray()
    prev_addr = 0
    for gap, addr, flags in records:
        if gap < 0 or addr < 0 or flags < 0:
            raise TraceError(
                f"records must be non-negative, got {(gap, addr, flags)!r}"
            )
        encode_uvarint(gap, out)
        encode_uvarint(zigzag(addr - prev_addr), out)
        encode_uvarint(flags, out)
        prev_addr = addr
    return bytes(out)


def decode_frame_body(body: bytes, n_records: int) -> List[Record]:
    """Inverse of :func:`encode_frame_body`; validates the record count."""
    records: List[Record] = []
    pos = 0
    prev_addr = 0
    for _ in range(n_records):
        gap, pos = decode_uvarint(body, pos)
        delta, pos = decode_uvarint(body, pos)
        flags, pos = decode_uvarint(body, pos)
        addr = prev_addr + unzigzag(delta)
        if addr < 0:
            raise TraceFormatError(f"negative decoded address {addr}")
        prev_addr = addr
        records.append((gap, addr, flags))
    if pos != len(body):
        raise TraceFormatError(
            f"frame body has {len(body) - pos} trailing byte(s)"
        )
    return records


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------
class TraceWriter:
    """Streams per-core record streams into one ``.rtr`` container.

    Records are buffered per core and flushed as independent compressed
    frames of ``frame_records`` records, so writing holds constant
    memory however long the trace is.  The file is assembled at
    ``path + ".tmp"`` and atomically published by :meth:`close` (or the
    context manager) — a crashed capture never leaves a half-written
    trace behind.

    ``header`` is the trace's metadata document (see
    :func:`repro.traces.capture.workload_header`); ``n_cores`` is fixed
    up front because frame core ids and the trailer sentinel depend on
    it.
    """

    def __init__(
        self,
        path: str,
        n_cores: int,
        header: Optional[dict] = None,
        frame_records: int = FRAME_RECORDS,
    ) -> None:
        if n_cores < 1:
            raise TraceError(f"n_cores must be >= 1, got {n_cores}")
        if frame_records < 1:
            raise TraceError(f"frame_records must be >= 1, got {frame_records}")
        self.path = path
        self.n_cores = n_cores
        self.frame_records = frame_records
        self.header = dict(header or {})
        self.header["n_cores"] = n_cores
        self.counts = [0] * n_cores
        self.writes = 0
        self.barriers = 0
        self.min_addr: Optional[int] = None
        self.max_addr: Optional[int] = None
        self._buffers: List[List[Record]] = [[] for _ in range(n_cores)]
        self._tmp = path + ".tmp"
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh: Optional[BinaryIO] = open(self._tmp, "wb")
        self._fh.write(MAGIC)
        self._fh.write(bytes([FORMAT_VERSION]))
        self._fh.write(_encode_json_block(self.header))

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- writing ------------------------------------------------------------
    def append(self, core: int, record: Record) -> None:
        """Buffer one record for ``core``, flushing a frame when full."""
        if self._fh is None:
            raise TraceError("writer is closed")
        if not 0 <= core < self.n_cores:
            raise TraceError(f"core {core} out of range 0..{self.n_cores - 1}")
        gap, addr, flags = record
        self.counts[core] += 1
        if flags & 0x8:  # barrier marker (FLAG_BARRIER)
            self.barriers += 1
        else:
            if flags & 0x1:  # write flag (FLAG_WRITE)
                self.writes += 1
            self.min_addr = addr if self.min_addr is None else min(self.min_addr, addr)
            self.max_addr = addr if self.max_addr is None else max(self.max_addr, addr)
        buf = self._buffers[core]
        buf.append(record)
        if len(buf) >= self.frame_records:
            self._flush_core(core)

    def extend(self, core: int, records) -> int:
        """Append an iterable of records for ``core``; returns the count."""
        n = 0
        for record in records:
            self.append(core, record)
            n += 1
        return n

    def _flush_core(self, core: int) -> None:
        buf = self._buffers[core]
        if not buf:
            return
        body = zlib.compress(encode_frame_body(buf), COMPRESSION_LEVEL)
        head = bytearray()
        encode_uvarint(core, head)
        encode_uvarint(len(buf), head)
        encode_uvarint(len(body), head)
        self._fh.write(bytes(head))
        self._fh.write(body)
        self._buffers[core] = []

    # -- finalization -------------------------------------------------------
    def trailer(self) -> dict:
        """The trailer statistics document (counts + stream stats)."""
        return {
            "counts": list(self.counts),
            "records": sum(self.counts),
            "writes": self.writes,
            "barriers": self.barriers,
            "min_addr": self.min_addr,
            "max_addr": self.max_addr,
        }

    def close(self) -> str:
        """Flush buffers, write the trailer, and atomically publish."""
        if self._fh is None:
            return self.path
        for core in range(self.n_cores):
            self._flush_core(core)
        sentinel = bytearray()
        encode_uvarint(self.n_cores, sentinel)
        self._fh.write(bytes(sentinel))
        self._fh.write(_encode_json_block(self.trailer()))
        self._fh.write(MAGIC)
        self._fh.close()
        self._fh = None
        os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Discard the partially-written temporary file."""
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None
        try:
            os.unlink(self._tmp)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------
class TraceReader:
    """Streaming, constant-memory reader of one ``.rtr`` container.

    Construction parses the magic, version, and header only.  Each
    :meth:`stream` call opens its own file handle and decodes one frame
    at a time, so N live streams hold at most N frames; frames of other
    cores are skipped with a seek, never read.  :meth:`scan` and
    :meth:`trailer` walk frame headers only.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            fh = open(path, "rb")
        except OSError as exc:
            raise TraceError(f"cannot open trace {path!r}: {exc}") from exc
        with fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise TraceFormatError(
                    f"{path}: bad magic {magic!r} (not a repro trace)"
                )
            version_byte = fh.read(1)
            if not version_byte:
                raise TraceFormatError(f"{path}: truncated before version")
            self.version = version_byte[0]
            if self.version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"{path}: unsupported trace version {self.version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            self.header = _read_json_block(fh, "header")
            self._frames_offset = fh.tell()
        n_cores = self.header.get("n_cores")
        if not isinstance(n_cores, int) or n_cores < 1:
            raise TraceFormatError(f"{path}: header lacks a valid n_cores")
        self.n_cores = n_cores
        self._trailer: Optional[dict] = None
        #: high-water mark of records resident in decoded frames, per
        #: stream (the constant-memory contract regression tests pin)
        self.max_resident_records = 0

    # -- frame-level access -------------------------------------------------
    def scan(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(core, n_records, payload_offset, payload_len)`` per frame.

        Payloads are seeked past, not read.  Parses and caches the
        trailer when the end-of-stream sentinel is reached; raises
        :class:`TraceFormatError` for truncated or malformed files.
        """
        with open(self.path, "rb") as fh:
            end = os.fstat(fh.fileno()).st_size
            fh.seek(self._frames_offset)
            while True:
                core = _read_uvarint_io(fh)
                if core == self.n_cores:  # end-of-stream sentinel
                    trailer = _read_json_block(fh, "trailer")
                    closing = fh.read(len(MAGIC))
                    if closing != MAGIC:
                        raise TraceFormatError(
                            f"{self.path}: missing closing magic "
                            f"(file truncated at the trailer)"
                        )
                    if fh.read(1):
                        raise TraceFormatError(
                            f"{self.path}: trailing bytes after closing magic"
                        )
                    self._set_trailer(trailer)
                    return
                if core > self.n_cores:
                    raise TraceFormatError(
                        f"{self.path}: frame for core {core} in a "
                        f"{self.n_cores}-core trace"
                    )
                n_records = _read_uvarint_io(fh)
                payload_len = _read_uvarint_io(fh)
                offset = fh.tell()
                # seeking past EOF "succeeds", so truncation must be
                # checked against the real file size, not tell()
                if offset + payload_len > end:
                    raise TraceFormatError(
                        f"{self.path}: truncated frame (payload runs "
                        f"past end of file)"
                    )
                fh.seek(payload_len, io.SEEK_CUR)
                yield core, n_records, offset, payload_len

    def _set_trailer(self, trailer: dict) -> None:
        counts = trailer.get("counts")
        if (
            not isinstance(counts, list)
            or len(counts) != self.n_cores
            or not all(isinstance(c, int) and c >= 0 for c in counts)
        ):
            raise TraceFormatError(
                f"{self.path}: trailer counts do not match n_cores"
            )
        self._trailer = trailer

    def trailer(self) -> dict:
        """The trailer statistics document (scanning on first use)."""
        if self._trailer is None:
            for _ in self.scan():
                pass
        assert self._trailer is not None
        return self._trailer

    def counts(self) -> List[int]:
        """Per-core record counts (from the trailer)."""
        return list(self.trailer()["counts"])

    # -- record-level access ------------------------------------------------
    def stream(self, core: int) -> Iterator[Record]:
        """A fresh record iterator for one core (one resident frame).

        Every call returns an independent iterator over its own file
        handle, so a workload can be replayed across techniques and
        sizes concurrently — the same contract synthetic generators
        honor via fresh ``streams()``.
        """
        if not 0 <= core < self.n_cores:
            raise TraceError(
                f"core {core} out of range 0..{self.n_cores - 1}"
            )

        def gen() -> Iterator[Record]:
            with open(self.path, "rb") as fh:
                end = os.fstat(fh.fileno()).st_size
                fh.seek(self._frames_offset)
                while True:
                    frame_core = _read_uvarint_io(fh)
                    if frame_core == self.n_cores:
                        _read_json_block(fh, "trailer")
                        if fh.read(len(MAGIC)) != MAGIC:
                            raise TraceFormatError(
                                f"{self.path}: missing closing magic"
                            )
                        return
                    n_records = _read_uvarint_io(fh)
                    payload_len = _read_uvarint_io(fh)
                    if frame_core != core:
                        if fh.tell() + payload_len > end:
                            raise TraceFormatError(
                                f"{self.path}: truncated frame (payload "
                                f"runs past end of file)"
                            )
                        fh.seek(payload_len, io.SEEK_CUR)
                        continue
                    payload = fh.read(payload_len)
                    if len(payload) != payload_len:
                        raise TraceFormatError(
                            f"{self.path}: truncated frame payload"
                        )
                    try:
                        body = zlib.decompress(payload)
                    except zlib.error as exc:
                        raise TraceFormatError(
                            f"{self.path}: corrupt frame payload: {exc}"
                        ) from exc
                    records = decode_frame_body(body, n_records)
                    del payload, body
                    self.max_resident_records = max(
                        self.max_resident_records, len(records)
                    )
                    yield from records
                    del records

        return gen()

    def streams(self, n_cores: int) -> List[Iterator[Record]]:
        """Fresh per-core iterators (the ``Workload.streams`` shape)."""
        if n_cores != self.n_cores:
            raise TraceError(
                f"trace {self.path} holds {self.n_cores} core stream(s), "
                f"asked for {n_cores}"
            )
        return [self.stream(core) for core in range(self.n_cores)]

    # -- inspection ---------------------------------------------------------
    def info(self) -> Dict[str, object]:
        """Summary document for ``repro-cmp trace info`` (header scan only)."""
        frames = 0
        payload_bytes = 0
        for _, _, _, payload_len in self.scan():
            frames += 1
            payload_bytes += payload_len
        trailer = self.trailer()
        return {
            "path": self.path,
            "version": self.version,
            "n_cores": self.n_cores,
            "frames": frames,
            "file_bytes": os.path.getsize(self.path),
            "payload_bytes": payload_bytes,
            "header": dict(self.header),
            **{k: trailer.get(k) for k in (
                "counts", "records", "writes", "barriers",
                "min_addr", "max_addr",
            )},
        }

    def validate(self) -> Dict[str, object]:
        """Fully decode every frame, cross-checking the trailer.

        Returns the :meth:`info` document on success; raises
        :class:`TraceFormatError` on any structural damage (truncation,
        bad counts, corrupt payloads, negative fields).
        """
        decoded = [0] * self.n_cores
        writes = barriers = 0
        min_addr: Optional[int] = None
        max_addr: Optional[int] = None
        with open(self.path, "rb") as fh:
            for core, n_records, offset, payload_len in self.scan():
                fh.seek(offset)
                payload = fh.read(payload_len)
                try:
                    body = zlib.decompress(payload)
                except zlib.error as exc:
                    raise TraceFormatError(
                        f"{self.path}: corrupt frame payload: {exc}"
                    ) from exc
                for _, addr, flags in decode_frame_body(body, n_records):
                    if flags & 0x8:
                        barriers += 1
                    else:
                        if flags & 0x1:
                            writes += 1
                        min_addr = addr if min_addr is None else min(min_addr, addr)
                        max_addr = addr if max_addr is None else max(max_addr, addr)
                decoded[core] += n_records
        trailer = self.trailer()
        checks = {
            "counts": decoded,
            "writes": writes,
            "barriers": barriers,
            "min_addr": min_addr,
            "max_addr": max_addr,
        }
        for key, value in checks.items():
            if trailer.get(key) != value:
                raise TraceFormatError(
                    f"{self.path}: trailer {key} {trailer.get(key)!r} does "
                    f"not match decoded {value!r}"
                )
        return self.info()
