"""Global decay-event scheduler.

Hardware decays lines with per-line counters ticking in place; simulating
that cycle-by-cycle would be hopeless in Python.  Instead the scheduler
keeps a lazy min-heap with **at most one pending event per line frame**:

* when a policy arms a frame (fill, or a Selective-Decay downgrade) the
  L2 calls :meth:`ensure` — a heap push happens only if the frame has no
  pending event;
* touches do *not* push; they just move ``policy.last_touch`` forward;
* when an event pops, the frame's *current* deadline is recomputed from
  the policy: a disarmed/stale frame is dropped, a touched frame is
  re-armed at its new deadline, and only a genuinely idle frame fires.

This makes decay cost amortized O(1) per access while remaining *exact*:
a line gates at precisely the deadline its timer mode dictates (ideal or
hierarchical-quantized), never earlier or later.

Gate callbacks receive the event's effective deadline as the gate time, so
occupancy integrals and writeback timestamps are exact even though the
event is processed slightly later in wall-clock order (the simulator
processes all due decay events before advancing past them).

Hot-path layout: for the built-in decay policies the scheduler reads the
``armed``/``last_touch`` columns directly and computes deadlines from
pre-extracted timer constants, instead of dispatching
``policy.deadline()`` (two method calls and a property chain) per pop.
Policies without those columns fall back to the virtual call.  The
``_pending`` bytearray columns and ``_heap`` are shared with the L2s'
fused access paths (see :mod:`repro.hierarchy.l2`), which push events
under exactly the :meth:`ensure` protocol.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Sequence

from .policy import LeakagePolicy, fast_touch_kind

#: fire(cache_id, frame, gate_time) -> None
FireFn = Callable[[int, int, int], None]


class DecayScheduler:
    """Lazy min-heap of (deadline, cache_id, frame) decay events."""

    __slots__ = (
        "policies",
        "_heap",
        "_pending",
        "_armed",
        "_last_touch",
        "_dl_params",
        "pops",
        "refreshes",
        "fires",
    )

    def __init__(self, policies: Sequence[LeakagePolicy]) -> None:
        self.policies = list(policies)
        self._heap: List[tuple] = []
        self._pending = [bytearray(p.n_lines) for p in self.policies]
        self.pops = 0
        self.refreshes = 0
        self.fires = 0
        # Flat deadline columns (None entries force the virtual fallback).
        self._armed = []
        self._last_touch = []
        self._dl_params = []
        for p in self.policies:
            # Exact-type gate: a subclass may override deadline(), so only
            # the built-in decay policies use the flat-column computation.
            flat = fast_touch_kind(p) > 0
            armed = getattr(p, "armed", None) if flat else None
            last_touch = getattr(p, "last_touch", None) if flat else None
            timer = p.timer
            if armed is None or last_touch is None or timer is None:
                self._armed.append(None)
                self._last_touch.append(None)
                self._dl_params.append(None)
            else:
                self._armed.append(armed)
                self._last_touch.append(last_touch)
                self._dl_params.append(
                    (
                        timer.mode == "ideal",
                        timer.decay_cycles,
                        timer.global_tick,
                        timer.n_states,
                    )
                )

    # ------------------------------------------------------------------
    def _deadline(self, cache_id: int, frame: int) -> int:
        """Current gate deadline of ``frame`` (-1 when disarmed)."""
        armed = self._armed[cache_id]
        if armed is None:
            return self.policies[cache_id].deadline(frame)
        if not armed[frame]:
            return -1
        ideal, add, tick, n_states = self._dl_params[cache_id]
        lt = self._last_touch[cache_id][frame]
        if ideal:
            return lt + add
        return (lt // tick + n_states) * tick

    def ensure(self, cache_id: int, frame: int) -> None:
        """Guarantee a pending event exists for an armed frame."""
        pending = self._pending[cache_id]
        if pending[frame]:
            return
        dl = self._deadline(cache_id, frame)
        if dl < 0:
            return
        pending[frame] = 1
        heappush(self._heap, (dl, cache_id, frame))

    def next_due(self) -> Optional[int]:
        """Deadline of the earliest pending event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def has_pending(self, cache_id: int, frame: int) -> bool:
        """True when an event is queued for (cache_id, frame)."""
        return bool(self._pending[cache_id][frame])

    def process_until(self, t_limit: int, fire: FireFn) -> int:
        """Handle every event with an *effective* deadline ≤ ``t_limit``.

        Returns the number of frames gated.  ``fire(cache_id, frame,
        gate_time)`` performs the actual turn-off through the L2 (which
        may still deny it — pending-write rule — without affecting the
        scheduler's invariants, because the policy hooks re-arm on the
        next touch).
        """
        heap = self._heap
        all_armed = self._armed
        all_touch = self._last_touch
        all_params = self._dl_params
        all_pending = self._pending
        fired = 0
        pops = refreshes = 0
        while heap and heap[0][0] <= t_limit:
            dl, cid, frame = heappop(heap)
            pops += 1
            all_pending[cid][frame] = 0
            armed = all_armed[cid]
            if armed is None:
                current = self.policies[cid].deadline(frame)
            elif not armed[frame]:
                current = -1
            else:
                ideal, add, tick, n_states = all_params[cid]
                lt = all_touch[cid][frame]
                current = lt + add if ideal else (lt // tick + n_states) * tick
            if current < 0:
                continue  # disarmed since scheduling (invalidated/gated/M)
            if current > dl:
                # Touched since scheduled: lazily refresh.
                all_pending[cid][frame] = 1
                heappush(heap, (current, cid, frame))
                refreshes += 1
                continue
            self.fires += 1
            fired += 1
            fire(cid, frame, current)
        self.pops += pops
        self.refreshes += refreshes
        return fired

    def outstanding(self) -> int:
        """Number of queued events (including stale ones)."""
        return len(self._heap)
