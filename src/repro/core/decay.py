"""Global decay-event scheduler.

Hardware decays lines with per-line counters ticking in place; simulating
that cycle-by-cycle would be hopeless in Python.  Instead the scheduler
keeps a lazy min-heap with **at most one pending event per line frame**:

* when a policy arms a frame (fill, or a Selective-Decay downgrade) the
  L2 calls :meth:`ensure` — a heap push happens only if the frame has no
  pending event;
* touches do *not* push; they just move ``policy.last_touch`` forward;
* when an event pops, the frame's *current* deadline is recomputed from
  the policy: a disarmed/stale frame is dropped, a touched frame is
  re-armed at its new deadline, and only a genuinely idle frame fires.

This makes decay cost amortized O(1) per access while remaining *exact*:
a line gates at precisely the deadline its timer mode dictates (ideal or
hierarchical-quantized), never earlier or later.

Gate callbacks receive the event's effective deadline as the gate time, so
occupancy integrals and writeback timestamps are exact even though the
event is processed slightly later in wall-clock order (the simulator
processes all due decay events before advancing past them).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Sequence

from .policy import LeakagePolicy

#: fire(cache_id, frame, gate_time) -> None
FireFn = Callable[[int, int, int], None]


class DecayScheduler:
    """Lazy min-heap of (deadline, cache_id, frame) decay events."""

    __slots__ = ("policies", "_heap", "_pending", "pops", "refreshes", "fires")

    def __init__(self, policies: Sequence[LeakagePolicy]) -> None:
        self.policies = list(policies)
        self._heap: List[tuple] = []
        self._pending = [bytearray(p.n_lines) for p in self.policies]
        self.pops = 0
        self.refreshes = 0
        self.fires = 0

    # ------------------------------------------------------------------
    def ensure(self, cache_id: int, frame: int) -> None:
        """Guarantee a pending event exists for an armed frame."""
        pending = self._pending[cache_id]
        if pending[frame]:
            return
        dl = self.policies[cache_id].deadline(frame)
        if dl < 0:
            return
        pending[frame] = 1
        heappush(self._heap, (dl, cache_id, frame))

    def next_due(self) -> Optional[int]:
        """Deadline of the earliest pending event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def has_pending(self, cache_id: int, frame: int) -> bool:
        """True when an event is queued for (cache_id, frame)."""
        return bool(self._pending[cache_id][frame])

    def process_until(self, t_limit: int, fire: FireFn) -> int:
        """Handle every event with an *effective* deadline ≤ ``t_limit``.

        Returns the number of frames gated.  ``fire(cache_id, frame,
        gate_time)`` performs the actual turn-off through the L2 (which
        may still deny it — pending-write rule — without affecting the
        scheduler's invariants, because the policy hooks re-arm on the
        next touch).
        """
        heap = self._heap
        fired = 0
        while heap and heap[0][0] <= t_limit:
            dl, cid, frame = heappop(heap)
            self.pops += 1
            self._pending[cid][frame] = 0
            current = self.policies[cid].deadline(frame)
            if current < 0:
                continue  # disarmed since scheduling (invalidated/gated/M)
            if current > dl:
                # Touched since scheduled: lazily refresh.
                self._pending[cid][frame] = 1
                heappush(heap, (current, cid, frame))
                self.refreshes += 1
                continue
            self.fires += 1
            fired += 1
            fire(cid, frame, current)
        return fired

    def outstanding(self) -> int:
        """Number of queued events (including stale ones)."""
        return len(self._heap)
