"""Exact accounting of powered line-cycles (the paper's "occupation rate").

Fig 3(a) defines the occupation rate as::

    sum_j sum_i on_cycles_ij / (#L2s * #lines * total_cycles)

:class:`OccupancyTracker` maintains the running integral
``Σ on_lines(t) dt`` for one cache with O(1) work per gate/wake event.
When ``sample_interval`` is set it additionally distributes the integral
into fixed-width time buckets, which the transient thermal model uses as a
per-interval power trace (the paper dumped power every 10 000 cycles for
HotSpot; we integrate exactly instead of sampling).
"""

from __future__ import annotations

from typing import List


class OccupancyTracker:
    """Integrates the number of powered lines over time for one cache."""

    __slots__ = (
        "n_lines",
        "on_lines",
        "on_line_cycles",
        "_last_change",
        "_interval",
        "_buckets",
        "gates",
        "wakes",
        "clamped_events",
    )

    def __init__(
        self, n_lines: int, start_powered: bool, sample_interval: int = 0
    ) -> None:
        if n_lines < 1:
            raise ValueError("n_lines must be positive")
        self.n_lines = n_lines
        self.on_lines = n_lines if start_powered else 0
        self.on_line_cycles = 0
        self._last_change = 0
        self._interval = sample_interval
        self._buckets: List[int] = []
        self.gates = 0
        self.wakes = 0
        #: transitions whose timestamp was clamped forward (see _advance)
        self.clamped_events = 0

    # ------------------------------------------------------------------
    def _advance(self, now: int) -> None:
        """Accumulate the integral up to ``now``.

        Snoop-side transitions are stamped at the bus *grant* time, which
        can trail the previous architectural update by a few cycles of bus
        queueing; such slightly-stale timestamps are clamped forward (the
        integral error is bounded by the bus wait and is ≪ decay times).
        ``clamped_events`` counts them so tests can assert they stay rare.
        """
        last = self._last_change
        if now <= last:
            if now < last:
                self.clamped_events += 1
            return
        contribution = self.on_lines * (now - last)
        self.on_line_cycles += contribution
        iv = self._interval
        if iv:
            buckets = self._buckets
            b0 = last // iv
            b1 = (now - 1) // iv
            short = b1 + 1 - len(buckets)
            if short > 0:
                buckets.extend([0] * short)
            if b0 == b1:
                buckets[b0] += contribution
            else:
                on = self.on_lines
                # head partial bucket
                buckets[b0] += on * ((b0 + 1) * iv - last)
                # full middle buckets (freshly-extended slots are all the
                # same full-interval integral; add in one pass)
                full = on * iv
                for b in range(b0 + 1, b1):
                    buckets[b] += full
                # tail partial bucket
                buckets[b1] += on * (now - b1 * iv)
        self._last_change = now

    def gate(self, now: int) -> None:
        """One line transitioned powered -> gated at ``now``."""
        self._advance(now)
        if self.on_lines <= 0:
            raise RuntimeError("gate() with no powered lines")
        self.on_lines -= 1
        self.gates += 1

    def wake(self, now: int) -> None:
        """One line transitioned gated -> powered at ``now``."""
        self._advance(now)
        if self.on_lines >= self.n_lines:
            raise RuntimeError("wake() with all lines already powered")
        self.on_lines += 1
        self.wakes += 1

    def finalize(self, end: int) -> int:
        """Close the integral at ``end``; returns total powered line-cycles."""
        self._advance(end)
        return self.on_line_cycles

    def rebase(self, now: int) -> None:
        """Restart the integral at ``now`` keeping the powered-line state.

        Used at the warmup boundary: the paper collects statistics "after
        skipping initialization".
        """
        self._advance(now)
        self.on_line_cycles = 0
        self._buckets = []
        self._last_change = now
        self.gates = 0
        self.wakes = 0

    # ------------------------------------------------------------------
    def occupancy(self, total_cycles: int) -> float:
        """Occupation rate of this cache over ``total_cycles``.

        Call :meth:`finalize` first; otherwise the tail since the last
        transition is not included.
        """
        if total_cycles <= 0:
            return 0.0
        return self.on_line_cycles / (self.n_lines * total_cycles)

    def bucket_integrals(self) -> List[int]:
        """Per-interval powered line-cycle integrals (transient thermal)."""
        return list(self._buckets)

    def bucket_mean_on_lines(self) -> List[float]:
        """Per-interval mean number of powered lines."""
        iv = self._interval
        if not iv:
            return []
        return [b / iv for b in self._buckets]
