"""The paper's primary contribution: leakage-saving policies for coherent L2s.

* :mod:`repro.core.policy` — AlwaysOn / ProtocolOff / FixedDecay /
  SelectiveDecay (paper §IV);
* :mod:`repro.core.counters` — decay timing, ideal and hierarchical
  (Kaxiras-style global tick + per-line saturating counters);
* :mod:`repro.core.decay` — the lazy global decay-event scheduler;
* :mod:`repro.core.occupancy` — exact powered-line-cycle integrals
  (the Fig 3(a) "occupation rate").
"""

from .counters import DecayTimer
from .decay import DecayScheduler
from .occupancy import OccupancyTracker
from .policy import (
    AlwaysOnPolicy,
    FixedDecayPolicy,
    LeakagePolicy,
    ProtocolOffPolicy,
    SelectiveDecayPolicy,
    make_leakage_policy,
)

__all__ = [
    "DecayTimer",
    "DecayScheduler",
    "OccupancyTracker",
    "AlwaysOnPolicy",
    "FixedDecayPolicy",
    "LeakagePolicy",
    "ProtocolOffPolicy",
    "SelectiveDecayPolicy",
    "make_leakage_policy",
]
