"""Decay timing: ideal timers and the hierarchical counter architecture.

The paper implements line decay "assuming a hierarchical counter
architecture [6]" (Kaxiras et al.): a single global cycle counter ticks
every ``G`` cycles and each line carries a small saturating counter
(2 bits in the original design) that is cleared on access and incremented
on every global tick.  The line is switched off on the tick that would
overflow the counter, so the *observed* decay interval is quantized to
``((2^bits - 1) · G,  2^bits · G]``.  Choosing ``G = decay / 2^bits``
makes the nominal decay time the upper bound, exactly as in the original
paper.

:class:`DecayTimer` computes gate deadlines for both the idealized
(exact) and hierarchical (quantized) models; the simulator is agnostic to
which is in use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import COUNTER_HIERARCHICAL, COUNTER_IDEAL


@dataclass(frozen=True)
class DecayTimer:
    """Deadline calculator for a fixed decay interval.

    Parameters
    ----------
    decay_cycles:
        Nominal decay time (cycles of inactivity before gating).
    mode:
        ``"ideal"`` — gate exactly ``decay_cycles`` after the last access;
        ``"hierarchical"`` — Kaxiras's global-tick + per-line counter
        quantization.
    bits:
        Width of the per-line counter in hierarchical mode.
    """

    decay_cycles: int
    mode: str = COUNTER_IDEAL
    bits: int = 2

    def __post_init__(self) -> None:
        if self.decay_cycles < 1:
            raise ValueError("decay_cycles must be positive")
        if self.mode not in (COUNTER_IDEAL, COUNTER_HIERARCHICAL):
            raise ValueError(f"unknown timer mode {self.mode!r}")
        if self.mode == COUNTER_HIERARCHICAL and self.decay_cycles < (1 << self.bits):
            raise ValueError("decay_cycles too small for the counter resolution")

    @property
    def global_tick(self) -> int:
        """Global-counter period ``G`` in hierarchical mode."""
        return max(1, self.decay_cycles >> self.bits)

    @property
    def n_states(self) -> int:
        """Distinct per-line counter values (2^bits)."""
        return 1 << self.bits

    def deadline(self, last_touch: int) -> int:
        """Cycle at which a line last touched at ``last_touch`` gates."""
        if self.mode == COUNTER_IDEAL:
            return last_touch + self.decay_cycles
        g = self.global_tick
        # The counter is cleared at last_touch; it gates on the (2^bits)-th
        # global tick strictly after that instant.
        return (last_touch // g + self.n_states) * g

    def interval_bounds(self) -> tuple:
        """(min, max) observable inactivity before gating."""
        if self.mode == COUNTER_IDEAL:
            return (self.decay_cycles, self.decay_cycles)
        g = self.global_tick
        return ((self.n_states - 1) * g + 1, self.n_states * g)

    def ticks_in(self, cycles: int) -> int:
        """Global ticks occurring in a window of ``cycles`` (energy model)."""
        if self.mode == COUNTER_IDEAL:
            return 0
        return cycles // self.global_tick
