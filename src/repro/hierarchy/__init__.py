"""Memory hierarchy: write-through L1s, private inclusive snoopy L2s, memory.

Implements the system of the paper's Figure 1 on top of the cache and
coherence substrates.
"""

from .l1 import L1Cache
from .l2 import PrivateL2
from .memory import MainMemory
from .system import MemorySystem

__all__ = ["L1Cache", "PrivateL2", "MainMemory", "MemorySystem"]
