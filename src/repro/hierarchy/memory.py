"""External memory port (paper Fig. 1: "External Bus (to L3 or Memory)").

A single channel shared by the four private L2s.  Reads return after
``latency`` core cycles plus any queueing delay when contention modeling is
on; writes (writebacks) are posted — they occupy channel bandwidth but
nobody waits for them.  All off-chip traffic is accounted here; the
paper's Fig 4(a) "memory bandwidth increase" is
``MemoryStats.total_bytes / cycles`` relative to the baseline run.
"""

from __future__ import annotations

from ..sim.config import MemoryConfig
from ..sim.stats import MemoryStats


class MainMemory:
    """Fixed-latency, bandwidth-limited external memory channel."""

    __slots__ = ("cfg", "line_bytes", "stats", "next_free", "_occ_cycles")

    def __init__(self, cfg: MemoryConfig, line_bytes: int) -> None:
        self.cfg = cfg
        self.line_bytes = line_bytes
        self.stats = MemoryStats()
        self.next_free = 0
        # Channel occupancy of one line transfer, in core cycles.
        self._occ_cycles = max(1, int(round(line_bytes / cfg.bytes_per_cycle)))

    # ------------------------------------------------------------------
    def read_line(self, now: int) -> int:
        """Fetch one line; returns the completion time (core cycles)."""
        st = self.stats
        st.line_reads += 1
        st.bytes_read += self.line_bytes
        if self.cfg.contention:
            start = now if now > self.next_free else self.next_free
            self.next_free = start + self._occ_cycles
            st.busy_cycles += self._occ_cycles
            return start + self.cfg.latency
        st.busy_cycles += self._occ_cycles
        return now + self.cfg.latency

    def write_line(self, now: int) -> int:
        """Post one line writeback; returns when the channel accepted it."""
        st = self.stats
        st.line_writes += 1
        st.bytes_written += self.line_bytes
        if self.cfg.contention:
            start = now if now > self.next_free else self.next_free
            self.next_free = start + self._occ_cycles
            st.busy_cycles += self._occ_cycles
            return start
        st.busy_cycles += self._occ_cycles
        return now

    def reset_stats(self) -> None:
        """Zero traffic counters (warmup boundary)."""
        self.stats = MemoryStats()
