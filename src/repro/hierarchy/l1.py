"""Private write-through L1 data cache with a coalescing write buffer.

Paper §III: "to facilitate inclusion, the L1 cache is Write-Through" and
"the primary cache uses a Write Buffer to propagate writes".  Consequences
modeled here:

* the L1 never holds dirty data — a single valid bit per line suffices;
* stores complete into the write buffer in ~1 cycle; each buffered store
  later *drains* as an L2 write (this is why "the operations on the L2 are
  mostly writes", Fig 3(b) discussion);
* store misses do **not** allocate in L1 (write-no-allocate), load misses
  do (write-allocate on reads);
* the L2 consults :meth:`has_pending_write` before gating a clean line —
  Table I's "if no pending write" condition;
* the L2 invalidates L1 lines to preserve inclusion (snoop invalidations,
  evictions, and M/clean-line turn-offs).

An MSHR file limits outstanding load misses and merges secondary misses to
a line already being fetched.

Hot-path layout: the flat columns of the backing
:class:`~repro.cache.array.CacheArray` (residency map, state bytearray,
LRU stamp column) are re-exported as attributes so the owning
:class:`~repro.cpu.core.Core` can fuse the ~90% L1-hit case into its step
loop without re-entering this module (see ``Core.step``).
"""

from __future__ import annotations

from typing import Optional

from ..cache.array import CacheArray
from ..cache.geometry import CacheGeometry
from ..cache.mshr import MSHR
from ..cache.write_buffer import WriteBuffer
from ..coherence.states import L1_VALID
from ..sim.config import CMPConfig
from ..sim.stats import L1Stats
from .l2 import PrivateL2


class L1Cache:
    """One core's private L1 data cache."""

    def __init__(self, core_id: int, cfg: CMPConfig, l2: PrivateL2) -> None:
        self.core_id = core_id
        self.cfg = cfg
        geom = CacheGeometry(
            size_bytes=cfg.l1.size_bytes,
            line_bytes=cfg.l1.line_bytes,
            assoc=cfg.l1.assoc,
        )
        self.geom = geom
        self.array = CacheArray(geom, cfg.l1.policy)
        self.mshr = MSHR(cfg.core.l1_mshr_entries)
        self.write_buffer = WriteBuffer(
            cfg.core.write_buffer_entries,
            drain_latency=cfg.core.write_buffer_drain_cycles,
        )
        self.l2 = l2
        self.stats = L1Stats()
        self.hit_latency = cfg.l1.hit_latency
        #: set whenever the head drain deadline may have moved; the
        #: simulator's event heap consumes it via consume_drain_event()
        self._drain_dirty = False

        # Flat-column aliases for the fused fast path in Core.step.
        self.line_to_frame = self.array.line_to_frame
        self.state_col = self.array.state
        self.lru = self.array.lru

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero counters at the warmup boundary."""
        self.stats = L1Stats()

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def load(self, line_addr: int, now: int) -> tuple:
        """Serve a load; returns ``(latency, mshr_stall_cycles)``.

        ``latency`` is the full access time (AMAT contribution);
        ``mshr_stall_cycles`` is extra structural stall charged when the
        MSHR file was full at issue.
        """
        st = self.stats
        st.loads += 1
        self.mshr.release_until(now)

        frame = self.array.lookup(line_addr)
        if frame >= 0 and self.state_col[frame] == L1_VALID:
            st.load_hits += 1
            st.load_latency_sum += self.hit_latency
            return (self.hit_latency, 0)

        st.load_misses += 1

        # Secondary miss: coalesce onto the in-flight fill.
        entry = self.mshr.outstanding(line_addr)
        if entry is not None:
            self.mshr.merge(line_addr)
            st.mshr_merges += 1
            latency = max(self.hit_latency, entry.complete_time - now)
            st.load_latency_sum += latency
            return (latency, 0)

        # Structural hazard: every MSHR busy with a different line.
        stall = 0
        if self.mshr.is_full():
            free_at = self.mshr.earliest_completion()
            stall = max(0, free_at - now)
            self.mshr.note_full_stall(stall)
            now += stall
            self.mshr.release_until(now)

        l2_latency = self.l2.access(line_addr, now + self.hit_latency, False)
        latency = self.hit_latency + l2_latency
        self.mshr.allocate(line_addr, now, now + latency, is_write=False)
        self._fill(line_addr)
        st.load_latency_sum += latency
        return (latency, stall)

    def _fill(self, line_addr: int) -> None:
        """Install a line after a load miss (write-allocate on reads)."""
        st = self.stats
        frame = self.array.choose_victim(line_addr)
        victim_tag = self.array.tags[frame]
        if victim_tag != -1:
            st.evictions += 1
            self.l2.note_l1_evict(victim_tag)
        self.array.install(line_addr, frame, L1_VALID)
        st.fills += 1
        self.l2.note_l1_fill(line_addr)

    # ------------------------------------------------------------------
    # Store path (write-through, no-allocate, coalescing buffer)
    # ------------------------------------------------------------------
    def store(self, line_addr: int, now: int) -> tuple:
        """Issue a store; returns ``(latency, full_stall_cycles)``.

        The store retires into the write buffer.  When the buffer is full
        the core stalls until the oldest entry drains (performed here, on
        the caller's timeline).
        """
        st = self.stats
        st.stores += 1
        head_before = self.write_buffer.head_ready_time()

        frame = self.array.lookup(line_addr)
        if frame >= 0 and self.state_col[frame] == L1_VALID:
            st.store_hits += 1  # write-through also updates the L1 copy

        stall = 0
        if not self.write_buffer.can_accept(line_addr):
            # Stall until the head entry may drain, then push it to L2.
            head_ready = self.write_buffer.head_ready_time()
            drain_at = max(now, head_ready)
            stall = (drain_at - now) + 1
            self.write_buffer.note_full_stall(stall)
            drained = self.write_buffer.pop_ready(drain_at)
            assert drained >= 0, "full buffer must have a drainable head"
            self.l2.access(drained, drain_at, True)

        self.write_buffer.insert(line_addr, now + stall)
        if self.write_buffer.head_ready_time() != head_before:
            self._drain_dirty = True
        return (1, stall)

    # ------------------------------------------------------------------
    # Background drain (driven by the simulator's global loop)
    # ------------------------------------------------------------------
    def next_drain_time(self) -> int:
        """Ready time of the oldest buffered store; ``-1`` when empty."""
        return self.write_buffer.head_ready_time()

    def drain_one(self, now: int) -> bool:
        """Drain the oldest ready entry into the L2; True if one drained."""
        line_addr = self.write_buffer.pop_ready(now)
        if line_addr < 0:
            return False
        self._drain_dirty = True
        self.l2.access(line_addr, now, True)
        return True

    def consume_drain_event(self) -> Optional[int]:
        """Updated drain deadline since the last call, else ``None``.

        The simulator's next-event heap polls this after every action that
        can move the head of this L1's write buffer (a step of the owning
        core, or a drain of this buffer).  The returned deadline is the
        current :meth:`next_drain_time` (``-1`` when the buffer emptied);
        ``None`` means the previously posted deadline is still current.
        """
        if not self._drain_dirty:
            return None
        self._drain_dirty = False
        return self.write_buffer.head_ready_time()

    def has_pending_write(self, line_addr: int) -> bool:
        """Table I: is a buffered store to ``line_addr`` still in flight?"""
        return self.write_buffer.has_pending(line_addr)

    # ------------------------------------------------------------------
    # Inclusion (called by the local L2)
    # ------------------------------------------------------------------
    def invalidate_line(self, line_addr: int) -> bool:
        """Drop the L1 copy of ``line_addr`` (L2 gating/invalidation)."""
        frame = self.array.probe(line_addr)
        if frame < 0:
            return False
        self.array.evict(frame)
        self.stats.upper_invalidations += 1
        return True

    def holds(self, line_addr: int) -> bool:
        """True when the L1 currently holds a valid copy (tests)."""
        frame = self.array.probe(line_addr)
        return frame >= 0 and self.state_col[frame] == L1_VALID

    def check_inclusion(self) -> None:
        """Every valid L1 line must be valid in the L2 (test invariant)."""
        from ..coherence.states import is_valid as l2_valid

        for _, line_addr, state in self.array.resident_lines():
            if state != L1_VALID:
                continue
            l2_frame = self.l2.array.probe(line_addr)
            if l2_frame < 0 or not l2_valid(self.l2.array.state[l2_frame]):
                raise AssertionError(
                    f"inclusion violated: core {self.core_id} L1 holds line "
                    f"{line_addr:#x} absent from its L2"
                )
