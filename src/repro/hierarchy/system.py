"""Wiring of the CMP memory system (paper Figure 1).

``MemorySystem`` instantiates and connects: four private L1s (write-through
+ write buffer), four private inclusive L2s snooping a shared bus, the
external memory port, the per-cache leakage policies and the global decay
scheduler.  The CPU cores and the simulation loop live elsewhere; this
class is also usable standalone for protocol-level tests ("poke addresses,
inspect states").
"""

from __future__ import annotations

from typing import List

from ..coherence.bus import SnoopyBus
from ..coherence.mesi import MESIProtocol
from ..core.decay import DecayScheduler
from ..core.policy import make_leakage_policy
from ..sim.config import CMPConfig
from .l1 import L1Cache
from .l2 import PrivateL2
from .memory import MainMemory


class MemorySystem:
    """The complete L1/L2/bus/memory fabric of the simulated CMP."""

    def __init__(self, cfg: CMPConfig) -> None:
        self.cfg = cfg
        self.protocol = MESIProtocol()
        self.bus = SnoopyBus(cfg.bus, line_bytes=cfg.l2.line_bytes)
        self.memory = MainMemory(cfg.memory, line_bytes=cfg.l2.line_bytes)

        n_lines = cfg.l2.size_bytes // cfg.l2.line_bytes
        self.policies = [
            make_leakage_policy(cfg.technique, n_lines) for _ in range(cfg.n_cores)
        ]
        self.l2s: List[PrivateL2] = [
            PrivateL2(i, cfg, self.bus, self.memory, self.policies[i], self.protocol)
            for i in range(cfg.n_cores)
        ]
        self.l1s: List[L1Cache] = [
            L1Cache(i, cfg, self.l2s[i]) for i in range(cfg.n_cores)
        ]
        self.scheduler = DecayScheduler(self.policies)
        for i, l2 in enumerate(self.l2s):
            l2.connect(self.l2s, self.l1s[i], self.scheduler)

        self._line_shift = cfg.l2.line_bytes.bit_length() - 1
        # Built once: process_decay_until sits on the decay hot loop and a
        # fresh closure per call was measurable at small decay intervals.
        l2s = self.l2s
        self._fire_turn_off = lambda cid, frame, t: l2s[cid].turn_off_frame(frame, t)

    # ------------------------------------------------------------------
    def line_of(self, byte_addr: int) -> int:
        """Line address of a byte address."""
        return byte_addr >> self._line_shift

    def process_decay_until(self, t_limit: int) -> int:
        """Fire every decay event due at or before ``t_limit``."""
        if not self.policies[0].decay_enabled:
            return 0
        return self.scheduler.process_until(t_limit, self._fire_turn_off)

    def next_decay_due(self):
        """Earliest pending decay deadline (None when idle)."""
        return self.scheduler.next_due()

    # ------------------------------------------------------------------
    def reset_stats(self, now: int) -> None:
        """Warmup boundary: zero all counters, keep all state."""
        for l1 in self.l1s:
            l1.reset_stats()
        for l2 in self.l2s:
            l2.reset_stats(now)
        self.memory.reset_stats()
        from ..coherence.bus import BusStats

        self.bus.stats = BusStats()

    def finalize(self, end: int) -> None:
        """Close occupancy integrals at the end of simulation."""
        for l2 in self.l2s:
            l2.finalize(end)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """System-wide coherence invariants (test hooks).

        * per-cache structural integrity;
        * L1⊆L2 inclusion;
        * single-writer: at most one L2 holds a line in M/E, and an M/E
          copy excludes any other valid copy.
        """
        for l2 in self.l2s:
            l2.check_invariants()
        for l1 in self.l1s:
            l1.check_inclusion()
        owners = {}
        from ..coherence.states import E, M, S

        for l2 in self.l2s:
            for frame, line_addr, state in l2.array.resident_lines():
                if state in (M, E):
                    if line_addr in owners:
                        raise AssertionError(
                            f"line {line_addr:#x} owned exclusively by caches "
                            f"{owners[line_addr]} and {l2.cache_id}"
                        )
                    owners[line_addr] = l2.cache_id
                elif state == S:
                    owners.setdefault(line_addr, None)
        for l2 in self.l2s:
            for frame, line_addr, state in l2.array.resident_lines():
                if state == S and owners.get(line_addr) is not None:
                    raise AssertionError(
                        f"line {line_addr:#x} is S in cache {l2.cache_id} but "
                        f"exclusively owned by cache {owners[line_addr]}"
                    )
