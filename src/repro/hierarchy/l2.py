"""The private, inclusive, MESI-snoopy L2 cache with leakage-policy hooks.

This module is the heart of the reproduction: it binds together the cache
substrate (:mod:`repro.cache`), the MESI+turn-off protocol
(:mod:`repro.coherence`), and the leakage policies (:mod:`repro.core`).

Responsibilities:

* demand accesses from the local L1 (read misses and write-buffer drains),
  including bus transactions, sibling snoops, fills and evictions;
* the snoop side: reacting to remote BusRd/BusRdX/BusUpgr, flushing dirty
  data, invalidating the local L1 copy (inclusion), and — for gating
  techniques — powering lines off on protocol invalidations;
* the decay turn-off path of §III/§IV: Table I pending-write checks, TC/TD
  sequencing, L1 invalidations and writebacks for Modified lines, exact
  occupancy integrals;
* decay-induced-miss attribution via per-set fill counters ("would this
  line still be resident under LRU had decay not gated it?").

Timing is expressed in core cycles; the bus/memory models add their own
queueing.  The simulator guarantees events are presented in global time
order, which lets this class use simple ``next_free`` scalars instead of a
full discrete-event engine.

Hot-path layout: :meth:`access` is monomorphic over the flat columns of
the backing :class:`~repro.cache.array.CacheArray` (residency map, state
bytearray, LRU stamp column) plus the leakage policy's ``last_touch`` /
``armed`` columns and the decay scheduler's pending-bit column, all bound
at construction.  The per-access work of a hit — recency stamp, decay
bookkeeping, scheduler ensure — is a handful of column writes with no
method dispatch; the policy's ``touch_kind`` selects which inline variant
runs (see :class:`~repro.core.policy.LeakagePolicy`).
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, List, Optional

from ..cache.array import CacheArray
from ..cache.geometry import CacheGeometry
from ..coherence.bus import SnoopyBus
from ..coherence.events import (
    A_FLUSH,
    A_WRITEBACK,
    BUS_RD,
    BUS_RDX,
    BUS_UPGR,
)
from ..coherence.mesi import MESIProtocol
from ..coherence.states import E, I, M, OFF, S, TC, TD, is_valid
from ..coherence.turnoff import TurnOffSequencer
from ..core.decay import DecayScheduler
from ..core.occupancy import OccupancyTracker
from ..core.policy import LeakagePolicy, fast_touch_kind
from ..sim.config import CMPConfig
from ..sim.stats import L2Stats
from .memory import MainMemory


class PrivateL2:
    """One core's private L2 bank."""

    def __init__(
        self,
        cache_id: int,
        cfg: CMPConfig,
        bus: SnoopyBus,
        memory: MainMemory,
        policy: LeakagePolicy,
        protocol: Optional[MESIProtocol] = None,
    ) -> None:
        self.cache_id = cache_id
        self.cfg = cfg
        geom = CacheGeometry(
            size_bytes=cfg.l2.size_bytes,
            line_bytes=cfg.l2.line_bytes,
            assoc=cfg.l2.assoc,
        )
        self.geom = geom
        self.array = CacheArray(geom, cfg.l2.policy)
        self.bus = bus
        self.memory = memory
        self.policy = policy
        self.protocol = protocol or MESIProtocol()
        self.sequencer = TurnOffSequencer(self.protocol)
        self.stats = L2Stats()
        self.occupancy = OccupancyTracker(
            geom.n_lines,
            start_powered=policy.start_powered,
            sample_interval=cfg.sample_interval,
        )
        # Gated-at-reset techniques park every frame in OFF.
        if not policy.start_powered:
            self.array.reset_states(OFF)

        #: effective access latency (decay caches pay the +1 wake/gate mux)
        self.hit_latency = cfg.l2.hit_latency + (
            cfg.l2.decay_access_penalty if cfg.technique.is_decay_based else 0
        )

        # Wired by the System after construction.
        self.siblings: List["PrivateL2"] = []
        self.l1 = None  # type: ignore[assignment]  # hierarchy.l1.L1Cache
        self.scheduler: Optional[DecayScheduler] = None

        #: inclusion bits: L1 holds a copy of the line in this frame
        self.l1_present = bytearray(geom.n_lines)
        #: decay-ghosts: line_addr -> set fill counter at gate time
        self._ghosts: Dict[int, int] = {}
        self._set_fills = [0] * geom.n_sets
        # per-interval access counts (transient thermal model)
        self._sample_interval = cfg.sample_interval
        self._access_buckets: List[int] = []

        self._line_bytes = geom.line_bytes
        self._decay_enabled = policy.decay_enabled
        self._gates_on_inval = policy.gates_on_invalidation

        # ---- flat-column bindings for the monomorphic access path ------
        # All of these alias structures that are mutated in place and
        # never replaced over the cache's lifetime.
        self._map = self.array.line_to_frame
        self._state_col = self.array.state
        self._tags = self.array.tags
        self._lru = self.array.lru
        self._assoc = geom.assoc
        self._set_mask = geom.n_sets - 1
        #: inline-touch selector; -1 (virtual dispatch) for anything that
        #: is not exactly a built-in policy class
        self._pkind = fast_touch_kind(policy)
        self._pol_last_touch = getattr(policy, "last_touch", None)
        self._pol_armed = getattr(policy, "armed", None)
        # Decay-deadline constants, so the ensure fast path computes the
        # gate deadline without reaching through policy.timer per access.
        timer = policy.timer
        if timer is not None:
            self._dl_ideal = timer.mode == "ideal"
            self._dl_add = timer.decay_cycles
            self._dl_tick = timer.global_tick
            self._dl_states = timer.n_states
        else:
            self._dl_ideal = True
            self._dl_add = 0
            self._dl_tick = 1
            self._dl_states = 0
        # Scheduler / L1 columns; rebound in connect().
        self._sched_pending: Optional[bytearray] = None
        self._sched_heap: Optional[list] = None
        self._l1_wb_fifo: Optional[dict] = None

    # ------------------------------------------------------------------
    # Wiring / lifecycle
    # ------------------------------------------------------------------
    def connect(self, siblings: List["PrivateL2"], l1, scheduler: DecayScheduler) -> None:
        """Attach sibling caches, the local L1 and the decay scheduler."""
        self.siblings = [s for s in siblings if s is not self]
        self.l1 = l1
        self.scheduler = scheduler
        self._sched_pending = scheduler._pending[self.cache_id]
        self._sched_heap = scheduler._heap
        # Table I pending-write probe, inlined (the FIFO dict is mutated
        # in place and never replaced outside of tests calling clear()).
        self._l1_wb_fifo = l1.write_buffer._fifo

    def reset_stats(self, now: int) -> None:
        """Zero counters at the warmup boundary (state is preserved)."""
        self.stats = L2Stats()
        self.occupancy.rebase(now)
        self._access_buckets = []

    def finalize(self, end: int) -> None:
        """Close integrals and publish them into the stats object."""
        self.stats.on_line_cycles = self.occupancy.finalize(end)

    # ------------------------------------------------------------------
    # Demand side (called by the local L1)
    # ------------------------------------------------------------------
    def access(self, line_addr: int, now: int, is_write: bool) -> int:
        """Serve a demand access; returns total latency in core cycles."""
        st = self.stats
        if is_write:
            st.writes += 1
        else:
            st.reads += 1
        if self._sample_interval:
            self._bump_sample(now)

        frame = self._map.get(line_addr, -1)
        if frame >= 0:
            state = self._state_col[frame]
            if 1 <= state <= 3:  # S/E/M — resident and usable
                # ---- fused hit path: recency stamp + decay bookkeeping
                lru = self._lru
                if lru is not None:
                    ns = lru.next_stamp
                    lru.stamp[frame] = ns
                    lru.next_stamp = ns + 1
                else:
                    self.array.touch(frame)
                pkind = self._pkind
                if pkind == 1:  # fixed decay: touch resets and re-arms
                    self._pol_last_touch[frame] = now
                    self._pol_armed[frame] = 1
                    self.policy.counter_resets += 1
                elif pkind == 2:  # selective decay: arming is state-driven
                    self._pol_last_touch[frame] = now
                    if self._pol_armed[frame]:
                        self.policy.counter_resets += 1
                elif pkind < 0:  # non-built-in policy: generic dispatch
                    self.policy.on_touch(frame, state, now)
                if self._decay_enabled:
                    if pkind > 0:
                        pending = self._sched_pending
                        if not pending[frame] and self._pol_armed[frame]:
                            lt = self._pol_last_touch[frame]
                            if self._dl_ideal:
                                dl = lt + self._dl_add
                            else:
                                tick = self._dl_tick
                                dl = (lt // tick + self._dl_states) * tick
                            pending[frame] = 1
                            heappush(self._sched_heap, (dl, self.cache_id, frame))
                    else:
                        # custom policy: its deadline() is authoritative
                        self.scheduler.ensure(self.cache_id, frame)
                if not is_write:
                    return self.hit_latency
                return self._write_hit(frame, state, now)

        # ---- miss ----------------------------------------------------
        if is_write:
            st.write_misses += 1
        else:
            st.read_misses += 1
        ghosts = self._ghosts
        if ghosts:
            g = ghosts.pop(line_addr, None)
            if g is not None and (
                self._set_fills[line_addr & self._set_mask] - g < self._assoc
            ):
                # Fewer fills than ways since gating: under LRU the line
                # would still be resident — this miss exists only because
                # we gated.
                st.decay_induced_misses += 1

        txn = BUS_RDX if is_write else BUS_RD
        grant, done = self.bus.transact(now, txn, self._line_bytes)

        shared = False
        supplied = False
        for sib in self.siblings:
            had, sup = sib.snoop(line_addr, txn, grant)
            shared = shared or had
            supplied = supplied or sup

        if supplied:
            st.cache_to_cache += 1
            fill_time = done
        else:
            fill_time = self.memory.read_line(done)

        fill_state = self.protocol.fill_state(is_write, shared)
        # Architectural state (tags, states, occupancy, decay timers) is
        # updated at the *request* time: the fill completes ``fill_time -
        # now`` cycles later, but that skew (a memory latency) is orders of
        # magnitude below the decay times, and committing at ``now`` keeps
        # every occupancy/decay event in global-time order.
        self._fill(line_addr, fill_state, now)
        return self.hit_latency + (fill_time - now)

    def _write_hit(self, frame: int, state: int, now: int) -> int:
        """Write-buffer drain hitting a valid line: obtain M rights."""
        if state == M:
            return self.hit_latency
        array = self.array
        if state == E:
            array.set_state(frame, M)
            self.policy.on_state_change(frame, E, M, now)
            return self.hit_latency
        # S: broadcast an upgrade; remote sharers invalidate.
        grant, done = self.bus.upgrade(now)
        for sib in self.siblings:
            sib.snoop(array.tags[frame], BUS_UPGR, grant)
        # Our own copy may have been gated?  No: we hold it in S and we are
        # the upgrader — state can only change via remote snoops, which are
        # serialized behind this transaction.
        array.set_state(frame, M)
        self.policy.on_state_change(frame, S, M, now)
        return self.hit_latency + (done - now)

    # ------------------------------------------------------------------
    # Fill / evict machinery
    # ------------------------------------------------------------------
    def _fill(self, line_addr: int, fill_state: int, now: int) -> None:
        array = self.array
        st = self.stats
        state_col = self._state_col
        # Transient (TC/TD) frames must not be victimized; they only exist
        # when a test drives the turn-off sequencer without auto-grant, so
        # the common case passes no predicate at all (bit-identical: a
        # predicate that never blocks selects the same victim).
        census = array.state_census
        if census[TC] or census[TD]:
            frame = array.choose_victim(
                line_addr, blocked=lambda f: state_col[f] in (TC, TD)
            )
        else:
            frame = array.choose_victim(line_addr)
        if frame < 0:
            raise RuntimeError("no eligible victim (all frames transient?)")

        victim_state = state_col[frame]
        victim_tag = self._tags[frame]
        pkind = self._pkind
        if victim_tag != -1:
            st.evictions += 1
            if victim_state == M:
                # Dirty eviction: post a writeback.
                self.bus.writeback(now)
                self.memory.write_line(now)
                st.writebacks += 1
            if self.l1_present[frame]:
                # Inclusion: dropping the L2 line drops the L1 copy.
                self.l1.invalidate_line(victim_tag)
                self.l1_present[frame] = 0
                st.upper_invalidations += 1
            # on_clear, inlined for the built-in policies
            if pkind > 0:
                self._pol_armed[frame] = 0
            elif pkind < 0:
                self.policy.on_clear(frame)
        if victim_state == OFF:
            self.occupancy.wake(now)
            st.wakes += 1

        array.install(line_addr, frame, fill_state)
        st.fills += 1
        self._set_fills[frame // self._assoc] += 1
        # on_fill, inlined for the built-in policies
        if pkind == 1:  # fixed decay: every fill arms
            self._pol_last_touch[frame] = now
            self._pol_armed[frame] = 1
            self.policy.counter_resets += 1
        elif pkind == 2:  # selective decay: arm only entering S/E
            self._pol_last_touch[frame] = now
            if fill_state == S or fill_state == E:
                self._pol_armed[frame] = 1
                self.policy.counter_resets += 1
            else:
                self._pol_armed[frame] = 0
        elif pkind < 0:
            self.policy.on_fill(frame, fill_state, now)
        if self._decay_enabled:
            if pkind > 0:
                pending = self._sched_pending
                if not pending[frame] and self._pol_armed[frame]:
                    lt = self._pol_last_touch[frame]
                    if self._dl_ideal:
                        dl = lt + self._dl_add
                    else:
                        tick = self._dl_tick
                        dl = (lt // tick + self._dl_states) * tick
                    pending[frame] = 1
                    heappush(self._sched_heap, (dl, self.cache_id, frame))
            else:
                # custom policy: its deadline() is authoritative
                self.scheduler.ensure(self.cache_id, frame)

    # ------------------------------------------------------------------
    # Snoop side (called by sibling caches through the bus broadcast)
    # ------------------------------------------------------------------
    def snoop(self, line_addr: int, txn: int, now: int) -> tuple:
        """React to a remote transaction; returns (had_copy, supplied_data)."""
        frame = self._map.get(line_addr, -1)
        if frame < 0:
            return (False, False)
        state = self._state_col[frame]
        if state == I or state == OFF:
            return (False, False)
        self.stats.snoops_observed += 1

        nxt, actions = self.protocol.snoop(state, txn)
        supplied = bool(actions & A_FLUSH)
        if actions & A_WRITEBACK:
            # M -> S on a remote BusRd: memory picks up the flushed line.
            self.memory.write_line(now)
            self.stats.writebacks += 1

        if nxt == state:
            return (True, supplied)

        if nxt == I:
            self._invalidate_by_protocol(frame, line_addr, now)
        else:
            self.array.set_state(frame, nxt)
            self.policy.on_state_change(frame, state, nxt, now)
            if self._decay_enabled:
                self.scheduler.ensure(self.cache_id, frame)
        return (True, supplied)

    def _invalidate_by_protocol(self, frame: int, line_addr: int, now: int) -> None:
        """Remote BusRdX/BusUpgr killed our copy; maybe gate it (§IV)."""
        st = self.stats
        st.snoop_invalidations += 1
        if self.l1_present[frame]:
            self.l1.invalidate_line(line_addr)
            self.l1_present[frame] = 0
            st.upper_invalidations += 1
        pkind = self._pkind
        if pkind > 0:
            self._pol_armed[frame] = 0
        elif pkind < 0:
            self.policy.on_clear(frame)
        self.array.evict(frame)
        if self._gates_on_inval:
            # "A cache line is switched off when a line is invalidated."
            # No ghost is recorded: the invalidation happens in the
            # baseline too, so a later miss is not technique-induced.
            self.array.set_state(frame, OFF)
            self.occupancy.gate(now)
            st.gated_protocol += 1
        # else: baseline — the frame stays powered in I.

    # ------------------------------------------------------------------
    # Decay turn-off path (called by the DecayScheduler)
    # ------------------------------------------------------------------
    def turn_off_frame(self, frame: int, gate_time: int) -> bool:
        """Raise the turn-off signal on ``frame`` at ``gate_time``.

        Returns True when the line was gated.  Implements §III: Table I
        pending-write denial, TC/TD sequencing with upper-level
        invalidation, and the memory writeback for Modified lines.  The
        stationary-state decisions of
        :meth:`~repro.coherence.turnoff.TurnOffSequencer.initiate` are
        inlined here (S/E: gate unless a write is pending; M: gate with
        writeback; the transient-defer rule cannot trigger because the
        timing simulator resolves transients atomically) — the sequencer
        object remains the reference implementation for protocol tests.
        """
        array = self.array
        state = self._state_col[frame]
        if not 1 <= state <= 3:  # not S/E/M (is_valid, inlined)
            return False  # stale event: line was invalidated/evicted already
        line_addr = self._tags[frame]
        st = self.stats

        if state == M:
            writeback = True
        else:
            # S/E: Table I "if no pending write" — the imminent drain
            # would touch the line and re-arm its timer.
            if line_addr in self._l1_wb_fifo:
                st.gate_denied_pending += 1
                return False
            writeback = False

        if self.l1_present[frame]:
            self.l1.invalidate_line(line_addr)
            st.upper_invalidations += 1
            self.l1_present[frame] = 0

        if writeback:
            # TD: flush the dirty line to memory over the shared bus.
            self.bus.writeback(gate_time)
            self.memory.write_line(gate_time)
            st.writebacks += 1
            st.gated_decay_dirty += 1
        else:
            st.gated_decay_clean += 1

        # Record a ghost so a future miss to this address can be attributed
        # to decay iff the line would still be resident under LRU.
        self._ghosts[line_addr] = self._set_fills[frame // self._assoc]

        pkind = self._pkind
        if pkind > 0:  # on_clear, inlined (only decay policies gate here)
            self._pol_armed[frame] = 0
        elif pkind < 0:
            self.policy.on_clear(frame)
        array.evict(frame)
        array.set_state(frame, OFF)
        self.occupancy.gate(gate_time)
        return True

    # ------------------------------------------------------------------
    # L1 bookkeeping (inclusion bits)
    # ------------------------------------------------------------------
    def note_l1_fill(self, line_addr: int) -> None:
        """L1 installed a copy of ``line_addr``."""
        frame = self._map.get(line_addr, -1)
        if frame < 0:
            raise RuntimeError(
                f"inclusion violation: L1 filled line {line_addr:#x} that is "
                f"not resident in L2 {self.cache_id}"
            )
        self.l1_present[frame] = 1

    def note_l1_evict(self, line_addr: int) -> None:
        """L1 dropped its copy of ``line_addr`` (replacement)."""
        frame = self._map.get(line_addr, -1)
        if frame >= 0:
            self.l1_present[frame] = 0

    # ------------------------------------------------------------------
    # Sampling / invariants
    # ------------------------------------------------------------------
    def _bump_sample(self, now: int) -> None:
        bucket = now // self._sample_interval
        buckets = self._access_buckets
        while len(buckets) <= bucket:
            buckets.append(0)
        buckets[bucket] += 1

    def access_buckets(self) -> List[int]:
        """Per-interval access counts (transient thermal model)."""
        return list(self._access_buckets)

    def check_invariants(self) -> None:
        """Structural invariants, used heavily by the test-suite.

        * the tag array and lookup dicts agree;
        * powered-line count matches the occupancy tracker;
        * every frame with the inclusion bit set holds a valid line.
        """
        self.array.check_integrity()
        powered = sum(1 for s in self.array.state if s != OFF)
        if powered != self.occupancy.on_lines:
            raise AssertionError(
                f"L2 {self.cache_id}: {powered} powered frames but tracker "
                f"says {self.occupancy.on_lines}"
            )
        for frame in range(self.geom.n_lines):
            if self.l1_present[frame] and not is_valid(self.array.state[frame]):
                raise AssertionError(
                    f"L2 {self.cache_id} frame {frame}: inclusion bit set on "
                    f"an invalid line"
                )
