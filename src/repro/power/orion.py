"""Orion-style interconnect energy model.

The paper uses Orion [28] for bus power.  Orion charges per-flit energies
for wire traversal, arbitration, and drivers.  For the shared snoopy bus
we model:

* a per-transaction arbitration + address-broadcast energy (every snooper
  latches the address);
* a per-byte data-wire energy proportional to the wire length implied by
  the four-core floorplan;
* snoop tag-probe energy charged per (transaction × snooper) — this is
  the coherence-specific cost the paper's private-L2 design pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BusEnergyModel:
    """Energy constants for the shared bus (joules)."""

    per_txn_arbitration: float = 40.0e-12
    per_txn_address: float = 160.0e-12    #: address broadcast to all snoopers
    per_byte_data: float = 80.0e-12       #: data wire + driver per byte
    per_snoop_probe: float = 90.0e-12     #: remote tag lookup per snooper

    def energy(
        self,
        txn_counts: Dict[str, int],
        data_bytes: int,
        n_snoopers: int,
    ) -> float:
        """Total bus energy for a run, joules.

        ``txn_counts`` is keyed by transaction name (as recorded in
        ``SimResult.bus_txn_counts``); every transaction broadcasts its
        address and probes the other caches' snoop tags.
        """
        txns = sum(txn_counts.values())
        return (
            txns * (self.per_txn_arbitration + self.per_txn_address)
            + data_bytes * self.per_byte_data
            + txns * max(0, n_snoopers - 1) * self.per_snoop_probe
        )
