"""Power models.

CACTI/Wattch/Orion-style dynamic energy, Liao-style temperature-dependent
leakage, and the system energy pipeline.
"""

from .cacti import CacheEnergyModel, l1_model, l2_model
from .calibration import (
    CLOCK_HZ,
    PAPER_IPC_LOSS_4MB,
    PAPER_L2_SHARE,
    PAPER_REDUCTION_4MB,
    PAPER_REDUCTION_8MB,
    CalibrationReport,
    expected_share,
    share_band,
)
from .energy import EnergyBreakdown, EnergyModel, energy_reduction
from .leakage import LeakageModel, activation_constant, leakage_watts_per_mb
from .orion import BusEnergyModel
from .wattch import CoreEnergyModel

__all__ = [
    "CacheEnergyModel",
    "l1_model",
    "l2_model",
    "CLOCK_HZ",
    "PAPER_IPC_LOSS_4MB",
    "PAPER_L2_SHARE",
    "PAPER_REDUCTION_4MB",
    "PAPER_REDUCTION_8MB",
    "CalibrationReport",
    "expected_share",
    "share_band",
    "EnergyBreakdown",
    "EnergyModel",
    "energy_reduction",
    "LeakageModel",
    "activation_constant",
    "leakage_watts_per_mb",
    "BusEnergyModel",
    "CoreEnergyModel",
]
