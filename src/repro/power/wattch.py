"""Wattch-style core dynamic power model.

The paper uses Wattch [26] for processor structures.  Wattch charges
per-access capacitive energies to microarchitectural units scaled by
activity factors; for the leakage study, per-unit fidelity is unnecessary
— what matters is a realistic *core energy per instruction* (EPI) so the
L2-leakage share of system energy (the denominator of Fig 5(a)) is right.

We model EPI as a base cost plus per-class increments (memory operations
exercise the LSQ/DTLB/L1 ports), plus a clock-tree/static-activity charge
per *cycle* (Wattch's conditional clocking with aggressive gating still
burns ~10–15 % of peak when idle).  Constants target an Alpha-21264-class
core at 70 nm: ~8–12 W at 3 GHz and IPC ≈ 2, consistent with the era's
published numbers and with the calibration targets in
:mod:`repro.power.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.stats import CoreStats


@dataclass(frozen=True)
class CoreEnergyModel:
    """Energy-per-event constants for one core (joules)."""

    epi_base: float = 0.9e-9        #: non-memory instruction
    epi_load_extra: float = 0.6e-9  #: additional for a load (LSQ, L1 port)
    epi_store_extra: float = 0.5e-9  #: additional for a store (buffered)
    per_cycle: float = 0.5e-9       #: clock tree + ungated idle switching
    #: per-cycle energy while stalled (clock gating removes most of it)
    per_stall_cycle: float = 0.2e-9

    def energy(self, stats: CoreStats) -> float:
        """Dynamic core energy for one core's run, joules."""
        mem = stats.loads + stats.stores
        compute = max(0, stats.instructions - mem)
        stall = (
            stats.exposed_memory_cycles
            + stats.mshr_stall_cycles
            + stats.wb_full_stall_cycles
            + stats.barrier_wait_cycles
        )
        active = max(0, stats.cycles - stall)
        return (
            compute * self.epi_base
            + stats.loads * (self.epi_base + self.epi_load_extra)
            + stats.stores * (self.epi_base + self.epi_store_extra)
            + active * self.per_cycle
            + stall * self.per_stall_cycle
        )

    def average_power(self, stats: CoreStats, clock_hz: float) -> float:
        """Mean power over the run, watts."""
        if stats.cycles <= 0:
            return 0.0
        return self.energy(stats) * clock_hz / stats.cycles
