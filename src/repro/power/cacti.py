"""CACTI-style analytical cache energy/area/timing model.

The paper uses CACTI 3.0 [27] for cache power.  We implement an analytical
model with the same structure CACTI uses — decoder, wordline, bitline,
sense-amp and output-driver components whose energies scale with the array
organisation — calibrated to 70 nm-era constants (the paper's technology
generation).  Absolute joules are *calibrated*, not derived from layout;
what the reproduction needs is the correct *relative* scaling of
per-access energy and leakage with cache size and associativity, and a
sensible dynamic/leakage ratio (see :mod:`repro.power.calibration`).

Model sketch (per access):

* the decoder and wordline energy grow with the number of sets decoded
  and the width of a row (``assoc × line_bytes``);
* the bitline energy dominates and scales with the row width times the
  bitline length (∝ number of sets, partitioned into sub-banks of at most
  ``max_rows_per_subarray`` rows as CACTI's organizer would);
* sense amps and output drivers scale with the line width;
* tag-array energy is modeled the same way with tag-sized rows.

Leakage *power* per line is technology-driven and lives in
:mod:`repro.power.leakage`; this module reports the cell count and area
that feed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cache.geometry import CacheGeometry

# ---------------------------------------------------------------------------
# 70 nm-class technology constants (calibrated; see power/calibration.py)
# ---------------------------------------------------------------------------
#: energy to switch one bit-line pair during a read/write, joules
E_BITLINE_PER_BIT = 0.045e-12
#: energy per decoded row (decoder + wordline driver), joules
E_WORDLINE_PER_BIT = 0.012e-12
#: sense amp energy per sensed bit, joules
E_SENSEAMP_PER_BIT = 0.008e-12
#: output driver energy per transferred bit, joules
E_OUTPUT_PER_BIT = 0.010e-12
#: decoder energy per address bit per sub-bank, joules
E_DECODE_PER_ADDRBIT = 0.020e-12
#: SRAM cell area at 70 nm (m^2) — 6T cell, ~0.7 um^2
CELL_AREA_M2 = 0.7e-12
#: array efficiency (cells / total area including periphery)
ARRAY_EFFICIENCY = 0.55
#: CACTI-style subarray height limit (rows) before partitioning
MAX_ROWS_PER_SUBARRAY = 1024
#: tag bits per line (address tag + state/valid bits), approximate
TAG_BITS = 40


@dataclass(frozen=True)
class CacheEnergyModel:
    """Per-access energy and geometry-derived figures for one cache array.

    ``read_energy``/``write_energy`` are joules per access;
    ``cell_count`` includes data + tag cells (the leakage model multiplies
    by per-cell leakage power); ``area_mm2`` feeds the thermal floorplan.
    """

    geometry: CacheGeometry
    read_energy: float
    write_energy: float
    cell_count: int
    area_mm2: float
    subarrays: int

    @classmethod
    def build(cls, geometry: CacheGeometry) -> "CacheEnergyModel":
        """Derive the model from a cache geometry."""
        n_sets = geometry.n_sets
        assoc = geometry.assoc
        line_bits = geometry.line_bytes * 8

        # CACTI-style partitioning: split the row dimension into subarrays
        # no taller than MAX_ROWS_PER_SUBARRAY.
        subarrays = max(1, math.ceil(n_sets / MAX_ROWS_PER_SUBARRAY))
        rows_per_sub = n_sets / subarrays

        # One access decodes a row in one subarray, switches the bitlines
        # of the full row width (all ways read in parallel, as in a
        # parallel-access set-associative array), senses them, and drives
        # one line out.
        row_bits = assoc * (line_bits + TAG_BITS)
        addr_bits = max(1, int(math.log2(max(2, n_sets))))

        # Bitline energy grows with the column height (partitioned).
        bitline_scale = rows_per_sub / MAX_ROWS_PER_SUBARRAY
        e_bitline = row_bits * E_BITLINE_PER_BIT * (0.35 + 0.65 * bitline_scale)
        e_wordline = row_bits * E_WORDLINE_PER_BIT
        e_sense = row_bits * E_SENSEAMP_PER_BIT
        e_decode = addr_bits * subarrays * E_DECODE_PER_ADDRBIT
        e_output = line_bits * E_OUTPUT_PER_BIT

        read = e_decode + e_wordline + e_bitline + e_sense + e_output
        # Writes skip the sense/output stage but drive bitlines harder.
        write = e_decode + e_wordline + e_bitline * 1.15

        cells = geometry.n_lines * (line_bits + TAG_BITS)
        area = cells * CELL_AREA_M2 / ARRAY_EFFICIENCY * 1e6  # mm^2
        return cls(
            geometry=geometry,
            read_energy=read,
            write_energy=write,
            cell_count=cells,
            area_mm2=area,
            subarrays=subarrays,
        )

    # ------------------------------------------------------------------
    def access_energy(self, reads: int, writes: int) -> float:
        """Total dynamic energy for an access mix, joules."""
        return reads * self.read_energy + writes * self.write_energy

    def energy_per_kb(self) -> float:
        """Read energy per KB of capacity (sanity metric for tests)."""
        return self.read_energy / (self.geometry.size_bytes / 1024)


def l2_model(size_bytes: int, line_bytes: int = 64, assoc: int = 8) -> CacheEnergyModel:
    """Convenience: model for one private L2 bank."""
    return CacheEnergyModel.build(CacheGeometry(size_bytes, line_bytes, assoc))


def l1_model(
    size_bytes: int = 32 * 1024, line_bytes: int = 64, assoc: int = 4
) -> CacheEnergyModel:
    """Convenience: model for one L1."""
    return CacheEnergyModel.build(CacheGeometry(size_bytes, line_bytes, assoc))
