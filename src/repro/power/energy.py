"""The energy pipeline.

Activity counts → dynamic energy → thermal/leakage fixpoint → system
energy breakdown.

Reproduces the paper's §V methodology:

* dynamic energy from Wattch-like (cores), CACTI-like (caches) and
  Orion-like (bus) models;
* leakage from the Liao-style temperature-dependent model, with the L2
  contribution weighted by the *powered line-cycles* the simulator
  integrated (this is where the occupancy savings become energy);
* temperatures from the HotSpot-style RC network, iterated with leakage
  to a fixpoint (leakage heats the die, heat raises leakage);
* Gated-Vdd overheads: +5 % leakage area on powered lines, plus the decay
  counters' dynamic and leakage energy for decay-based techniques;
* per the paper (following Abella [10]), off-chip DRAM energy is *not*
  charged — the extra off-chip traffic is reported separately (Fig 4(a)).

The "system" whose energy Fig 5(a)/6(a) normalizes is "cores, L1, L2 and
system bus" (paper footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache.geometry import CacheGeometry
from ..sim.config import CMPConfig
from ..sim.stats import SimResult
from ..thermal.floorplan import cmp_floorplan
from ..thermal.rc_model import ThermalParams, ThermalRCModel
from .cacti import CacheEnergyModel
from .calibration import CLOCK_HZ
from .leakage import LeakageModel
from .orion import BusEnergyModel
from .wattch import CoreEnergyModel

#: Core logic leakage (excluding cache arrays) at the reference
#: temperature, watts per core.
CORE_LOGIC_LEAK_REF = 1.2
#: Dynamic energy of one per-line decay-counter reset, joules.
E_COUNTER_RESET = 0.10e-12
#: Dynamic energy of one per-line counter increment at a global tick.
E_COUNTER_TICK = 0.05e-12
#: Decay-counter bits per line (Kaxiras 2-bit scheme + control).
COUNTER_BITS_PER_LINE = 3


@dataclass
class EnergyBreakdown:
    """System energy decomposition for one simulation run (joules)."""

    core_dynamic: float = 0.0
    l1_dynamic: float = 0.0
    l2_dynamic: float = 0.0
    bus_dynamic: float = 0.0
    counter_dynamic: float = 0.0
    core_leakage: float = 0.0
    l1_leakage: float = 0.0
    l2_leakage: float = 0.0
    counter_leakage: float = 0.0
    duration_s: float = 0.0
    temperatures: Dict[str, float] = field(default_factory=dict)
    fixpoint_iterations: int = 0

    @property
    def dynamic_total(self) -> float:
        """All switching energy."""
        return (
            self.core_dynamic + self.l1_dynamic + self.l2_dynamic
            + self.bus_dynamic + self.counter_dynamic
        )

    @property
    def leakage_total(self) -> float:
        """All static energy."""
        return (
            self.core_leakage + self.l1_leakage + self.l2_leakage
            + self.counter_leakage
        )

    @property
    def total(self) -> float:
        """System energy (cores + L1 + L2 + bus), joules."""
        return self.dynamic_total + self.leakage_total

    @property
    def l2_leakage_share(self) -> float:
        """Fraction of system energy that is L2 leakage."""
        t = self.total
        return self.l2_leakage / t if t else 0.0

    @property
    def average_power(self) -> float:
        """Mean system power over the run, watts."""
        return self.total / self.duration_s if self.duration_s else 0.0

    def summary(self) -> str:
        """Readable multi-line digest."""
        peak = max(self.temperatures.values()) if self.temperatures else 0.0
        return "\n".join([
            f"total={self.total * 1e3:.2f} mJ  (dyn={self.dynamic_total * 1e3:.2f}, "
            f"leak={self.leakage_total * 1e3:.2f})",
            f"L2 leakage={self.l2_leakage * 1e3:.2f} mJ "
            f"({self.l2_leakage_share:.1%} of system)",
            f"avg power={self.average_power:.1f} W  peak T={peak - 273.15:.1f} °C",
        ])


def energy_reduction(baseline: EnergyBreakdown, optimized: EnergyBreakdown) -> float:
    """Paper Fig 5(a)/6(a): relative energy saved vs. the always-on system."""
    if baseline.total <= 0:
        return 0.0
    return 1.0 - optimized.total / baseline.total


class EnergyModel:
    """Evaluates :class:`~repro.sim.stats.SimResult` into joules."""

    def __init__(
        self,
        cfg: CMPConfig,
        clock_hz: float = CLOCK_HZ,
        leakage: Optional[LeakageModel] = None,
        core_model: Optional[CoreEnergyModel] = None,
        bus_model: Optional[BusEnergyModel] = None,
        thermal_params: Optional[ThermalParams] = None,
    ) -> None:
        self.cfg = cfg
        self.clock_hz = clock_hz
        self.leakage = leakage or LeakageModel()
        self.core_model = core_model or CoreEnergyModel()
        self.bus_model = bus_model or BusEnergyModel()

        self.l1_cacti = CacheEnergyModel.build(
            CacheGeometry(cfg.l1.size_bytes, cfg.l1.line_bytes, cfg.l1.assoc))
        self.l2_cacti = CacheEnergyModel.build(
            CacheGeometry(cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.l2.assoc))

        self.floorplan = cmp_floorplan(cfg.n_cores, self.l2_cacti.area_mm2)
        self.thermal = ThermalRCModel(self.floorplan, thermal_params)

        geom = CacheGeometry(cfg.l2.size_bytes, cfg.l2.line_bytes, cfg.l2.assoc)
        self._l2_lines = geom.n_lines
        self._cells_per_line = self.l2_cacti.cell_count // geom.n_lines

    # ------------------------------------------------------------------
    def evaluate(
        self, result: SimResult, max_iter: int = 25, tol_kelvin: float = 0.05
    ) -> EnergyBreakdown:
        """Full pipeline for one run; returns the energy breakdown."""
        cfg = self.cfg
        bd = EnergyBreakdown()
        cycles = max(1, result.total_cycles)
        duration = cycles / self.clock_hz
        bd.duration_s = duration
        gated_tech = cfg.technique.gates_lines

        # ---- dynamic energies ----------------------------------------
        core_dyn = [self.core_model.energy(c) for c in result.cores]
        bd.core_dynamic = sum(core_dyn)

        l1_dyn = []
        for s in result.l1:
            e = self.l1_cacti.access_energy(
                reads=s.loads, writes=s.stores + s.fills)
            l1_dyn.append(e)
        bd.l1_dynamic = sum(l1_dyn)

        l2_dyn = []
        for s in result.l2:
            probe = 0.15 * self.l2_cacti.read_energy
            e = (
                self.l2_cacti.access_energy(reads=s.reads,
                                            writes=s.writes + s.fills)
                + s.snoops_observed * probe
            )
            l2_dyn.append(e)
        bd.l2_dynamic = sum(l2_dyn)

        bd.bus_dynamic = self.bus_model.energy(
            result.bus_txn_counts, result.bus_data_bytes, cfg.n_cores)

        if cfg.technique.is_decay_based:
            avg_on_lines = 0.0
            if result.n_lines_per_l2:
                avg_on_lines = (
                    sum(s.on_line_cycles for s in result.l2) / cycles
                )
            bd.counter_dynamic = (
                result.decay_counter_resets * E_COUNTER_RESET
                + result.decay_counter_ticks * avg_on_lines / max(1, cfg.n_cores)
                * E_COUNTER_TICK
            )

        # ---- leakage/thermal fixpoint --------------------------------
        # Start from a warm guess and iterate: T -> leakage -> power -> T.
        names = self.floorplan.names()
        temps = {nm: self.thermal.params.t_ambient + 25.0 for nm in names}
        lk = self.leakage
        iterations = 0
        for iterations in range(1, max_iter + 1):
            powers: Dict[str, float] = {}
            for i in range(cfg.n_cores):
                t_core = temps[f"core{i}"]
                logic_leak = CORE_LOGIC_LEAK_REF * float(lk.scale(t_core))
                l1_leak_w = lk.array_power(
                    self.l1_cacti.cell_count, 0, t_core,
                    gated_vdd_present=False)
                powers[f"core{i}"] = (
                    core_dyn[i] / duration + l1_dyn[i] / duration
                    + logic_leak + l1_leak_w
                )
            for i, s in enumerate(result.l2):
                t_l2 = temps[f"l2_{i}"]
                on_cells = (s.on_line_cycles / cycles) * self._cells_per_line
                off_cells = (
                    (self._l2_lines - s.on_line_cycles / cycles)
                    * self._cells_per_line
                )
                leak_w = lk.array_power(on_cells, off_cells, t_l2,
                                        gated_vdd_present=gated_tech)
                powers[f"l2_{i}"] = l2_dyn[i] / duration + leak_w
            powers["bus"] = bd.bus_dynamic / duration

            new_temps = self.thermal.steady_state(powers)
            delta = max(abs(new_temps[nm] - temps[nm]) for nm in names)
            temps = new_temps
            if delta < tol_kelvin:
                break
        bd.fixpoint_iterations = iterations
        bd.temperatures = temps

        # ---- leakage energies at the fixpoint temperatures ------------
        core_leak = 0.0
        l1_leak = 0.0
        for i in range(cfg.n_cores):
            t_core = temps[f"core{i}"]
            core_leak += CORE_LOGIC_LEAK_REF * float(lk.scale(t_core)) * duration
            l1_leak += lk.array_power(
                self.l1_cacti.cell_count, 0, t_core,
                gated_vdd_present=False) * duration
        bd.core_leakage = core_leak
        bd.l1_leakage = l1_leak

        l2_leak = 0.0
        counter_leak = 0.0
        for i, s in enumerate(result.l2):
            t_l2 = temps[f"l2_{i}"]
            on_cell_cycles = s.on_line_cycles * self._cells_per_line
            off_cell_cycles = (
                (self._l2_lines * cycles) - s.on_line_cycles
            ) * self._cells_per_line
            p_on = lk.cell_power(t_l2)
            if gated_tech:
                p_on *= lk.gated_vdd_area_overhead
            l2_leak += (
                on_cell_cycles * p_on
                + off_cell_cycles * lk.gated_cell_power(t_l2)
            ) / self.clock_hz
            if cfg.technique.is_decay_based:
                counter_cells = COUNTER_BITS_PER_LINE * self._l2_lines
                counter_leak += (
                    counter_cells * lk.cell_power(t_l2) * duration
                )
        bd.l2_leakage = l2_leak
        bd.counter_leakage = counter_leak
        return bd

    # ------------------------------------------------------------------
    def transient_temperatures(
        self, result: SimResult
    ) -> List[Dict[str, float]]:
        """HotSpot-style transient temperature trace from activity samples.

        Requires the run to have been simulated with
        ``cfg.sample_interval > 0``.  Each sample's block powers come from
        its interval activity (instructions, L2 accesses, powered lines);
        leakage uses the reference-temperature value (one Picard step —
        adequate for the example visualizations, not for the energy
        accounting, which uses the fixpoint in :meth:`evaluate`).
        """
        if not result.samples:
            raise ValueError(
                "no activity samples recorded; set cfg.sample_interval")
        cfg = self.cfg
        iv = result.samples[0].interval
        dt = iv / self.clock_hz
        lk = self.leakage
        t_ref = self.thermal.params.t_ambient + 25.0
        traces = []
        for s in result.samples:
            powers: Dict[str, float] = {}
            for i in range(cfg.n_cores):
                instr = s.core_instructions[i]
                dyn = instr * (self.core_model.epi_base * 1.6)
                powers[f"core{i}"] = (
                    dyn / dt + CORE_LOGIC_LEAK_REF * float(lk.scale(t_ref))
                )
            for i in range(cfg.n_cores):
                acc = s.l2_accesses[i]
                on_cells = (
                    s.l2_on_line_cycles[i] / iv * self._cells_per_line
                )
                dyn = acc * self.l2_cacti.read_energy
                powers[f"l2_{i}"] = dyn / dt + on_cells * lk.cell_power(t_ref)
            powers["bus"] = 0.5
            traces.append(powers)
        return self.thermal.transient(traces, dt)
