"""Calibration of the power-model constants against the paper.

The paper reports energy *reductions* relative to an unoptimized system,
so absolute joules cancel; what must be right is the **L2-leakage share of
system energy** as a function of total cache size.  Back-deriving from
Fig 5(a) (Decay ≈ removes all L2 leakage minus overheads):

========  =======================  ======================
total L2   paper energy reduction   implied L2-leak share
========  =======================  ======================
1 MB       ~9 %  (Decay)            ~10 %
2 MB       ~17 %                    ~19 %
4 MB       ~30 %                    ~32 %
8 MB       ~43 %                    ~46 %
========  =======================  ======================

The constants in :mod:`repro.power.leakage` / :mod:`repro.power.wattch` /
:mod:`repro.power.orion` are set so the model lands inside these bands for
typical benchmark activity (IPC ≈ 2 at 3 GHz, L2 temperature ≈ 355–370 K).
``expected_share`` and ``share_band`` are used by the test-suite to pin
this calibration down; if a constant changes, the tests say which band
broke.

Note the deliberate departure from layout-level physics: per-cell leakage
is ~3× a typical 70 nm datasheet value because the *paper's* implied
shares demand it (their thermal model put the L2 at elevated temperature
and their cores are modest consumers).  The reproduction favours the
paper's internal consistency over external datasheets — see DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Core clock frequency assumed throughout the energy pipeline, Hz.
CLOCK_HZ = 3.0e9

#: Paper-implied L2-leakage share of total system energy, by total MB.
PAPER_L2_SHARE: Dict[int, float] = {1: 0.10, 2: 0.19, 4: 0.32, 8: 0.46}

#: Acceptance band (absolute +-) used by the calibration tests.
SHARE_TOLERANCE = 0.08

#: Paper headline energy reductions at 4 MB (Protocol, Decay, SD), §VI/abstract.
PAPER_REDUCTION_4MB: Dict[str, float] = {
    "protocol": 0.13,
    "decay": 0.30,
    "selective_decay": 0.21,
}

#: Paper headline IPC losses at 4 MB.
PAPER_IPC_LOSS_4MB: Dict[str, float] = {
    "protocol": 0.00,
    "decay": 0.08,
    "selective_decay": 0.02,
}

#: Paper energy reductions at 8 MB ("up to 25%, 44%, and 38%").
PAPER_REDUCTION_8MB: Dict[str, float] = {
    "protocol": 0.25,
    "decay": 0.44,
    "selective_decay": 0.38,
}


def expected_share(total_mb: int) -> float:
    """Paper-implied L2 leakage share for a total cache size."""
    if total_mb not in PAPER_L2_SHARE:
        raise ValueError(f"no calibration target for {total_mb} MB")
    return PAPER_L2_SHARE[total_mb]


def share_band(total_mb: int) -> Tuple[float, float]:
    """(lo, hi) acceptance band for the L2 leakage share."""
    mid = expected_share(total_mb)
    return (max(0.0, mid - SHARE_TOLERANCE), mid + SHARE_TOLERANCE)


@dataclass(frozen=True)
class CalibrationReport:
    """Computed share vs. target for one configuration (test/debug aid)."""

    total_mb: int
    l2_leak_share: float
    target: float

    @property
    def within_band(self) -> bool:
        """True when the share falls inside the acceptance band."""
        lo, hi = share_band(self.total_mb)
        return lo <= self.l2_leak_share <= hi
