"""Temperature- and voltage-aware leakage model (Liao et al. style).

The paper's §V: "the leakage model is based on the work by Liao et al.
[30]" — a microarchitecture-level model where subthreshold leakage scales
super-linearly with temperature and exponentially with threshold/supply
voltages.  We implement the standard BSIM-derived form used there:

    I_sub(T) = I_ref · (T/T_ref)^2 · exp(B · (1/T_ref − 1/T))

with ``B = q·V_th /(n·k)`` the activation constant (≈2600 K for a 0.33 V
threshold and n = 1.5), plus a weakly temperature-dependent gate-oxide
component.  At the default constants leakage roughly doubles every ~22 K,
matching the 70 nm-era data Liao et al. report.

Gated-Vdd cells (Powell et al. [5]) leak "virtually zero"; we charge a
small residual (3 %) plus the 5 % area overhead the paper explicitly
accounts for on powered cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Boltzmann constant in eV/K — used to derive the activation constant.
K_BOLTZMANN_EV = 8.617e-5


def activation_constant(v_th: float = 0.33, ideality: float = 1.5) -> float:
    """``B = V_th / (n·k)`` in kelvin."""
    return v_th / (ideality * K_BOLTZMANN_EV)


@dataclass(frozen=True)
class LeakageModel:
    """Per-cell leakage power as a function of temperature.

    ``p_cell_ref`` is the total (subthreshold + gate) leakage power of one
    SRAM cell at ``t_ref``; it is the main calibration constant (see
    :mod:`repro.power.calibration`).  ``gate_fraction`` of it is
    gate-oxide leakage, which we treat as temperature-independent.
    """

    p_cell_ref: float = 420e-9      #: W per cell at t_ref (calibrated)
    t_ref: float = 353.0            #: reference temperature, K (80 °C)
    b_kelvin: float = 2600.0        #: subthreshold activation constant
    gate_fraction: float = 0.18     #: fraction of p_cell_ref that is gate leakage
    gated_residual: float = 0.03    #: leakage fraction of a Gated-Vdd cell
    gated_vdd_area_overhead: float = 1.05  #: paper: "Gated-Vdd needs 5% increased area"

    def scale(self, temp_k):
        """Subthreshold scaling factor vs. the reference temperature.

        Accepts scalars or numpy arrays.
        """
        t = np.asarray(temp_k, dtype=float)
        s = (t / self.t_ref) ** 2 * np.exp(
            self.b_kelvin * (1.0 / self.t_ref - 1.0 / t)
        )
        return s if s.shape else float(s)

    def cell_power(self, temp_k):
        """Leakage power of one powered cell at ``temp_k``, watts."""
        sub = self.p_cell_ref * (1.0 - self.gate_fraction)
        gate = self.p_cell_ref * self.gate_fraction
        return sub * self.scale(temp_k) + gate

    def gated_cell_power(self, temp_k):
        """Leakage power of one power-gated cell, watts."""
        return self.cell_power(temp_k) * self.gated_residual

    # ------------------------------------------------------------------
    def array_power(
        self,
        cells_on: float,
        cells_gated: float,
        temp_k: float,
        gated_vdd_present: bool = True,
    ) -> float:
        """Leakage power of a cache array with a mix of on/gated cells.

        When the array implements Gated-Vdd (every technique except the
        baseline), powered cells pay the 5 % area overhead.
        """
        p_on = self.cell_power(temp_k)
        if gated_vdd_present:
            p_on *= self.gated_vdd_area_overhead
        return cells_on * p_on + cells_gated * self.gated_cell_power(temp_k)

    def doubling_interval(self) -> float:
        """Temperature increase that doubles subthreshold leakage, K."""
        lo, hi = 1.0, 80.0
        base = self.scale(self.t_ref)
        for _ in range(60):
            mid = (lo + hi) / 2
            if self.scale(self.t_ref + mid) / base > 2.0:
                hi = mid
            else:
                lo = mid
        return (lo + hi) / 2


def leakage_watts_per_mb(
    model: LeakageModel, temp_k: float, bits_per_line: int = 552, line_bytes: int = 64
) -> float:
    """Convenience: leakage of 1 MB of cache (data + tag cells), watts."""
    lines = (1024 * 1024) // line_bytes
    return model.array_power(lines * bits_per_line, 0, temp_k, gated_vdd_present=False)
