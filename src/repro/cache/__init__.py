"""Cache substrate: geometry, tag/state arrays, replacement, MSHRs, write buffers.

These are the building blocks shared by the L1 and L2 models in
:mod:`repro.hierarchy` and by the analytical power models in
:mod:`repro.power`.
"""

from .array import INVALID, CacheArray
from .geometry import CacheGeometry, geometry_kb, is_pow2, log2_exact
from .mshr import MSHR, MSHREntry, MSHRStats
from .replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from .write_buffer import WriteBuffer, WriteBufferStats

__all__ = [
    "INVALID",
    "CacheArray",
    "CacheGeometry",
    "geometry_kb",
    "is_pow2",
    "log2_exact",
    "MSHR",
    "MSHREntry",
    "MSHRStats",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "WriteBuffer",
    "WriteBufferStats",
]
