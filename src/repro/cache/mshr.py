"""Miss Status Holding Registers (MSHRs).

Both cache levels of the paper's system own an MSHR file ("which allows
that multiple hits are served under a pending miss", paper §III, Fig. 1).
The simulator uses MSHRs for two things:

* limiting memory-level parallelism — a core stalls when it needs a new
  MSHR and all entries are busy;
* *merging* secondary misses — an access to a line that already has an
  outstanding miss completes when the primary miss does, without issuing a
  second bus transaction.

Entries are keyed by line address and store the completion time of the
outstanding fill plus merge statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: sentinel completion time meaning "no outstanding entry"
_NEVER = 1 << 62


@dataclass
class MSHREntry:
    """One outstanding miss."""

    line_addr: int
    issue_time: int
    complete_time: int
    is_write: bool
    merged: int = 0  # number of secondary misses coalesced into this entry


@dataclass
class MSHRStats:
    """Aggregate MSHR statistics."""

    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0
    full_stall_cycles: int = 0
    peak_occupancy: int = 0


class MSHR:
    """A small fully-associative MSHR file.

    The simulator retires entries lazily: callers invoke :meth:`release_until`
    with the current time before probing, which frees every entry whose fill
    has completed.
    """

    __slots__ = ("capacity", "_entries", "_min_complete", "stats")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        # lower bound on the earliest outstanding completion; lets
        # release_until() return without scanning when nothing can retire
        self._min_complete = _NEVER
        self.stats = MSHRStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        """True when no entry can be allocated."""
        return len(self._entries) >= self.capacity

    def outstanding(self, line_addr: int) -> MSHREntry | None:
        """Entry for ``line_addr`` if a miss to it is in flight."""
        return self._entries.get(line_addr)

    def release_until(self, now: int) -> int:
        """Free entries whose ``complete_time <= now``; return count freed."""
        entries = self._entries
        if not entries or now < self._min_complete:
            return 0
        done = [a for a, e in entries.items() if e.complete_time <= now]
        for a in done:
            del entries[a]
        self._min_complete = (
            min(e.complete_time for e in entries.values()) if entries else _NEVER
        )
        return len(done)

    def earliest_completion(self) -> int:
        """Smallest completion time among outstanding entries.

        Raises ``ValueError`` when the file is empty (callers must check
        :meth:`is_full`/``len`` first — stalling on an empty MSHR is a bug).
        """
        if not self._entries:
            raise ValueError("MSHR is empty; nothing to wait for")
        # _min_complete is exact while entries exist: allocate() mins it
        # in and release_until() recomputes it after every removal.
        return self._min_complete

    def allocate(
        self, line_addr: int, issue_time: int, complete_time: int, is_write: bool
    ) -> MSHREntry:
        """Allocate an entry; caller must have checked :meth:`is_full`."""
        if line_addr in self._entries:
            raise ValueError(f"duplicate MSHR allocation for line {line_addr:#x}")
        if self.is_full():
            raise RuntimeError("MSHR allocate() on full file")
        entry = MSHREntry(line_addr, issue_time, complete_time, is_write)
        self._entries[line_addr] = entry
        if complete_time < self._min_complete:
            self._min_complete = complete_time
        st = self.stats
        st.allocations += 1
        if len(self._entries) > st.peak_occupancy:
            st.peak_occupancy = len(self._entries)
        return entry

    def merge(self, line_addr: int) -> MSHREntry:
        """Record a secondary miss coalesced onto an existing entry."""
        entry = self._entries[line_addr]
        entry.merged += 1
        self.stats.merges += 1
        return entry

    def note_full_stall(self, cycles: int) -> None:
        """Record a structural stall of ``cycles`` due to a full MSHR file."""
        self.stats.full_stalls += 1
        self.stats.full_stall_cycles += cycles

    def entries(self) -> List[MSHREntry]:
        """Snapshot of outstanding entries (tests/debugging)."""
        return list(self._entries.values())

    def clear(self) -> None:
        """Drop all entries (used when resetting between phases in tests)."""
        self._entries.clear()
        self._min_complete = _NEVER
