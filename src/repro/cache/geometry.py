"""Cache geometry: sizes, indexing, and address decomposition.

Every cache structure in the simulator (L1, L2, and the analytical CACTI
model) shares the same geometry description.  Addresses are plain Python
integers (byte addresses); a *line address* is ``addr >> line_shift``.

The geometry object pre-computes the shift/mask constants used on the
per-access hot path so callers can bind them to locals.
"""

from __future__ import annotations

from dataclasses import dataclass


def is_pow2(x: int) -> bool:
    """Return True if ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def log2_exact(x: int) -> int:
    """Return log2 of a power of two; raise ValueError otherwise."""
    if not is_pow2(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable description of a set-associative cache array.

    Parameters
    ----------
    size_bytes:
        Total data capacity in bytes.  Must be ``sets * assoc * line_bytes``.
    line_bytes:
        Cache line (block) size in bytes.  Power of two.
    assoc:
        Associativity (number of ways).  ``assoc == sets * assoc`` lines for a
        fully-associative cache is expressed by passing ``assoc = n_lines``.
    """

    size_bytes: int
    line_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        if not is_pow2(self.line_bytes):
            raise ValueError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.assoc <= 0:
            raise ValueError(f"assoc must be positive, got {self.assoc}")
        if self.size_bytes <= 0 or self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"size_bytes={self.size_bytes} is not divisible by "
                f"line_bytes*assoc={self.line_bytes * self.assoc}"
            )
        if not is_pow2(self.n_sets):
            raise ValueError(
                f"number of sets must be a power of two, got {self.n_sets} "
                f"(size={self.size_bytes}, line={self.line_bytes}, assoc={self.assoc})"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_lines(self) -> int:
        """Total number of line frames in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def line_shift(self) -> int:
        """Bit shift converting a byte address to a line address."""
        return log2_exact(self.line_bytes)

    @property
    def set_mask(self) -> int:
        """Mask applied to a line address to obtain the set index."""
        return self.n_sets - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return log2_exact(self.n_sets)

    @property
    def offset_bits(self) -> int:
        """Number of line-offset bits."""
        return self.line_shift

    # ------------------------------------------------------------------
    # Address decomposition
    # ------------------------------------------------------------------
    def line_addr(self, byte_addr: int) -> int:
        """Line address (block number) of a byte address."""
        return byte_addr >> self.line_shift

    def set_index(self, byte_addr: int) -> int:
        """Set index of a byte address."""
        return (byte_addr >> self.line_shift) & self.set_mask

    def set_index_of_line(self, line_addr: int) -> int:
        """Set index of a line address."""
        return line_addr & self.set_mask

    def base_of_line(self, line_addr: int) -> int:
        """First byte address covered by ``line_addr``."""
        return line_addr << self.line_shift

    def same_line(self, a: int, b: int) -> bool:
        """True when byte addresses ``a`` and ``b`` fall in the same line."""
        return (a >> self.line_shift) == (b >> self.line_shift)

    def describe(self) -> str:
        """Human-readable one-line summary, e.g. ``1024KB/8way/64B (2048 sets)``."""
        return (
            f"{self.size_bytes // 1024}KB/{self.assoc}way/{self.line_bytes}B "
            f"({self.n_sets} sets)"
        )


def geometry_kb(size_kb: int, line_bytes: int = 64, assoc: int = 8) -> CacheGeometry:
    """Convenience constructor taking the capacity in KB."""
    return CacheGeometry(size_bytes=size_kb * 1024, line_bytes=line_bytes, assoc=assoc)
