"""Replacement policies over flat struct-of-arrays recency state.

The simulator's hot path keeps per-frame recency *columns* owned by the
policy object.  Three policies are provided:

* :class:`LRUPolicy` — true least-recently-used (matches SESC's L2 default),
  implemented as one flat stamp column (`stamp[frame]`) plus a monotonic
  counter: a reference writes one list slot, instead of the list
  ``remove``/``insert`` pair of the object-per-set design this replaced.
* :class:`TreePLRUPolicy` — tree pseudo-LRU, the usual hardware
  approximation for higher associativities; direction bits live in one
  flat ``bytearray``.
* :class:`RandomPolicy` — seeded pseudo-random victim selection.

All policies speak *way indices* within a set; the cache array is
responsible for mapping ways to line frames.  A policy never sees
addresses, which keeps it reusable for both L1 and L2 arrays.

Victim choice can be constrained by a ``blocked`` predicate (e.g. lines in
a transient coherence state must not be evicted); the policy then returns
the best non-blocked way, or ``-1`` when every way is blocked.

Hot-path contract (relied on by :mod:`repro.cache.array`,
:mod:`repro.hierarchy` and :mod:`repro.cpu.core`): for :class:`LRUPolicy`,
recording a reference to frame ``f`` is exactly::

    ns = lru.next_stamp
    lru.stamp[f] = ns
    lru.next_stamp = ns + 1

which fused fast paths inline instead of dispatching ``on_access``.
Victim order is the ascending-stamp order of the set's ways; stamps are
unique (the counter is monotonic and invalidations draw from a disjoint,
descending negative counter), so the order reproduces the recency-list
semantics of the previous implementation bit for bit.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional


class ReplacementPolicy:
    """Interface for replacement policies.

    Sub-classes maintain whatever per-set state they need, sized at
    construction from ``n_sets``/``assoc``.
    """

    name = "abstract"

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc

    def on_access(self, set_idx: int, way: int) -> None:
        """Record a reference to ``way`` of set ``set_idx``."""
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        """Record the allocation of ``way`` (treated as a reference)."""
        self.on_access(set_idx, way)

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Demote ``way`` so it becomes the preferred victim."""
        raise NotImplementedError

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Choose a victim way for ``set_idx``.

        ``blocked(way)`` returning True excludes that way.  Returns ``-1``
        when no way is eligible.
        """
        raise NotImplementedError

    def recency_order(self, set_idx: int) -> List[int]:
        """Ways ordered most-recently-used first (for tests/debugging)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True LRU via one flat per-frame stamp column.

    ``stamp[set * assoc + way]`` holds the stamp of the way's most recent
    event: references draw increasing positive values from ``next_stamp``,
    invalidations draw decreasing negative values from ``_demote_stamp``,
    and each set starts with the descending ramp ``assoc-1 .. 0`` (way 0
    most recent).  Within a set all stamps are distinct, so ascending
    stamp order *is* the recency-list order (victim = smallest stamp) of
    the per-set list implementation this replaced — including after any
    interleaving of accesses and invalidations.
    """

    name = "lru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        # Flat stamp column: each set starts with way 0 most recent.
        self.stamp: List[int] = [
            assoc - 1 - w for _ in range(n_sets) for w in range(assoc)
        ]
        #: next reference stamp (strictly above every stamp ever issued)
        self.next_stamp = assoc
        #: next invalidation stamp (strictly below every stamp ever issued)
        self._demote_stamp = -1

    def on_access(self, set_idx: int, way: int) -> None:
        """Stamp ``way`` with the next (highest) reference stamp."""
        ns = self.next_stamp
        self.stamp[set_idx * self.assoc + way] = ns
        self.next_stamp = ns + 1

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Stamp ``way`` below every live stamp (preferred victim)."""
        ds = self._demote_stamp
        self.stamp[set_idx * self.assoc + way] = ds
        self._demote_stamp = ds - 1

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Smallest-stamp way of the set (first non-blocked one)."""
        assoc = self.assoc
        base = set_idx * assoc
        stamp = self.stamp
        if blocked is None:
            # min() keeps the first minimum, matching a way-order scan.
            return min(range(base, base + assoc), key=stamp.__getitem__) - base
        for way in sorted(range(assoc), key=lambda w: stamp[base + w]):
            if not blocked(way):
                return way
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        """Ways in descending-stamp (MRU-first) order."""
        base = set_idx * self.assoc
        stamp = self.stamp
        return sorted(range(self.assoc), key=lambda w: -stamp[base + w])


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over one flat direction-bit column.

    A complete binary tree of ``assoc - 1`` direction bits per set, packed
    into a single ``bytearray`` (set ``s`` owns the slice starting at
    ``s * (assoc - 1)``).  On a reference the bits along the leaf's path
    are pointed *away* from it; the victim is found by following the bits
    from the root.  ``assoc`` must be a power of two.
    """

    name = "tree-plru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        if assoc & (assoc - 1):
            raise ValueError("TreePLRU requires power-of-two associativity")
        super().__init__(n_sets, assoc)
        self._levels = assoc.bit_length() - 1
        self._stride = max(1, assoc - 1)
        self._bits = bytearray(n_sets * self._stride)

    def on_access(self, set_idx: int, way: int) -> None:
        """Point the bits along ``way``'s path away from it."""
        if self.assoc == 1:
            return
        bits = self._bits
        base = set_idx * self._stride
        node = 0
        levels = self._levels
        for level in range(levels):
            bit = (way >> (levels - 1 - level)) & 1
            bits[base + node] = 0 if bit else 1  # point away from the leaf
            node = 2 * node + 1 + bit

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Point the bits along ``way``'s path toward it (next victim)."""
        if self.assoc == 1:
            return
        bits = self._bits
        base = set_idx * self._stride
        node = 0
        levels = self._levels
        for level in range(levels):
            bit = (way >> (levels - 1 - level)) & 1
            bits[base + node] = bit  # point toward the invalidated leaf
            node = 2 * node + 1 + bit

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Follow the direction bits from the root to the PLRU leaf."""
        if self.assoc == 1:
            if blocked is not None and blocked(0):
                return -1
            return 0
        bits = self._bits
        base = set_idx * self._stride
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = bits[base + node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        if blocked is None or not blocked(way):
            return way
        # Fall back to a linear scan in tree order when the PLRU choice is
        # blocked; hardware would stall, the simulator picks the next leaf.
        for cand in range(self.assoc):
            w = (way + cand) % self.assoc
            if not blocked(w):
                return w
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        """Victim-last pseudo-order from repeated simulated evictions.

        PLRU has no total order; this replays victims on a scratch copy
        of the set's bits (test helper only).
        """
        order: List[int] = []
        base = set_idx * self._stride
        saved = bytes(self._bits[base : base + self._stride])
        try:
            remaining = set(range(self.assoc))
            while remaining:
                v = self.victim(set_idx, blocked=lambda w: w not in remaining)
                order.append(v)
                remaining.discard(v)
                self.on_access(set_idx, v)
        finally:
            self._bits[base : base + self._stride] = saved
        return list(reversed(order))


class RandomPolicy(ReplacementPolicy):
    """Seeded pseudo-random replacement (reproducible across runs)."""

    name = "random"

    def __init__(self, n_sets: int, assoc: int, seed: int = 0xCACE) -> None:
        super().__init__(n_sets, assoc)
        self._rng = random.Random(seed)

    def on_access(self, set_idx: int, way: int) -> None:  # noqa: ARG002
        """References carry no state for random replacement."""
        return

    def on_invalidate(self, set_idx: int, way: int) -> None:  # noqa: ARG002
        """Invalidations carry no state for random replacement."""
        return

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Draw a random start way; scan forward past blocked ways."""
        start = self._rng.randrange(self.assoc)
        for off in range(self.assoc):
            way = (start + off) % self.assoc
            if blocked is None or not blocked(way):
                return way
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        """Way order (random replacement tracks no recency)."""
        return list(range(self.assoc))


_POLICIES = {
    "lru": LRUPolicy,
    "tree-plru": TreePLRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, n_sets: int, assoc: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``tree-plru``/``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(n_sets, assoc)
