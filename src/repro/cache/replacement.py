"""Replacement policies for set-associative caches.

The simulator's hot path keeps per-set recency structures owned by the
policy object.  Three policies are provided:

* :class:`LRUPolicy` — true least-recently-used (matches SESC's L2 default).
* :class:`TreePLRUPolicy` — tree pseudo-LRU, the usual hardware
  approximation for higher associativities.
* :class:`RandomPolicy` — seeded pseudo-random victim selection.

All policies speak *way indices* within a set; the cache array is
responsible for mapping ways to line frames.  A policy never sees
addresses, which keeps it reusable for both L1 and L2 arrays.

Victim choice can be constrained by a ``blocked`` predicate (e.g. lines in
a transient coherence state must not be evicted); the policy then returns
the best non-blocked way, or ``-1`` when every way is blocked.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional


class ReplacementPolicy:
    """Interface for replacement policies.

    Sub-classes maintain whatever per-set state they need, sized at
    construction from ``n_sets``/``assoc``.
    """

    name = "abstract"

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc

    def on_access(self, set_idx: int, way: int) -> None:
        """Record a reference to ``way`` of set ``set_idx``."""
        raise NotImplementedError

    def on_fill(self, set_idx: int, way: int) -> None:
        """Record the allocation of ``way`` (treated as a reference)."""
        self.on_access(set_idx, way)

    def on_invalidate(self, set_idx: int, way: int) -> None:
        """Demote ``way`` so it becomes the preferred victim."""
        raise NotImplementedError

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Choose a victim way for ``set_idx``.

        ``blocked(way)`` returning True excludes that way.  Returns ``-1``
        when no way is eligible.
        """
        raise NotImplementedError

    def recency_order(self, set_idx: int) -> List[int]:
        """Ways ordered most-recently-used first (for tests/debugging)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True LRU via a per-set recency list (MRU first).

    Associativities in this project are small (2–16), so list ``remove`` +
    ``insert`` is faster than any fancier structure and keeps the hot path
    allocation-free.
    """

    name = "lru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        super().__init__(n_sets, assoc)
        # Each set starts with way 0 most recent; victims come from the tail.
        self._stacks: List[List[int]] = [list(range(assoc)) for _ in range(n_sets)]

    def on_access(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        if stack[0] != way:
            stack.remove(way)
            stack.insert(0, way)

    def on_invalidate(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        if stack[-1] != way:
            stack.remove(way)
            stack.append(way)

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        stack = self._stacks[set_idx]
        if blocked is None:
            return stack[-1]
        for way in reversed(stack):
            if not blocked(way):
                return way
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        return list(self._stacks[set_idx])


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU.

    A complete binary tree of ``assoc - 1`` direction bits per set.  On a
    reference the bits along the leaf's path are pointed *away* from it; the
    victim is found by following the bits from the root.  ``assoc`` must be
    a power of two.
    """

    name = "tree-plru"

    def __init__(self, n_sets: int, assoc: int) -> None:
        if assoc & (assoc - 1):
            raise ValueError("TreePLRU requires power-of-two associativity")
        super().__init__(n_sets, assoc)
        self._levels = assoc.bit_length() - 1
        self._bits: List[List[bool]] = [
            [False] * max(1, assoc - 1) for _ in range(n_sets)
        ]

    def on_access(self, set_idx: int, way: int) -> None:
        if self.assoc == 1:
            return
        bits = self._bits[set_idx]
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            bits[node] = bit == 0  # point away from the accessed leaf
            node = 2 * node + 1 + bit

    def on_invalidate(self, set_idx: int, way: int) -> None:
        if self.assoc == 1:
            return
        bits = self._bits[set_idx]
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            bits[node] = bit == 1  # point toward the invalidated leaf
            node = 2 * node + 1 + bit

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        if self.assoc == 1:
            if blocked is not None and blocked(0):
                return -1
            return 0
        bits = self._bits[set_idx]
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = 1 if bits[node] else 0
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        if blocked is None or not blocked(way):
            return way
        # Fall back to a linear scan in tree order when the PLRU choice is
        # blocked; hardware would stall, the simulator picks the next leaf.
        for cand in range(self.assoc):
            w = (way + cand) % self.assoc
            if not blocked(w):
                return w
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        # PLRU has no total order; return victim-last ordering by repeatedly
        # simulating victims on a scratch copy (test helper only).
        order: List[int] = []
        saved = list(self._bits[set_idx])
        try:
            remaining = set(range(self.assoc))
            while remaining:
                v = self.victim(set_idx, blocked=lambda w: w not in remaining)
                order.append(v)
                remaining.discard(v)
                self.on_access(set_idx, v)
        finally:
            self._bits[set_idx] = saved
        return list(reversed(order))


class RandomPolicy(ReplacementPolicy):
    """Seeded pseudo-random replacement (reproducible across runs)."""

    name = "random"

    def __init__(self, n_sets: int, assoc: int, seed: int = 0xCACE) -> None:
        super().__init__(n_sets, assoc)
        self._rng = random.Random(seed)

    def on_access(self, set_idx: int, way: int) -> None:  # noqa: ARG002
        return

    def on_invalidate(self, set_idx: int, way: int) -> None:  # noqa: ARG002
        return

    def victim(
        self, set_idx: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        start = self._rng.randrange(self.assoc)
        for off in range(self.assoc):
            way = (start + off) % self.assoc
            if blocked is None or not blocked(way):
                return way
        return -1

    def recency_order(self, set_idx: int) -> List[int]:
        return list(range(self.assoc))


_POLICIES = {
    "lru": LRUPolicy,
    "tree-plru": TreePLRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, n_sets: int, assoc: int) -> ReplacementPolicy:
    """Factory: build a replacement policy by name (``lru``/``tree-plru``/``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(n_sets, assoc)
