"""Tag/state array for a set-associative cache, laid out struct-of-arrays.

:class:`CacheArray` stores, per line frame, a tag (full line address) and an
integer state code.  It is deliberately policy-agnostic: the same array backs
the write-through L1 (states VALID/INVALID) and the MESI L2 (states
I/S/E/M/OFF/TC/TD).  Coherence logic and leakage policies layer their own
metadata on top, indexed by the *frame index* ``set * assoc + way``.

Performance notes (hot path): residency is one cache-wide dict
``line_addr -> frame`` (a line maps to exactly one set, so per-set tables
buy nothing and cost a set-index computation per probe); states live in a
flat ``bytearray`` column and tags in a flat list of ints.  Python lists
are used for the integer columns deliberately: ``array('q')`` re-boxes an
``int`` object on every subscript, which measures ~30% slower than a list
on the read-dominated access path — the struct-of-arrays win here is the
*indexing discipline* (parallel columns, one frame index), not the C
element width.  Callers on the per-access path bind the columns
(``array.state``, ``array.tags``, ``array.line_to_frame``) to locals.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .geometry import CacheGeometry
from .replacement import LRUPolicy, ReplacementPolicy, make_policy

#: State code shared by every user of CacheArray for "no line present".
INVALID = 0


class CacheArray:
    """Tags + integer states + replacement bookkeeping for one cache.

    Parameters
    ----------
    geometry:
        The cache geometry.
    policy:
        Replacement policy name (``lru``, ``tree-plru``, ``random``) or an
        already-constructed :class:`ReplacementPolicy`.
    """

    __slots__ = (
        "geom",
        "tags",
        "state",
        "state_census",
        "repl",
        "lru",
        "line_to_frame",
        "_assoc",
        "_set_mask",
    )

    def __init__(
        self, geometry: CacheGeometry, policy: str | ReplacementPolicy = "lru"
    ) -> None:
        self.geom = geometry
        n = geometry.n_lines
        #: flat tag column; -1 marks an empty frame
        self.tags: List[int] = [-1] * n
        #: flat state column (codes fit a byte; INVALID == 0 at reset)
        self.state = bytearray(n)
        #: frames currently in each state code — maintained by
        #: install/evict/set_state/reset_states so per-state population
        #: queries are O(1) (clients use it to skip e.g. transient-state
        #: victim filtering when no frame is transient)
        self.state_census = [0] * 256
        self.state_census[INVALID] = n
        if isinstance(policy, str):
            policy = make_policy(policy, geometry.n_sets, geometry.assoc)
        self.repl: ReplacementPolicy = policy
        #: the LRU policy when active, else None — fused fast paths branch
        #: on this to inline the one-slot stamp write
        # exact-type gate, not isinstance: a subclass overriding the
        # recency hooks must never be hijacked by the inlined stamp
        # writes (same discipline as repro.core.policy.fast_touch_kind)
        self.lru: Optional[LRUPolicy] = (
            policy if type(policy) is LRUPolicy else None
        )
        #: cache-wide residency map (line_addr -> frame)
        self.line_to_frame: Dict[int, int] = {}
        self._assoc = geometry.assoc
        self._set_mask = geometry.n_sets - 1

    # ------------------------------------------------------------------
    # Basic indexing
    # ------------------------------------------------------------------
    def frame_index(self, set_idx: int, way: int) -> int:
        """Flat frame index of (set, way)."""
        return set_idx * self._assoc + way

    def set_of_frame(self, frame: int) -> int:
        """Set index owning ``frame``."""
        return frame // self._assoc

    def way_of_frame(self, frame: int) -> int:
        """Way of ``frame`` within its set."""
        return frame % self._assoc

    # ------------------------------------------------------------------
    # Lookup / probe
    # ------------------------------------------------------------------
    def probe(self, line_addr: int) -> int:
        """Return the frame holding ``line_addr`` or ``-1``.  No side effects."""
        return self.line_to_frame.get(line_addr, -1)

    def touch(self, frame: int) -> None:
        """Record a reference for replacement purposes."""
        lru = self.lru
        if lru is not None:
            ns = lru.next_stamp
            lru.stamp[frame] = ns
            lru.next_stamp = ns + 1
        else:
            self.repl.on_access(frame // self._assoc, frame % self._assoc)

    def lookup(self, line_addr: int) -> int:
        """Probe and, on hit, update recency.  Returns frame or ``-1``."""
        frame = self.line_to_frame.get(line_addr, -1)
        if frame >= 0:
            self.touch(frame)
        return frame

    # ------------------------------------------------------------------
    # Allocation / eviction
    # ------------------------------------------------------------------
    def choose_victim(
        self, line_addr: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Pick a victim frame in the set of ``line_addr``.

        Prefers an empty (INVALID-state) frame; otherwise asks the
        replacement policy.  ``blocked(frame)`` excludes frames (e.g. lines
        in transient coherence states).  Returns ``-1`` when everything is
        blocked.
        """
        set_idx = line_addr & self._set_mask
        base = set_idx * self._assoc
        # The empty scan can only succeed when some frame is INVALID, and
        # the census knows that in O(1) — a warm cache (or a gated-OFF
        # decay cache) skips the scan entirely.
        if self.state_census[INVALID]:
            state = self.state
            tags = self.tags
            for way in range(self._assoc):
                frame = base + way
                if state[frame] == INVALID and tags[frame] == -1:
                    if blocked is None or not blocked(frame):
                        return frame
        if blocked is None:
            way = self.repl.victim(set_idx)
        else:
            way = self.repl.victim(set_idx, lambda w: blocked(base + w))
        return -1 if way < 0 else base + way

    def install(self, line_addr: int, frame: int, state: int) -> Tuple[int, int]:
        """Install ``line_addr`` into ``frame`` with ``state``.

        Returns ``(evicted_line_addr, evicted_state)`` where the address is
        ``-1`` if the frame was empty.  The caller is responsible for any
        writeback or coherence action implied by the evicted state.
        """
        tags = self.tags
        line_map = self.line_to_frame
        old_tag = tags[frame]
        old_state = self.state[frame]
        if old_tag != -1:
            del line_map[old_tag]
        tags[frame] = line_addr
        self.state[frame] = state
        census = self.state_census
        census[old_state] -= 1
        census[state] += 1
        line_map[line_addr] = frame
        lru = self.lru
        if lru is not None:
            ns = lru.next_stamp
            lru.stamp[frame] = ns
            lru.next_stamp = ns + 1
        else:
            self.repl.on_fill(frame // self._assoc, frame % self._assoc)
        return (old_tag, old_state)

    def evict(self, frame: int) -> Tuple[int, int]:
        """Remove the line in ``frame`` (state -> INVALID); return (tag, state)."""
        old_tag = self.tags[frame]
        old_state = self.state[frame]
        if old_tag != -1:
            del self.line_to_frame[old_tag]
            self.tags[frame] = -1
        self.state[frame] = INVALID
        census = self.state_census
        census[old_state] -= 1
        census[INVALID] += 1
        lru = self.lru
        if lru is not None:
            ds = lru._demote_stamp
            lru.stamp[frame] = ds
            lru._demote_stamp = ds - 1
        else:
            self.repl.on_invalidate(frame // self._assoc, frame % self._assoc)
        return (old_tag, old_state)

    def set_state(self, frame: int, state: int) -> None:
        """Overwrite the state code of ``frame`` (tag unchanged)."""
        census = self.state_census
        census[self.state[frame]] -= 1
        census[state] += 1
        self.state[frame] = state

    def reset_states(self, state: int) -> None:
        """Put every frame into ``state`` (bulk reset; tags untouched).

        Mutates the column in place so hot-path aliases stay valid.
        """
        n = len(self.state)
        self.state[:] = bytes([state]) * n
        census = self.state_census
        for code in range(256):
            census[code] = 0
        census[state] = n

    # ------------------------------------------------------------------
    # Introspection (tests, stats, debugging)
    # ------------------------------------------------------------------
    def tag_of(self, frame: int) -> int:
        """Line address stored in ``frame`` (-1 when empty)."""
        return self.tags[frame]

    def state_of(self, frame: int) -> int:
        """State code of ``frame``."""
        return self.state[frame]

    def resident_lines(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(frame, line_addr, state)`` for every non-empty frame."""
        tags = self.tags
        state = self.state
        for frame in range(len(tags)):
            if tags[frame] != -1:
                yield frame, tags[frame], state[frame]

    def count_in_state(self, state_code: int) -> int:
        """Number of frames currently in ``state_code`` (O(1), via census)."""
        return self.state_census[state_code]

    def check_integrity(self) -> None:
        """Internal consistency check used by the test-suite.

        Verifies the residency map agrees with the tag column and that no
        line address appears twice.
        """
        assoc = self._assoc
        for line_addr, frame in self.line_to_frame.items():
            if self.tags[frame] != line_addr:
                raise AssertionError(
                    f"lookup says frame {frame} holds {line_addr:#x} but tag "
                    f"array says {self.tags[frame]:#x}"
                )
            if (line_addr & self._set_mask) != frame // assoc:
                raise AssertionError(
                    f"line {line_addr:#x} indexed into wrong set {frame // assoc}"
                )
        n_tags = sum(1 for t in self.tags if t != -1)
        if n_tags != len(self.line_to_frame):
            raise AssertionError(
                f"tag array has {n_tags} lines but lookup has "
                f"{len(self.line_to_frame)}"
            )
        census = self.state_census
        # Check every code that is present OR claims population, so a
        # stale nonzero census entry for a vanished code cannot hide.
        for code in set(self.state) | {c for c in range(256) if census[c]}:
            actual = sum(1 for s in self.state if s == code)
            if census[code] != actual:
                raise AssertionError(
                    f"state census says {census[code]} frames in state "
                    f"{code} but the column holds {actual}"
                )
