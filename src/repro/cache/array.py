"""Tag/state array for a set-associative cache.

:class:`CacheArray` stores, per line frame, a tag (full line address) and an
integer state code.  It is deliberately policy-agnostic: the same array backs
the write-through L1 (states VALID/INVALID) and the MESI L2 (states
I/S/E/M/OFF/TC/TD).  Coherence logic and leakage policies layer their own
metadata on top, indexed by the *frame index* ``set * assoc + way``.

Performance notes (hot path): lookups go through a per-set dict
``line_addr -> way``; state and tags live in flat Python lists.  Callers on
the per-access path should bind ``array.state`` etc. to locals.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from .geometry import CacheGeometry
from .replacement import ReplacementPolicy, make_policy

#: State code shared by every user of CacheArray for "no line present".
INVALID = 0


class CacheArray:
    """Tags + integer states + replacement bookkeeping for one cache.

    Parameters
    ----------
    geometry:
        The cache geometry.
    policy:
        Replacement policy name (``lru``, ``tree-plru``, ``random``) or an
        already-constructed :class:`ReplacementPolicy`.
    """

    __slots__ = ("geom", "tags", "state", "repl", "_lookup", "_assoc")

    def __init__(
        self, geometry: CacheGeometry, policy: str | ReplacementPolicy = "lru"
    ) -> None:
        self.geom = geometry
        n = geometry.n_lines
        self.tags: List[int] = [-1] * n
        self.state: List[int] = [INVALID] * n
        if isinstance(policy, str):
            policy = make_policy(policy, geometry.n_sets, geometry.assoc)
        self.repl: ReplacementPolicy = policy
        self._lookup: List[dict] = [dict() for _ in range(geometry.n_sets)]
        self._assoc = geometry.assoc

    # ------------------------------------------------------------------
    # Basic indexing
    # ------------------------------------------------------------------
    def frame_index(self, set_idx: int, way: int) -> int:
        """Flat frame index of (set, way)."""
        return set_idx * self._assoc + way

    def set_of_frame(self, frame: int) -> int:
        """Set index owning ``frame``."""
        return frame // self._assoc

    def way_of_frame(self, frame: int) -> int:
        """Way of ``frame`` within its set."""
        return frame % self._assoc

    # ------------------------------------------------------------------
    # Lookup / probe
    # ------------------------------------------------------------------
    def probe(self, line_addr: int) -> int:
        """Return the frame holding ``line_addr`` or ``-1``.  No side effects."""
        set_idx = self.geom.set_index_of_line(line_addr)
        way = self._lookup[set_idx].get(line_addr, -1)
        if way < 0:
            return -1
        return set_idx * self._assoc + way

    def touch(self, frame: int) -> None:
        """Record a reference for replacement purposes."""
        self.repl.on_access(frame // self._assoc, frame % self._assoc)

    def lookup(self, line_addr: int) -> int:
        """Probe and, on hit, update recency.  Returns frame or ``-1``."""
        frame = self.probe(line_addr)
        if frame >= 0:
            self.touch(frame)
        return frame

    # ------------------------------------------------------------------
    # Allocation / eviction
    # ------------------------------------------------------------------
    def choose_victim(
        self, line_addr: int, blocked: Optional[Callable[[int], bool]] = None
    ) -> int:
        """Pick a victim frame in the set of ``line_addr``.

        Prefers an empty (INVALID-state) frame; otherwise asks the
        replacement policy.  ``blocked(frame)`` excludes frames (e.g. lines
        in transient coherence states).  Returns ``-1`` when everything is
        blocked.
        """
        set_idx = self.geom.set_index_of_line(line_addr)
        base = set_idx * self._assoc
        state = self.state
        for way in range(self._assoc):
            frame = base + way
            if state[frame] == INVALID and self.tags[frame] == -1:
                if blocked is None or not blocked(frame):
                    return frame
        if blocked is None:
            way = self.repl.victim(set_idx)
        else:
            way = self.repl.victim(set_idx, lambda w: blocked(base + w))
        return -1 if way < 0 else base + way

    def install(self, line_addr: int, frame: int, state: int) -> Tuple[int, int]:
        """Install ``line_addr`` into ``frame`` with ``state``.

        Returns ``(evicted_line_addr, evicted_state)`` where the address is
        ``-1`` if the frame was empty.  The caller is responsible for any
        writeback or coherence action implied by the evicted state.
        """
        set_idx = frame // self._assoc
        way = frame % self._assoc
        old_tag = self.tags[frame]
        old_state = self.state[frame]
        if old_tag != -1:
            del self._lookup[set_idx][old_tag]
        self.tags[frame] = line_addr
        self.state[frame] = state
        self._lookup[set_idx][line_addr] = way
        self.repl.on_fill(set_idx, way)
        return (old_tag, old_state)

    def evict(self, frame: int) -> Tuple[int, int]:
        """Remove the line in ``frame`` (state -> INVALID); return (tag, state)."""
        set_idx = frame // self._assoc
        way = frame % self._assoc
        old_tag = self.tags[frame]
        old_state = self.state[frame]
        if old_tag != -1:
            del self._lookup[set_idx][old_tag]
            self.tags[frame] = -1
        self.state[frame] = INVALID
        self.repl.on_invalidate(set_idx, way)
        return (old_tag, old_state)

    def set_state(self, frame: int, state: int) -> None:
        """Overwrite the state code of ``frame`` (tag unchanged)."""
        self.state[frame] = state

    # ------------------------------------------------------------------
    # Introspection (tests, stats, debugging)
    # ------------------------------------------------------------------
    def tag_of(self, frame: int) -> int:
        """Line address stored in ``frame`` (-1 when empty)."""
        return self.tags[frame]

    def state_of(self, frame: int) -> int:
        """State code of ``frame``."""
        return self.state[frame]

    def resident_lines(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(frame, line_addr, state)`` for every non-empty frame."""
        tags = self.tags
        state = self.state
        for frame in range(len(tags)):
            if tags[frame] != -1:
                yield frame, tags[frame], state[frame]

    def count_in_state(self, state_code: int) -> int:
        """Number of frames currently in ``state_code``."""
        return sum(1 for s in self.state if s == state_code)

    def check_integrity(self) -> None:
        """Internal consistency check used by the test-suite.

        Verifies the lookup dicts agree with the tag array and that no line
        address appears twice.
        """
        seen = {}
        for set_idx, table in enumerate(self._lookup):
            for line_addr, way in table.items():
                frame = set_idx * self._assoc + way
                if self.tags[frame] != line_addr:
                    raise AssertionError(
                        f"lookup says frame {frame} holds {line_addr:#x} but tag "
                        f"array says {self.tags[frame]:#x}"
                    )
                if self.geom.set_index_of_line(line_addr) != set_idx:
                    raise AssertionError(
                        f"line {line_addr:#x} indexed into wrong set {set_idx}"
                    )
                if line_addr in seen:
                    raise AssertionError(f"duplicate line {line_addr:#x}")
                seen[line_addr] = frame
        n_tags = sum(1 for t in self.tags if t != -1)
        if n_tags != len(seen):
            raise AssertionError(
                f"tag array has {n_tags} lines but lookup has {len(seen)}"
            )
