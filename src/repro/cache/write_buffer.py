"""The L1 write buffer.

The paper's L1 caches are write-through; stores are absorbed by a small
write buffer that drains to the private L2 in the background (Fig. 1).  The
buffer matters to the techniques in two ways:

* **turn-off legality** — Table I: a clean L2 line may only be gated "if no
  pending write", i.e. no buffered store to that line is still in flight;
* **store visibility** — a store becomes globally visible (and the L2 line
  becomes Modified, invalidating remote copies) only when its buffer entry
  drains.

The buffer is modeled as a bounded FIFO with *write coalescing*: a store to
a line already buffered merges into the existing entry (standard write
buffer behaviour; keeps L2 write traffic realistic).  Draining is driven by
the owning core's timeline: ``pop_ready`` hands the next entry to the L2
once the L2-side port is free.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class WriteBufferStats:
    """Aggregate write-buffer statistics."""

    inserts: int = 0
    coalesced: int = 0
    drains: int = 0
    full_stalls: int = 0
    full_stall_cycles: int = 0


class WriteBuffer:
    """Bounded coalescing FIFO of pending line writes.

    Entries are ``line_addr -> ready_time`` where ``ready_time`` is the
    earliest cycle the entry may drain (insert time + fixed latency).  The
    FIFO order of the underlying ``OrderedDict`` is the drain order.

    The head entry's ready time is cached in ``_head_ready`` (maintained
    on insert/pop): the simulator's event loop re-validates drain-event
    heap entries against it on every pop, which made the former
    ``next(iter(...))`` per call measurable.  Fused core store paths
    update the cache in lockstep with the FIFO.
    """

    __slots__ = ("capacity", "drain_latency", "_fifo", "_head_ready", "stats")

    def __init__(self, capacity: int, drain_latency: int = 1) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self.drain_latency = drain_latency
        self._fifo: "OrderedDict[int, int]" = OrderedDict()
        self._head_ready = -1
        self.stats = WriteBufferStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    def is_full(self) -> bool:
        """True when a non-coalescing insert would overflow."""
        return len(self._fifo) >= self.capacity

    def has_pending(self, line_addr: int) -> bool:
        """True when a store to ``line_addr`` is still buffered.

        This is the "pending write" check of Table I — the L2 consults it
        before gating a line.
        """
        return line_addr in self._fifo

    def can_accept(self, line_addr: int) -> bool:
        """True when a store to ``line_addr`` can be inserted right now."""
        return line_addr in self._fifo or len(self._fifo) < self.capacity

    def insert(self, line_addr: int, now: int) -> bool:
        """Buffer a store to ``line_addr`` at time ``now``.

        Returns True if the store coalesced into an existing entry.  The
        caller must have checked :meth:`can_accept`.
        """
        st = self.stats
        fifo = self._fifo
        if line_addr in fifo:
            st.coalesced += 1
            st.inserts += 1
            return True
        if len(fifo) >= self.capacity:
            raise RuntimeError("insert() on full write buffer")
        ready = now + self.drain_latency
        if not fifo:
            self._head_ready = ready
        fifo[line_addr] = ready
        st.inserts += 1
        return False

    def head_ready_time(self) -> int:
        """Ready time of the oldest entry; ``-1`` when empty."""
        return self._head_ready

    def pop_ready(self, now: int) -> int:
        """Drain the oldest entry if its ready time has passed.

        Returns the drained line address, or ``-1`` if nothing is ready.
        """
        fifo = self._fifo
        if not fifo:
            return -1
        line_addr, ready = next(iter(fifo.items()))
        if ready > now:
            return -1
        del fifo[line_addr]
        self._head_ready = next(iter(fifo.values())) if fifo else -1
        self.stats.drains += 1
        return line_addr

    def note_full_stall(self, cycles: int) -> None:
        """Record a store stalled ``cycles`` waiting for buffer space."""
        self.stats.full_stalls += 1
        self.stats.full_stall_cycles += cycles

    def pending_lines(self) -> list:
        """Snapshot of buffered line addresses in drain order."""
        return list(self._fifo.keys())

    def clear(self) -> None:
        """Drop all pending entries (tests only)."""
        self._fifo.clear()
        self._head_ready = -1
