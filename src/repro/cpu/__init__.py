"""Simplified out-of-order CPU core timing model."""

from .core import AT_BARRIER, DONE, RUNNING, Core

__all__ = ["Core", "RUNNING", "AT_BARRIER", "DONE"]
