"""Simplified out-of-order core timing model.

The paper simulates Alpha-21264-class cores in SESC.  For the leakage
study what matters is how much of each *extra* L2 miss (decay-induced) the
core can hide; we model this with a per-access overlap budget:

* compute gaps retire at ``issue_width`` instructions/cycle;
* a load's visible stall is ``max(0, latency - overlap(ilp_class))`` —
  dependent (pointer-chase) loads expose almost the full miss, streaming
  loads hide most of it, mirroring how an OoO window behaves;
* stores retire into the write buffer (1 cycle) and only stall when the
  buffer is full;
* a full L1 MSHR file stalls the core until an entry frees (structural
  memory-level-parallelism limit, as in the real machine).

The core exposes ``next_time`` — the global cycle at which its next memory
event occurs — so the simulator can interleave the four cores in exact
global-time order (one-record lookahead).

Event-time contract (relied on by the simulator's next-event heap):

* while ``state == RUNNING``, ``next_time`` is finite and only changes
  inside :meth:`Core.step` / :meth:`Core.release_barrier` — never behind
  the simulator's back;
* every :meth:`Core.step` strictly increases ``next_time`` (each access
  costs at least one cycle), so a heap entry whose time no longer equals
  the core's ``next_time`` is provably stale;
* a non-RUNNING core's ``next_time`` is ``INFINITY`` and the core emits
  no events until :meth:`Core.release_barrier` re-arms it.

Fused L1 fast path: :meth:`Core.step` indexes the L1's flat columns
(residency map, state bytearray, LRU stamp column, write-buffer FIFO)
directly for the two dominant cases — a load that hits the L1, and a
store the write buffer absorbs without stalling — performing exactly the
column writes and counter increments the full `L1Cache.load`/`store`
paths would, with no method dispatch and no result-tuple allocation.
Equivalence notes for the deliberate deviations:

* the fused load hit skips ``mshr.release_until``: MSHR state is only
  *read* on the miss path, which re-releases at its own (later) time
  before any query, so deferring the lazy retirement is unobservable;
* the fused store skips the ``head_ready_time`` before/after comparison:
  a non-stalling insert moves the drain head iff the buffer was empty.

Everything else (barriers, misses, stalls, non-LRU L1 policies) falls
back to the original monomorphic-but-dispatched paths unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..hierarchy.l1 import L1Cache
from ..sim.config import CMPConfig
from ..sim.stats import CoreStats
from ..workloads.trace import FLAG_BARRIER, FLAG_WRITE, ILP_MASK, ILP_SHIFT, Record

INFINITY = float("inf")

#: Core run states.
RUNNING = 0
AT_BARRIER = 1
DONE = 2

_FLAG_SLOW = FLAG_WRITE | FLAG_BARRIER


class Core:
    """One CPU core consuming a workload stream."""

    def __init__(
        self,
        core_id: int,
        cfg: CMPConfig,
        l1: L1Cache,
        trace: Iterator[Record],
    ) -> None:
        self.core_id = core_id
        self.cfg = cfg
        self.l1 = l1
        self.trace = trace
        self.stats = CoreStats()

        self.cycle = 0
        self.state = RUNNING
        self.accesses_done = 0
        self.barrier_arrival = 0
        self._base_cycle = 0          # warmup rebase point
        self._base_instructions = 0
        self._issue_acc = 0           # sub-cycle accumulation of gap issue

        ccfg = cfg.core
        self._issue_width = ccfg.issue_width
        self._overlap = (
            ccfg.overlap_dependent,
            ccfg.overlap_moderate,
            ccfg.overlap_streaming,
        )
        self._line_shift = cfg.l1.line_bytes.bit_length() - 1

        # Fused-path column bindings (see module docstring).  The L1's
        # residency map / state column / FIFO objects are mutated in place
        # and never replaced, so binding them once here is safe; the LRU
        # policy is None when the L1 runs a different replacement policy,
        # which disables the fused paths entirely.
        self._l1_map = l1.line_to_frame
        self._l1_state = l1.state_col
        self._l1_lru = l1.lru
        self._l1_hit_latency = l1.hit_latency
        self._wb = l1.write_buffer
        self._wb_fifo = l1.write_buffer._fifo
        self._wb_capacity = l1.write_buffer.capacity
        self._wb_drain_latency = l1.write_buffer.drain_latency

        # one-record lookahead
        self._pending: Optional[Record] = None
        self.next_time: float = 0
        self._fetch()

        # per-interval instruction counts (transient thermal model)
        self._sample_interval = cfg.sample_interval
        self._instr_buckets: list = []

    @property
    def runnable(self) -> bool:
        """True while this core will emit further timed events."""
        return self.state == RUNNING

    # ------------------------------------------------------------------
    def _fetch(self) -> None:
        """Pull the next record and compute when its memory op issues."""
        rec = next(self.trace, None)
        if rec is None:
            self.state = DONE
            self._pending = None
            self.next_time = INFINITY
            return
        gap = rec[0]
        self._issue_acc += gap
        adv = self._issue_acc // self._issue_width
        self._issue_acc -= adv * self._issue_width
        self._pending = rec
        self.next_time = self.cycle + adv

    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute the pending record; returns the resulting run state."""
        rec = self._pending
        assert rec is not None and self.state == RUNNING
        gap, addr, flags = rec
        st = self.stats
        cycle = self.cycle = int(self.next_time)

        lru = self._l1_lru
        if lru is not None and not (flags & _FLAG_SLOW):
            # ---- fused L1 load path -----------------------------------
            st.instructions += gap + 1
            if self._sample_interval:
                self._bump_sample(cycle, gap + 1)
            line_addr = addr >> self._line_shift
            st.loads += 1
            frame = self._l1_map.get(line_addr, -1)
            if frame >= 0 and self._l1_state[frame]:
                # L1 hit: stamp the LRU column, charge the hit latency.
                ns = lru.next_stamp
                lru.stamp[frame] = ns
                lru.next_stamp = ns + 1
                hit_latency = self._l1_hit_latency
                lst = self.l1.stats
                lst.loads += 1
                lst.load_hits += 1
                lst.load_latency_sum += hit_latency
                exposed = hit_latency - self._overlap[(flags >> ILP_SHIFT) & ILP_MASK]
                if exposed > 0:
                    st.exposed_memory_cycles += exposed
                    self.cycle = cycle + 1 + exposed
                else:
                    self.cycle = cycle + 1
            else:
                latency, mshr_stall = self.l1.load(line_addr, cycle)
                exposed = latency - self._overlap[(flags >> ILP_SHIFT) & ILP_MASK]
                if exposed < 0:
                    exposed = 0
                st.exposed_memory_cycles += exposed
                st.mshr_stall_cycles += mshr_stall
                self.cycle = cycle + 1 + mshr_stall + exposed
            self.accesses_done += 1
            self._fetch()
            return self.state

        if flags & FLAG_BARRIER:
            st.instructions += gap
            st.barriers += 1
            self.state = AT_BARRIER
            self.barrier_arrival = cycle
            self.next_time = INFINITY
            return AT_BARRIER

        st.instructions += gap + 1
        if self._sample_interval:
            self._bump_sample(cycle, gap + 1)
        line_addr = addr >> self._line_shift

        if flags & FLAG_WRITE:
            st.stores += 1
            fifo = self._wb_fifo
            if lru is not None and (line_addr in fifo or len(fifo) < self._wb_capacity):
                # ---- fused store path: buffer absorbs it, no stall ----
                l1 = self.l1
                lst = l1.stats
                lst.stores += 1
                frame = self._l1_map.get(line_addr, -1)
                if frame >= 0 and self._l1_state[frame]:
                    lst.store_hits += 1  # write-through also updates the L1 copy
                    ns = lru.next_stamp
                    lru.stamp[frame] = ns
                    lru.next_stamp = ns + 1
                wst = self._wb.stats
                if line_addr in fifo:
                    wst.coalesced += 1
                else:
                    ready = cycle + self._wb_drain_latency
                    if not fifo:
                        # new head: the drain deadline moved
                        l1._drain_dirty = True
                        self._wb._head_ready = ready
                    fifo[line_addr] = ready
                wst.inserts += 1
                self.cycle = cycle + 1
            else:
                _, stall = self.l1.store(line_addr, cycle)
                st.wb_full_stall_cycles += stall
                self.cycle = cycle + 1 + stall
        else:
            st.loads += 1
            latency, mshr_stall = self.l1.load(line_addr, cycle)
            overlap = self._overlap[(flags >> ILP_SHIFT) & ILP_MASK]
            exposed = latency - overlap
            if exposed < 0:
                exposed = 0
            st.exposed_memory_cycles += exposed
            st.mshr_stall_cycles += mshr_stall
            self.cycle = cycle + 1 + mshr_stall + exposed

        self.accesses_done += 1
        self._fetch()
        return self.state

    # ------------------------------------------------------------------
    def release_barrier(self, release_time: int) -> None:
        """Resume after a barrier whose last participant arrived earlier."""
        assert self.state == AT_BARRIER
        wait = release_time - self.barrier_arrival
        self.stats.barrier_wait_cycles += max(0, wait)
        self.cycle = release_time
        self.state = RUNNING
        self._fetch()

    # ------------------------------------------------------------------
    def rebase_stats(self) -> None:
        """Warmup boundary: restart instruction/cycle accounting."""
        self.stats = CoreStats()
        self._base_cycle = self.cycle
        self._instr_buckets = []

    def finalize_stats(self) -> None:
        """Publish cycle counts into the stats object."""
        self.stats.cycles = self.cycle - self._base_cycle

    # ------------------------------------------------------------------
    def _bump_sample(self, now: int, n_instr: int) -> None:
        bucket = now // self._sample_interval
        buckets = self._instr_buckets
        while len(buckets) <= bucket:
            buckets.append(0)
        buckets[bucket] += n_instr

    def instr_buckets(self) -> list:
        """Per-interval instruction counts (transient thermal model)."""
        return list(self._instr_buckets)
