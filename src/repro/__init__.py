"""repro — CMP L2 leakage optimization via coherence information and decay.

A from-scratch Python reproduction of

    M. Monchiero, R. Canal, A. González, "Using Coherence Information and
    Decay Techniques to Optimize L2 Cache Leakage in CMPs", ICPP 2009.

The package contains a trace-driven 4-core CMP simulator (write-through
L1s, private inclusive MESI-snoopy L2s, shared bus, external memory), the
three leakage-saving techniques of the paper (Protocol turn-off, Decay,
Selective Decay), synthetic models of the six evaluated benchmarks, and a
power/thermal pipeline (CACTI/Wattch/Orion-style dynamic energy, Liao-style
temperature-dependent leakage, HotSpot-style RC thermal network).

Quickstart::

    from repro import CMPConfig, TechniqueConfig, simulate, get_workload

    cfg = CMPConfig().with_total_l2_mb(4).with_technique(
        TechniqueConfig(name="decay", decay_cycles=64_000))
    wl = get_workload("water_ns", scale=0.05)
    result = simulate(cfg, wl)
    print(result.summary())

See ``examples/`` for complete studies and ``benchmarks/`` for the
per-figure reproduction harnesses.
"""

from .sim import (
    BASELINE,
    DECAY,
    PROTOCOL,
    SELECTIVE_DECAY,
    CMPConfig,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    SimResult,
    Simulator,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
    simulate,
)
from .workloads import Workload, get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "DECAY",
    "PROTOCOL",
    "SELECTIVE_DECAY",
    "CMPConfig",
    "CoreConfig",
    "L1Config",
    "L2Config",
    "MemoryConfig",
    "SimResult",
    "Simulator",
    "TechniqueConfig",
    "paper_technique_order",
    "paper_techniques",
    "simulate",
    "Workload",
    "get_workload",
    "list_workloads",
    "__version__",
]
