"""Ensemble statistics: mean / stddev / 95% confidence intervals.

The synthetic workloads draw their access streams from seeded RNGs, so
every headline number of the reproduction carries seed-level variance
the single-run paper matrix silently ignores.  This module turns the
per-replica metric lists an ensemble run produces into summary rows —
one :class:`SummaryStat` (mean, sample stddev, 95% CI half-width) per
metric per point — that figure code renders as ``value ± ci`` columns.

Confidence intervals use the Student-t distribution (the replica count
is small, typically 3–10, where the normal approximation visibly
under-covers); the two-sided 95% critical values are tabulated below so
the harness needs no scipy.  A single replica degenerates gracefully:
stddev and CI are zero, and the table is exactly the single-run values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..harness.metrics import PointMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.query import ResultQuery

#: the PointMetrics attributes an ensemble aggregates (figure metrics)
METRIC_ATTRS: Tuple[str, ...] = (
    "occupancy",
    "miss_rate",
    "bandwidth_increase",
    "amat_increase",
    "ipc_loss",
    "energy_reduction",
    "l2_leakage_share",
)

#: two-sided 95% Student-t critical values, indexed by degrees of freedom
#: 1..30; beyond 30 the normal value is within ~2% and we use 1.96.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass(frozen=True)
class SummaryStat:
    """Mean / sample stddev / 95% CI half-width of one metric's replicas."""

    mean: float
    stddev: float
    ci95: float
    n: int

    def format_pct(self, digits: int = 1) -> str:
        """Render as a percentage ``mean ± ci`` cell, e.g. ``12.3%±0.4``."""
        if self.n <= 1:
            return f"{self.mean * 100:.{digits}f}%"
        return f"{self.mean * 100:.{digits}f}%±{self.ci95 * 100:.{digits}f}"

    def as_dict(self) -> Dict[str, float]:
        """Plain dict (JSON/CSV-friendly)."""
        return {
            "mean": self.mean,
            "stddev": self.stddev,
            "ci95": self.ci95,
            "n": self.n,
        }


def summarize(values: Sequence[float]) -> SummaryStat:
    """Summary statistics of one metric across replicas.

    Uses the *sample* standard deviation (n−1 denominator); the 95% CI
    half-width is ``t(n−1) · s / √n``.  One value yields zero spread —
    an ensemble of one replica is exactly a single run.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty replica list")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return SummaryStat(mean=mean, stddev=0.0, ci95=0.0, n=1)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    sd = math.sqrt(var)
    ci = t_critical_95(n - 1) * sd / math.sqrt(n)
    return SummaryStat(mean=mean, stddev=sd, ci95=ci, n=n)


@dataclass
class EnsembleMetrics:
    """Aggregated figure metrics of one base point across replicas."""

    workload: str
    total_mb: int
    technique: str
    stats: Dict[str, SummaryStat] = field(default_factory=dict)
    #: the base point's n_cores override (None = runner default)
    n_cores: Optional[int] = None

    @property
    def n(self) -> int:
        """Replica count (uniform across metrics)."""
        return next(iter(self.stats.values())).n if self.stats else 0

    def as_dict(self) -> Dict[str, object]:
        """Flat dict: coordinates plus ``<attr>_{mean,stddev,ci95}``."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "total_mb": self.total_mb,
            "technique": self.technique,
            "n_cores": self.n_cores,
            "replicas": self.n,
        }
        for attr, stat in self.stats.items():
            out[f"{attr}_mean"] = stat.mean
            out[f"{attr}_stddev"] = stat.stddev
            out[f"{attr}_ci95"] = stat.ci95
        return out


def aggregate_metrics(
    per_replica: Sequence[Sequence[PointMetrics]],
    attrs: Sequence[str] = METRIC_ATTRS,
    query: Optional["ResultQuery"] = None,
) -> List[EnsembleMetrics]:
    """Collapse per-replica metric lists into one summary row per point.

    ``per_replica[r][i]`` must be replica ``r`` of base point ``i`` —
    the shape :func:`repro.scenarios.ensemble.run_ensemble` produces:
    every replica list has the same length and point order, replicas
    differing only in seed.  Raises on ragged input.

    ``query`` (a :class:`~repro.harness.query.ResultQuery`) restricts
    and orders the output rows: points are filtered by the query's
    coordinate axes *before* aggregation (a dropped point costs
    nothing), and the summary rows are sorted/limited through the same
    :meth:`~repro.harness.query.ResultQuery.arrange` every other
    consumer uses — sort columns resolve against each row's ``stats``
    means.
    """
    if not per_replica:
        return []
    width = len(per_replica[0])
    for r, replica in enumerate(per_replica):
        if len(replica) != width:
            raise ValueError(
                f"ragged ensemble: replica {r} has {len(replica)} points, "
                f"replica 0 has {width}"
            )
    if query is not None:
        keep = [i for i, m in enumerate(per_replica[0]) if query.matches(m)]
        per_replica = [[replica[i] for i in keep] for replica in per_replica]
        width = len(keep)
    out: List[EnsembleMetrics] = []
    for i in range(width):
        column = [replica[i] for replica in per_replica]
        first = column[0]
        for m in column[1:]:
            if (m.workload, m.total_mb, m.technique, m.n_cores) != (
                first.workload,
                first.total_mb,
                first.technique,
                first.n_cores,
            ):
                raise ValueError(
                    f"ensemble column {i} mixes points: "
                    f"{first.workload}/{first.total_mb}/{first.technique} "
                    f"vs {m.workload}/{m.total_mb}/{m.technique}"
                )
        out.append(
            EnsembleMetrics(
                workload=first.workload,
                total_mb=first.total_mb,
                technique=first.technique,
                n_cores=first.n_cores,
                stats={
                    attr: summarize([getattr(m, attr) for m in column])
                    for attr in attrs
                },
            )
        )
    if query is not None:
        out = query.arrange(out)
    return out
