"""Scenario library: named generators of experiment specs.

A *scenario template* is a parameterized family of experiments — "mix
every scientific benchmark with every multimedia one", "sweep decay
intervals against cache sizing", "scale the core count" — that
``build()``s into an ordinary, serializable
:class:`~repro.harness.spec.ExperimentSpec`.  Templates are the layer
above spec files: a spec is one frozen scenario, a template mints them.

The protocol is deliberately tiny (``name``/``description``/``build``)
so projects can register their own families next to the built-ins::

    from repro.scenarios import register_scenario

    class NightlyTemplate:
        name = "nightly"
        description = "the grid the nightly lane runs"

        def build(self, **params):
            return grid_spec(...)

    register_scenario(NightlyTemplate())

Built-in families (``repro-cmp scenario list``):

* ``multiprogram_mix`` — scientific×multimedia co-schedules through the
  ``mix:`` workload layer;
* ``mix_smoke`` — a 2-replica miniature of it for CI lanes;
* ``sizing_sensitivity`` — cache-capacity × decay-interval grid à la
  Bai et al. (PAPERS.md), with off-paper decay times as custom
  technique tables;
* ``core_scaling`` — the paper's 4-core matrix stretched to 2/4/8 cores
  via per-point ``n_cores`` overrides.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, Sequence, Tuple

from ..harness.spec import ExperimentSpec, grid_spec
from ..sim.config import (
    BASELINE,
    DECAY,
    SELECTIVE_DECAY,
    TechniqueConfig,
)
from ..workloads.mix import mix_name
from ..workloads.registry import MULTIMEDIA, SCIENTIFIC


class ScenarioTemplate(Protocol):
    """A named, parameterized generator of experiment specs."""

    #: registry name, e.g. ``"multiprogram_mix"``
    name: str
    #: one-line summary shown by ``repro-cmp scenario list``
    description: str

    def build(self, **params: Any) -> ExperimentSpec:
        """Materialize one spec; ``params`` override the family defaults."""
        ...


#: scenario registry: name -> template instance
_REGISTRY: Dict[str, ScenarioTemplate] = {}


def register_scenario(template: ScenarioTemplate) -> None:
    """Register a scenario template under its ``name``."""
    if template.name in _REGISTRY:
        raise ValueError(f"scenario {template.name!r} already registered")
    _REGISTRY[template.name] = template


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioTemplate:
    """Look up a template by name (``ValueError`` lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; one of: {', '.join(scenario_names())}"
        ) from None


def build_scenario(name: str, **params: Any) -> ExperimentSpec:
    """Build one spec from a registered family (convenience wrapper)."""
    return get_scenario(name).build(**params)


# ---------------------------------------------------------------------------
# Built-in families
# ---------------------------------------------------------------------------
class MultiProgramMixTemplate:
    """Scientific × multimedia co-schedules over the mix layer.

    Every (scientific, multimedia) pair becomes one ``mix:sci+mm``
    workload — cores alternate between the two programs — swept over
    the given sizes and techniques.  This is the consolidation story
    the paper's homogeneous matrix cannot answer: how much leakage the
    techniques recover when reuse profiles differ *across* cores.
    """

    name = "multiprogram_mix"
    description = "scientific+multimedia co-schedule mixes (mix: layer)"

    def build(
        self,
        pairs: Sequence[Tuple[str, str]] = (),
        sizes_mb: Sequence[int] = (2, 4),
        techniques: Sequence[str] = (
            BASELINE,
            "protocol",
            "decay64K",
            "sel_decay64K",
        ),
        **run: Any,
    ) -> ExperimentSpec:
        """Build the mix grid; ``pairs`` defaults to SCIENTIFIC×MULTIMEDIA."""
        pairs = list(pairs) or [
            (sci, mm) for sci in SCIENTIFIC for mm in MULTIMEDIA
        ]
        return grid_spec(
            name=self.name,
            description=self.description,
            workloads=[mix_name(pair) for pair in pairs],
            sizes_mb=sizes_mb,
            techniques=techniques,
            run=dict(run),
        )


class MixSmokeTemplate:
    """A miniature 2-replica mix ensemble for CI smoke lanes."""

    name = "mix_smoke"
    description = "tiny 1-mix, 2-replica ensemble (CI smoke lane)"

    def build(
        self,
        pair: Tuple[str, str] = ("water_ns", "mpeg2dec"),
        replicas: int = 2,
        **run: Any,
    ) -> ExperimentSpec:
        """One mix, one size, three techniques, ``replicas`` seeds."""
        context = {"scale": 0.05}
        context.update(run)
        return grid_spec(
            name=self.name,
            description=self.description,
            workloads=[mix_name(pair)],
            sizes_mb=(1,),
            techniques=(BASELINE, "protocol", "decay64K"),
            run=context,
            ensemble={"replicas": replicas},
        )


class SizingSensitivityTemplate:
    """Cache-capacity × decay-interval sensitivity grid (à la Bai et al.).

    Bai et al. (PAPERS.md) show leakage trade-offs shift materially
    with cache sizing, so this family crosses the paper's capacities
    with a *denser* decay-interval axis than the paper's three nominal
    times.  Off-paper intervals are emitted as ``[techniques.<label>]``
    tables with literal (pre-scaled) cycles — custom tables are never
    rescaled on load — and the matching ``scale`` is pinned in the
    spec's ``[run]`` table so the file stays self-consistent.
    """

    name = "sizing_sensitivity"
    description = "capacity x decay-interval grid (Bai et al. sensitivity)"

    def build(
        self,
        workloads: Sequence[str] = ("water_ns", "mpeg2dec"),
        sizes_mb: Sequence[int] = (1, 2, 4, 8),
        decay_cycles: Sequence[int] = (16_000, 64_000, 256_000, 512_000),
        selective: bool = True,
        scale: float = 0.1,
        **run: Any,
    ) -> ExperimentSpec:
        """Cross ``sizes_mb`` with decay intervals for both decay flavors."""
        labels: List[str] = [BASELINE, "protocol"]
        custom: Dict[str, TechniqueConfig] = {}
        flavors = [(DECAY, "decay")] + (
            [(SELECTIVE_DECAY, "sel_decay")] if selective else []
        )
        for tech, prefix in flavors:
            for cycles in decay_cycles:
                label = f"{prefix}@{cycles // 1000}K"
                custom[label] = TechniqueConfig(
                    name=tech,
                    decay_cycles=max(1, int(round(cycles * scale))),
                )
                labels.append(label)
        context = {"scale": scale}
        context.update(run)
        return grid_spec(
            name=self.name,
            description=self.description,
            workloads=workloads,
            sizes_mb=sizes_mb,
            techniques=labels,
            custom_techniques=custom,
            run=context,
        )


class CoreScalingTemplate:
    """Core-count scaling at fixed total L2 (per-point overrides).

    The paper fixes 4 cores; this family replays selected points at
    2/4/8 cores via the point-level ``n_cores`` override, keeping the
    *total* L2 constant so per-core capacity shrinks as cores grow —
    the sizing trade-off the coherence techniques are sensitive to.
    """

    name = "core_scaling"
    description = "2/4/8-core scaling at fixed total L2 (n_cores overrides)"

    def build(
        self,
        workloads: Sequence[str] = ("water_ns", "mpeg2dec"),
        total_mb: int = 4,
        core_counts: Sequence[int] = (2, 4, 8),
        techniques: Sequence[str] = (
            BASELINE,
            "protocol",
            "decay64K",
            "sel_decay64K",
        ),
        **run: Any,
    ) -> ExperimentSpec:
        """Explicit point list: every (workload, cores, technique) combo."""
        points = [
            {
                "workload": wl,
                "size_mb": int(total_mb),
                "technique": tech,
                "n_cores": int(n),
            }
            for n in core_counts
            for wl in workloads
            for tech in techniques
        ]
        return ExperimentSpec(
            name=self.name,
            description=self.description,
            points=tuple(points),
            run=dict(run),
        )


for _template in (
    MultiProgramMixTemplate(),
    MixSmokeTemplate(),
    SizingSensitivityTemplate(),
    CoreScalingTemplate(),
):
    register_scenario(_template)
