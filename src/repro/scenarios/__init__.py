"""Scenario & ensemble subsystem: spec families, replication, statistics.

Layered on :mod:`repro.harness.spec`, this package turns the harness
from "replay the paper's one matrix" into "generate, run, and
statistically summarize families of experiments":

* :mod:`repro.scenarios.templates` — the scenario library: a
  :class:`~repro.scenarios.templates.ScenarioTemplate` protocol plus a
  registry of built-in families (multi-program mixes, sizing
  sensitivity, core scaling);
* :mod:`repro.scenarios.ensemble` — the ensemble engine:
  :class:`~repro.scenarios.ensemble.EnsembleSpec` expands one spec into
  N seed replicas that any sweep backend executes unchanged;
* :mod:`repro.scenarios.stats` — mean/stddev/95%-CI aggregation of the
  per-replica metrics into ``value ± ci`` figure rows.

CLI: ``repro-cmp scenario list|expand|run`` and ``--replicas N``.
"""

from .ensemble import EnsembleResult, EnsembleSpec, run_ensemble
from .stats import (
    METRIC_ATTRS,
    EnsembleMetrics,
    SummaryStat,
    aggregate_metrics,
    summarize,
    t_critical_95,
)
from .templates import (
    CoreScalingTemplate,
    MixSmokeTemplate,
    MultiProgramMixTemplate,
    ScenarioTemplate,
    SizingSensitivityTemplate,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "EnsembleMetrics",
    "EnsembleResult",
    "EnsembleSpec",
    "METRIC_ATTRS",
    "ScenarioTemplate",
    "SummaryStat",
    "CoreScalingTemplate",
    "MixSmokeTemplate",
    "MultiProgramMixTemplate",
    "SizingSensitivityTemplate",
    "aggregate_metrics",
    "build_scenario",
    "get_scenario",
    "register_scenario",
    "run_ensemble",
    "scenario_names",
    "summarize",
    "t_critical_95",
]
