"""The ensemble engine: one spec → N seed replicas → aggregated CIs.

An :class:`EnsembleSpec` wraps an
:class:`~repro.harness.spec.ExperimentSpec` with a replication policy:
``replicas`` copies of every expanded point, replica ``r`` pinning seed
``base_seed + r·seed_stride`` (a point that already pins its own seed is
offset from *that* seed instead, so explicit off-grid seeds stay
distinct across replicas).  Replicas are ordinary
:class:`~repro.harness.spec.SweepPoint` lists — points remain the
transport unit, so any :class:`~repro.harness.backends.base.SweepBackend`
executes an ensemble unchanged and every replica's results land in the
ordinary result cache under its own seed-resolved digest.

:func:`run_ensemble` is the whole life-cycle: expand, fan out through
the runner's backend (when it has one), assemble per-replica metric
lists in deterministic order, and aggregate them into
mean/stddev/95%-CI rows via :mod:`repro.scenarios.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..harness.metrics import PointMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..harness.query import ResultQuery
from ..harness.runner import SweepRunner
from ..harness.spec import ExperimentSpec, SpecError, SweepPoint
from .stats import METRIC_ATTRS, EnsembleMetrics, aggregate_metrics


@dataclass
class EnsembleSpec:
    """A replication policy over one experiment spec.

    ``base_seed=None`` means "inherit the executing runner's seed" —
    the spec file then replays under any ``--seed`` with the replicas
    strided off it, while a pinned ``base_seed`` makes the ensemble
    byte-reproducible regardless of runner flags.
    """

    spec: ExperimentSpec
    replicas: int = 1
    base_seed: Optional[int] = None
    seed_stride: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.replicas, int) or self.replicas < 1:
            raise SpecError(
                f"replicas must be a positive integer, got {self.replicas!r}"
            )
        if self.seed_stride == 0:
            raise SpecError("seed_stride must be non-zero")

    @classmethod
    def from_spec(
        cls, spec: ExperimentSpec, replicas: Optional[int] = None
    ) -> "EnsembleSpec":
        """Build from a spec's ``[ensemble]`` table, with a CLI override.

        ``replicas`` (the ``--replicas`` flag) beats the table; a spec
        with no table and no override is a 1-replica ensemble, which
        degenerates to an ordinary single run.
        """
        table = spec.ensemble
        return cls(
            spec=spec,
            replicas=(
                replicas if replicas is not None else table.get("replicas", 1)
            ),
            base_seed=table.get("base_seed"),
            seed_stride=table.get("seed_stride", 1),
        )

    # ------------------------------------------------------------------
    def replica_seeds(self, runner_seed: int) -> List[int]:
        """The seed each replica pins (for unseeded points)."""
        base = self.base_seed if self.base_seed is not None else runner_seed
        return [base + r * self.seed_stride for r in range(self.replicas)]

    def expand(
        self, scale: float = 1.0, runner_seed: int = 1
    ) -> List[List[SweepPoint]]:
        """Per-replica point lists (``result[r][i]`` = replica r of point i).

        Every replica has identical length and order; replica ``r``
        differs from the base expansion only in its pinned ``seed``.
        """
        base_points = self.spec.expand(scale=scale)
        seeds = self.replica_seeds(runner_seed)
        out: List[List[SweepPoint]] = []
        for r, seed in enumerate(seeds):
            out.append(
                [
                    replace(
                        p,
                        seed=(
                            p.seed + r * self.seed_stride
                            if p.seed is not None
                            else seed
                        ),
                    )
                    for p in base_points
                ]
            )
        return out


@dataclass
class EnsembleResult:
    """Everything one ensemble run produced.

    ``metrics[r][i]`` is replica ``r`` of base point ``i``;
    ``aggregated[i]`` is that point's mean/stddev/CI summary row.
    """

    spec_name: str
    replicas: List[List[SweepPoint]]
    metrics: List[List[PointMetrics]]
    aggregated: List[EnsembleMetrics] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        """How many replicas ran."""
        return len(self.replicas)

    @property
    def n_points(self) -> int:
        """How many base points each replica expanded to."""
        return len(self.replicas[0]) if self.replicas else 0


def run_ensemble(
    runner: SweepRunner,
    ensemble: EnsembleSpec,
    attrs: Sequence[str] = METRIC_ATTRS,
    query: Optional["ResultQuery"] = None,
) -> EnsembleResult:
    """Execute an ensemble through ``runner`` and aggregate its metrics.

    ``query`` restricts and orders the *aggregated* rows (see
    :func:`repro.scenarios.stats.aggregate_metrics`); the raw
    per-replica ``metrics`` grid stays complete, so a filtered view
    never hides data from downstream consumers.

    When ``runner`` is a
    :class:`~repro.harness.executor.ParallelSweepRunner`, the flattened
    replica list (plus every baseline twin) is prefetched through its
    backend in one fan-out — replicas are plain points, so local pools,
    socket workers, and batch queues all parallelize across replicas and
    points alike.  Metric assembly then runs in deterministic base-point
    order per replica, which makes the aggregated table independent of
    backend interleaving.
    """
    replicas = ensemble.expand(scale=runner.scale, runner_seed=runner.seed)
    flat = [p for replica in replicas for p in replica]
    prefetch = getattr(runner, "prefetch_points", None)
    if prefetch is not None:
        prefetch(flat)
    metrics = [[runner.metrics_for(p) for p in replica] for replica in replicas]
    return EnsembleResult(
        spec_name=ensemble.spec.name,
        replicas=replicas,
        metrics=metrics,
        aggregated=aggregate_metrics(metrics, attrs=attrs, query=query),
    )
