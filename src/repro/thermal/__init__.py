"""HotSpot-style thermal modeling: floorplan + lumped RC network."""

from .floorplan import Block, Floorplan, cmp_floorplan
from .rc_model import T_AMBIENT, ThermalParams, ThermalRCModel

__all__ = [
    "Block",
    "Floorplan",
    "cmp_floorplan",
    "T_AMBIENT",
    "ThermalParams",
    "ThermalRCModel",
]
