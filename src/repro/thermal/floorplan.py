"""CMP floorplan for the thermal model.

A HotSpot-style block floorplan of the paper's 4-core CMP: four cores
along the die edges, each with its private L2 bank adjacent, and the
shared bus as a central spine.  Blocks carry areas (cores fixed, L2 banks
from the CACTI area model) and rectangle coordinates; adjacency (shared
boundary lengths) feeds the lateral thermal conductances of the RC model.

The layout is parametric in the L2 size so the 1–8 MB sweep produces
physically growing dies, which is what makes bigger caches run slightly
cooler per watt (more spreading area) — a second-order effect HotSpot
captures and we keep.

The adjacency computation uses a networkx graph so tests can reason about
connectivity directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

#: Area of one Alpha-21264-class core at 70 nm, mm^2 (includes L1s).
CORE_AREA_MM2 = 11.0
#: Width of the central bus spine, mm.
BUS_WIDTH_MM = 0.6


@dataclass(frozen=True)
class Block:
    """One floorplan rectangle (mm units)."""

    name: str
    x: float
    y: float
    w: float
    h: float

    @property
    def area(self) -> float:
        """Block area in mm^2."""
        return self.w * self.h

    def shared_edge(self, other: "Block") -> float:
        """Length of the boundary shared with ``other`` (0 if not adjacent)."""
        eps = 1e-9
        # vertical adjacency (side by side)
        if abs((self.x + self.w) - other.x) < eps or abs((other.x + other.w) - self.x) < eps:
            lo = max(self.y, other.y)
            hi = min(self.y + self.h, other.y + other.h)
            return max(0.0, hi - lo)
        # horizontal adjacency (stacked)
        if abs((self.y + self.h) - other.y) < eps or abs((other.y + other.h) - self.y) < eps:
            lo = max(self.x, other.x)
            hi = min(self.x + self.w, other.x + other.w)
            return max(0.0, hi - lo)
        return 0.0


@dataclass
class Floorplan:
    """A named set of blocks plus the adjacency graph."""

    blocks: List[Block]
    graph: nx.Graph = field(default_factory=nx.Graph)

    def __post_init__(self) -> None:
        g = nx.Graph()
        for b in self.blocks:
            g.add_node(b.name, area=b.area)
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1:]:
                edge = a.shared_edge(b)
                if edge > 1e-9:
                    g.add_edge(a.name, b.name, length=edge)
        self.graph = g

    def names(self) -> List[str]:
        """Block names in declaration order."""
        return [b.name for b in self.blocks]

    def block(self, name: str) -> Block:
        """Look up a block."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(name)

    @property
    def die_area(self) -> float:
        """Total die area, mm^2."""
        return sum(b.area for b in self.blocks)


def cmp_floorplan(n_cores: int, l2_bank_area_mm2: float) -> Floorplan:
    """Build the 4-core + private-L2 + bus floorplan.

    Layout (2x2 CMP)::

        +--------+--------+ +--------+--------+
        | core0  |  L2 0  | |  L2 1  | core1  |
        +--------+--------+B+--------+--------+
        | core2  |  L2 2  |U|  L2 3  | core3  |
        +--------+--------+S+--------+--------+

    Cores sit on the outer edges, L2 banks inside, the bus spine in the
    middle — the arrangement the paper's Figure 1 implies (L2s snoop the
    shared bus directly).  Heights are normalized per row; widths derive
    from areas so every block keeps its required silicon.
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    rows = max(1, (n_cores + 1) // 2)
    row_h = max(2.0, (CORE_AREA_MM2 ** 0.5))
    core_w = CORE_AREA_MM2 / row_h
    l2_w = l2_bank_area_mm2 / row_h

    blocks: List[Block] = []
    for r in range(rows):
        y = r * row_h
        left = n_cores > 2 * r
        right = n_cores > 2 * r + 1
        if left:
            cid = 2 * r
            blocks.append(Block(f"core{cid}", 0.0, y, core_w, row_h))
            blocks.append(Block(f"l2_{cid}", core_w, y, l2_w, row_h))
        if right:
            cid = 2 * r + 1
            bx = core_w + l2_w + BUS_WIDTH_MM
            blocks.append(Block(f"l2_{cid}", bx, y, l2_w, row_h))
            blocks.append(Block(f"core{cid}", bx + l2_w, y, core_w, row_h))
    blocks.append(Block("bus", core_w + l2_w, 0.0, BUS_WIDTH_MM, rows * row_h))
    return Floorplan(blocks)
