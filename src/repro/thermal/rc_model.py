"""HotSpot-style lumped RC thermal network.

The paper uses HotSpot 3.0.2 [29].  HotSpot's block mode abstracts the die
into one thermal node per floorplan block with

* lateral conductances between adjacent blocks proportional to their
  shared boundary length,
* a vertical conductance per block through the heat spreader/sink to
  ambient proportional to block area,
* a heat capacity per block proportional to area (for transients).

Steady state solves ``G · T = P + G_vert · T_amb`` (a symmetric positive
definite system, solved with ``scipy.linalg.solve``); the transient mode
integrates ``C dT/dt = P − G·(T − …)`` with an implicit Euler step, which
is unconditionally stable so the power-trace interval can be used
directly as the timestep (the paper dumped power every 10 000 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from .floorplan import Floorplan

#: Default ambient (air-in-case) temperature, K.
T_AMBIENT = 318.0


@dataclass(frozen=True)
class ThermalParams:
    """Physical constants of the package model.

    ``g_lateral_per_mm`` — W/K per mm of shared block boundary (silicon
    spreading); ``g_vertical_per_mm2`` — W/K per mm² of block area through
    the package to ambient; ``c_per_mm2`` — J/K per mm² of die (silicon +
    spreader share).  Defaults give core-sized hot spots a few tens of K
    above ambient at ~10 W — HotSpot-typical for 70 nm-era packages.
    """

    g_lateral_per_mm: float = 2.0
    g_vertical_per_mm2: float = 0.015
    c_per_mm2: float = 0.012
    t_ambient: float = T_AMBIENT


class ThermalRCModel:
    """Lumped RC network over a floorplan."""

    def __init__(self, floorplan: Floorplan, params: Optional[ThermalParams] = None):
        self.floorplan = floorplan
        self.params = params or ThermalParams()
        names = floorplan.names()
        self.names = names
        self.index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        n = len(names)

        p = self.params
        areas = np.array([floorplan.block(nm).area for nm in names])
        self.areas = areas
        self.g_vert = p.g_vertical_per_mm2 * areas
        self.capacitance = p.c_per_mm2 * areas

        # Conductance (Laplacian-like) matrix.
        g = np.zeros((n, n))
        for a, b, data in floorplan.graph.edges(data=True):
            gl = p.g_lateral_per_mm * data["length"]
            i, j = self.index[a], self.index[b]
            g[i, j] -= gl
            g[j, i] -= gl
            g[i, i] += gl
            g[j, j] += gl
        g[np.diag_indices(n)] += self.g_vert
        self.g_matrix = g
        self._lu = lu_factor(g)

    # ------------------------------------------------------------------
    def steady_state(self, power_w: Dict[str, float]) -> Dict[str, float]:
        """Equilibrium block temperatures for constant powers, kelvin."""
        p = self._power_vector(power_w)
        rhs = p + self.g_vert * self.params.t_ambient
        t = lu_solve(self._lu, rhs)
        return {nm: float(t[i]) for nm, i in self.index.items()}

    def transient(
        self,
        power_traces: Iterable[Dict[str, float]],
        dt_seconds: float,
        t0: Optional[Dict[str, float]] = None,
    ) -> List[Dict[str, float]]:
        """Implicit-Euler transient over a sequence of power samples.

        Returns one temperature map per input sample (temperature at the
        *end* of each interval).
        """
        n = len(self.names)
        if t0 is None:
            t = np.full(n, self.params.t_ambient)
        else:
            t = np.array([t0[nm] for nm in self.names], dtype=float)
        # (C/dt + G) T_next = C/dt T + P + G_vert T_amb
        a = np.diag(self.capacitance / dt_seconds) + self.g_matrix
        lu = lu_factor(a)
        out: List[Dict[str, float]] = []
        for sample in power_traces:
            p = self._power_vector(sample)
            rhs = self.capacitance / dt_seconds * t + p \
                + self.g_vert * self.params.t_ambient
            t = lu_solve(lu, rhs)
            out.append({nm: float(t[i]) for nm, i in self.index.items()})
        return out

    # ------------------------------------------------------------------
    def _power_vector(self, power_w: Dict[str, float]) -> np.ndarray:
        p = np.zeros(len(self.names))
        for nm, w in power_w.items():
            if nm not in self.index:
                raise KeyError(f"unknown floorplan block {nm!r}")
            if w < 0:
                raise ValueError(f"negative power for block {nm}")
            p[self.index[nm]] = w
        return p

    def thermal_resistance(self, name: str) -> float:
        """Effective K/W of a block heated alone (diagnostics/tests)."""
        t = self.steady_state({name: 1.0})
        return t[name] - self.params.t_ambient
