"""Minimal async HTTP/1.1 server on ``asyncio.start_server``.

The harness is stdlib-only, so the serving layer hand-rolls the few
corners of HTTP/1.1 a read-only result service needs: GET/HEAD request
parsing with size caps, keep-alive, ``Content-Length`` framing,
conditional requests (``If-None-Match`` against strong ETags → 304),
JSON error bodies, and connection hygiene — a per-connection read
timeout (slow or silent clients are 408'd and closed rather than
pinning a connection open) plus a cap on requests per keep-alive
connection.  Application logic lives behind a single
``handler(Request) -> Response`` callable; this module knows nothing
about caches or queries.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from .wire import JSON_TYPE, encode_json, error_document

#: parser limits: one request line / header line, total header block
_MAX_LINE = 8192
_MAX_HEADER_BYTES = 32768

#: connection limits: seconds a client may take to deliver one request,
#: and how many requests one keep-alive connection may carry
DEFAULT_READ_TIMEOUT = 30.0
DEFAULT_MAX_REQUESTS = 1000

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An application-level failure that maps to one HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request: method, decoded path, query params, headers."""

    method: str
    path: str
    params: List[Tuple[str, str]] = field(default_factory=list)
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """One response: status, body bytes, media type, extra headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, doc: dict, status: int = 200, headers: Optional[Dict[str, str]] = None
    ) -> "Response":
        """A canonical-JSON response."""
        return cls(
            status=status,
            body=encode_json(doc),
            content_type=JSON_TYPE,
            headers=dict(headers or {}),
        )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        """A JSON error-body response."""
        return cls.json(error_document(status, message), status=status)


Handler = Callable[[Request], Awaitable[Response]]


def _render(resp: Response, head_only: bool) -> bytes:
    reason = _REASONS.get(resp.status, "Unknown")
    body = b"" if head_only or resp.status == 304 else resp.body
    lines = [f"HTTP/1.1 {resp.status} {reason}"]
    headers = {"Content-Type": resp.content_type, **resp.headers}
    # 304 responses must echo the validator headers but carry no body;
    # Content-Length still frames the (empty) payload for keep-alive.
    headers["Content-Length"] = str(
        0 if resp.status == 304 else len(resp.body)
    )
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` (400) on malformed or oversized input.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1", "replace").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        if not line:
            raise HttpError(400, "truncated header block")
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        if line in (b"\r\n", b"\n"):
            break
        text = line.decode("latin-1", "replace")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    params = parse_qsl(split.query, keep_blank_values=True)
    return Request(
        method=method,
        path=unquote(split.path),
        params=params,
        headers=headers,
    )


class ResultServer:
    """The asyncio server: accept loop, keep-alive, error mapping.

    ``read_timeout`` bounds how long a connection may sit between (or
    inside) requests before it is answered with 408 and closed — a slow
    or silent client cannot pin a connection open indefinitely.
    ``max_requests`` caps how many requests one keep-alive connection
    serves before the server closes it.  ``None`` disables either limit.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
        max_requests: Optional[int] = DEFAULT_MAX_REQUESTS,
    ) -> None:
        self.handler = handler
        self.host = host
        self.read_timeout = read_timeout
        self.max_requests = max_requests
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self._requested_port
        )

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _respond(self, request: Request) -> Response:
        if request.method not in ("GET", "HEAD"):
            resp = Response.error(405, f"method {request.method} not allowed")
            resp.headers["Allow"] = "GET, HEAD"
            return resp
        try:
            resp = await self.handler(request)
        except HttpError as exc:
            return Response.error(exc.status, exc.message)
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return Response.error(500, f"internal error: {exc}")
        # Strong-validator conditional: If-None-Match against the ETag.
        etag = resp.headers.get("ETag")
        if etag and resp.status == 200:
            candidates = [
                t.strip()
                for t in request.header("if-none-match").split(",")
                if t.strip()
            ]
            if etag in candidates or "*" in candidates:
                not_modified = Response(status=304, body=b"")
                not_modified.headers = dict(resp.headers)
                not_modified.content_type = resp.content_type
                return not_modified
        return resp

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        served = 0
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader), timeout=self.read_timeout
                    )
                except asyncio.TimeoutError:
                    timed_out = Response.error(
                        408, "connection idle or request incomplete"
                    )
                    timed_out.headers["Connection"] = "close"
                    writer.write(_render(timed_out, False))
                    await writer.drain()
                    break
                except HttpError as exc:
                    writer.write(
                        _render(Response.error(exc.status, exc.message), False)
                    )
                    await writer.drain()
                    break  # framing is unreliable after a parse error
                if request is None:
                    break
                served += 1
                response = await self._respond(request)
                keep_alive = (
                    request.header("connection", "keep-alive").lower() != "close"
                )
                if self.max_requests is not None and served >= self.max_requests:
                    keep_alive = False
                    response.headers["Connection"] = "close"
                response.headers.setdefault(
                    "Connection", "keep-alive" if keep_alive else "close"
                )
                writer.write(_render(response, request.method == "HEAD"))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # connection teardown during server shutdown


class BackgroundServer:
    """A :class:`ResultServer` on a dedicated thread (tests, notebooks).

    ``start()`` returns once the socket is bound (the resolved port is
    then available); ``stop()`` cancels the loop and joins the thread.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
        max_requests: Optional[int] = DEFAULT_MAX_REQUESTS,
    ) -> None:
        self.server = ResultServer(
            handler,
            host=host,
            port=port,
            read_timeout=read_timeout,
            max_requests=max_requests,
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        """The bound port once :meth:`start` has returned."""
        return self.server.port

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            try:
                await asyncio.Event().wait()  # park until cancelled
            finally:
                await self.server.aclose()

        try:
            asyncio.run(main())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if self._startup_error is None:
                self._startup_error = exc
            self._ready.set()

    def start(self) -> "BackgroundServer":
        """Launch the thread and wait for the socket to bind."""
        self._thread = threading.Thread(
            target=self._run, name="repro-result-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"result server failed to start: {self._startup_error}"
            )
        if not self._ready.is_set():
            raise RuntimeError("result server did not start within 10s")
        return self

    def stop(self) -> None:
        """Cancel the serve loop and join the thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            for task in asyncio.all_tasks(loop):
                loop.call_soon_threadsafe(task.cancel)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        """Context-manager entry: start the server."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: stop the server."""
        self.stop()
