"""Results-as-a-service: a read-only async HTTP layer over the cache.

``repro.serving`` mounts an existing result-cache directory (plus the
experiment spec that populated it) and serves the paper's numbers over
hand-rolled, stdlib-only HTTP/1.1:

* ``GET /v1/points/<digest>/metrics`` — one content-addressed metric
  row, ``ETag: "<digest>"``, immutable cache policy;
* ``GET /v1/query?...`` — filtered/sorted/projected rows (JSON or CSV),
  executing the same :class:`~repro.harness.query.ResultQuery` the CLI
  and figure code run;
* ``GET /v1/manifest`` / ``GET /v1/provenance/<digest>`` — the cache's
  own metadata;
* ``GET /v1/figures/<name>`` — rendered figure-table slices.

The service never simulates: a missing cache entry is a 404, not a
compute job.  Start one from the CLI with ``repro-cmp serve-results``.
"""

from .server import BackgroundServer, HttpError, Request, Response, ResultServer
from .service import ResultService
from .wire import (
    CACHE_IMMUTABLE,
    encode_json,
    error_document,
    etag_for,
    point_document,
    query_document,
    rows_csv,
)

__all__ = [
    "BackgroundServer",
    "CACHE_IMMUTABLE",
    "HttpError",
    "Request",
    "Response",
    "ResultServer",
    "ResultService",
    "encode_json",
    "error_document",
    "etag_for",
    "point_document",
    "query_document",
    "rows_csv",
]
