"""The result service: a mounted store behind the async HTTP surface.

:class:`ResultService` glues the three layers together: it owns a
:class:`~repro.harness.query.ResultStore` (the query seam), answers
parsed requests through the route table, and exposes the store-level
documents (index, manifest) the routes serve.  It contains no socket
code — :class:`~repro.serving.server.ResultServer` takes its
:meth:`handle` as the handler callable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..harness.query import ResultStore
from ..harness.spec import ExperimentSpec
from .routes import FIGURE_SLICES, dispatch
from .server import Request, Response


class ResultService:
    """Read-only HTTP semantics over one mounted result store."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    @classmethod
    def mount(
        cls,
        cache_dir: str,
        spec: ExperimentSpec,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        n_cores: Optional[int] = None,
        warmup: Optional[float] = None,
        simulate_missing: bool = False,
    ) -> "ResultService":
        """Mount a cache directory under a spec's resolved context."""
        return cls(
            ResultStore.open(
                cache_dir,
                spec,
                scale=scale,
                seed=seed,
                n_cores=n_cores,
                warmup=warmup,
                simulate_missing=simulate_missing,
            )
        )

    async def handle(self, request: Request) -> Response:
        """The server-facing handler: route one parsed request."""
        return dispatch(self, request)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The index document: what is mounted, which endpoints exist."""
        return {
            "service": "repro-cmp results",
            "spec": self.store.name,
            "points": len(self.store.points()),
            "cached": len(self.store.metrics()),
            "missing": len(self.store.missing_points()),
            "figures": sorted(FIGURE_SLICES) + ["table1"],
            "endpoints": [
                "/v1/query?workload=&technique=&size=&cores="
                "&sort=&fields=&limit=&format=",
                "/v1/points/<digest>/metrics",
                "/v1/manifest",
                "/v1/provenance/<digest>",
                "/v1/figures/<name>?size=&format=",
            ],
        }

    def manifest(self) -> Dict[str, Any]:
        """A freshly-built manifest of the mounted cache directory.

        Built (not read from ``index.json``) on every request so rows
        whose blob vanished since the last
        :meth:`~repro.harness.result_cache.ResultCache.write_manifest`
        never get served.
        """
        cache = self.store.runner.cache
        if cache is None:
            return {"entries": {}, "count": 0}
        manifest = cache.build_manifest()
        manifest["count"] = len(manifest.get("entries", {}))
        return manifest
