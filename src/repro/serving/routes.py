"""URL routing of the result service: path patterns → handlers.

Each handler is a pure function from ``(service, request, match)`` to a
:class:`~repro.serving.server.Response`; application failures raise
:class:`~repro.serving.server.HttpError` and surface as JSON error
bodies.  The handlers contain no selection logic of their own — every
row they serve comes out of :meth:`ResultStore.run_query` or the figure
slice builders, the same seams the CLI uses.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Match, Pattern, Tuple

from ..harness.figures import FIGURE_SLICES, figure_slice, table1
from ..harness.query import ResultQuery, QueryError
from .server import HttpError, Request, Response
from .wire import (
    CACHE_IMMUTABLE,
    CSV_TYPE,
    encode_json,
    etag_for,
    figure_document,
    point_document,
    query_document,
    rows_csv,
)

_DIGEST = r"(?P<digest>[0-9a-f]{6,64})"


def _pop_param(request: Request, name: str) -> List[str]:
    """Remove and return every value of one query parameter."""
    values = [v for k, v in request.params if k == name]
    request.params = [(k, v) for k, v in request.params if k != name]
    return values


def _format_of(request: Request) -> str:
    """The requested body format: ``json`` (default) or ``csv``."""
    values = _pop_param(request, "format")
    fmt = values[-1].lower() if values else "json"
    if fmt not in ("json", "csv"):
        raise HttpError(400, f"unknown format {fmt!r}; use json or csv")
    return fmt


def handle_index(service: Any, request: Request, match: Match) -> Response:
    """``GET /`` — describe the service and its endpoints."""
    return Response.json(service.describe())


def handle_query(service: Any, request: Request, match: Match) -> Response:
    """``GET /v1/query`` — filtered metric rows as JSON or CSV."""
    fmt = _format_of(request)
    try:
        query = ResultQuery.from_params(request.params)
    except QueryError as exc:
        raise HttpError(400, str(exc)) from exc
    result = service.store.run_query(query)
    if fmt == "csv":
        return Response(
            body=rows_csv(result.rows, fields=query.fields or None),
            content_type=CSV_TYPE,
        )
    return Response.json(query_document(result))


def handle_point_metrics(
    service: Any, request: Request, match: Match
) -> Response:
    """``GET /v1/points/<digest>/metrics`` — one content-addressed row.

    The digest is the point's own
    :meth:`~repro.harness.spec.SweepPoint.digest`, so the document can
    never change: responses carry ``ETag: "<digest>"`` and an
    ``immutable`` cache policy, and repeated fetches are byte-identical.
    """
    digest = match.group("digest")
    hit = service.store.metrics_for_digest(digest)
    if hit is None:
        raise HttpError(404, f"unknown point digest {digest!r}")
    point, metrics = hit
    if metrics is None:
        raise HttpError(
            404,
            f"point {digest!r} (or its baseline) is not in the result "
            "cache; run its spec first",
        )
    return Response(
        body=encode_json(point_document(digest, point, metrics)),
        headers={"ETag": etag_for(digest), "Cache-Control": CACHE_IMMUTABLE},
    )


def handle_manifest(service: Any, request: Request, match: Match) -> Response:
    """``GET /v1/manifest`` — a fresh manifest of the mounted cache."""
    return Response.json(service.manifest())


def handle_provenance(
    service: Any, request: Request, match: Match
) -> Response:
    """``GET /v1/provenance/<digest>`` — one point's provenance sidecar."""
    digest = match.group("digest")
    if service.store.digest_index().get(digest) is None:
        raise HttpError(404, f"unknown point digest {digest!r}")
    doc = service.store.provenance_for_digest(digest)
    if doc is None:
        raise HttpError(404, f"no provenance recorded for point {digest!r}")
    return Response.json({"digest": digest, "provenance": doc})


def handle_figure(service: Any, request: Request, match: Match) -> Response:
    """``GET /v1/figures/<name>`` — one rendered figure-table slice.

    ``table1`` needs no cache (it is the coherence legality matrix);
    every other figure renders from the store's cached rows only.
    ``?size=`` pins benchmark-shaped figures; ``?format=csv`` serves the
    table as CSV.
    """
    name = match.group("name")
    fmt = _format_of(request)
    sizes = _pop_param(request, "size")
    total_mb = None
    if sizes:
        try:
            total_mb = int(sizes[-1])
        except ValueError:
            raise HttpError(
                400, f"size must be an integer (MB), got {sizes[-1]!r}"
            ) from None
    if name == "table1":
        table = table1()
    else:
        if name not in FIGURE_SLICES:
            raise HttpError(
                404,
                f"unknown figure {name!r}; available: "
                f"{sorted(FIGURE_SLICES) + ['table1']}",
            )
        try:
            table = figure_slice(name, service.store.metrics(), total_mb)
        except ValueError as exc:
            raise HttpError(404, str(exc)) from exc
    if fmt == "csv":
        return Response(body=table.to_csv().encode("utf-8"), content_type=CSV_TYPE)
    return Response.json(figure_document(table))


#: the route table: compiled path pattern → handler
ROUTES: List[Tuple[Pattern[str], Callable[..., Response]]] = [
    (re.compile(r"^/(v1/?)?$"), handle_index),
    (re.compile(r"^/v1/query$"), handle_query),
    (re.compile(rf"^/v1/points/{_DIGEST}/metrics$"), handle_point_metrics),
    (re.compile(r"^/v1/manifest$"), handle_manifest),
    (re.compile(rf"^/v1/provenance/{_DIGEST}$"), handle_provenance),
    (re.compile(r"^/v1/figures/(?P<name>[A-Za-z0-9_.-]+)$"), handle_figure),
]


def dispatch(service: Any, request: Request) -> Response:
    """Route one request; unknown paths 404 with a JSON body."""
    for pattern, handler in ROUTES:
        match = pattern.match(request.path)
        if match is not None:
            return handler(service, request, match)
    raise HttpError(404, f"no such resource: {request.path}")
