"""Wire schemas of the result service: stable JSON/CSV response bodies.

Every response document the HTTP layer emits is built here, from the
same objects the CLI prints — so byte-level parity between
``repro-cmp query --json`` and ``GET /v1/query`` is a property of this
module, not a coincidence.  Encoding is canonical (sorted keys, fixed
indent, trailing newline): a digest-addressed document is byte-identical
across processes and server restarts, which is what makes the
``ETag: "<digest>"`` + ``Cache-Control: immutable`` contract honest.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..harness.metrics import PointMetrics
from ..harness.query import PROJECTION_FIELDS, QueryResult
from ..harness.spec import SweepPoint

#: media types the service emits
JSON_TYPE = "application/json; charset=utf-8"
CSV_TYPE = "text/csv; charset=utf-8"

#: cache policy of content-addressed responses: a digest-keyed document
#: never changes, so any intermediary may cache it forever
CACHE_IMMUTABLE = "public, max-age=31536000, immutable"


def etag_for(digest: str) -> str:
    """The strong validator of a content-addressed response."""
    return f'"{digest}"'


def encode_json(doc: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes: sorted keys, indent 1, trailing newline."""
    return (json.dumps(doc, sort_keys=True, indent=1) + "\n").encode("utf-8")


def query_document(result: QueryResult) -> Dict[str, Any]:
    """The ``/v1/query`` (and ``repro-cmp query --json``) body."""
    return {
        "name": result.name,
        "query": result.query.to_dict(),
        "count": result.matched,
        "missing": result.missing,
        "total": result.total,
        "rows": result.rows,
    }


def point_document(
    digest: str, point: SweepPoint, metrics: PointMetrics
) -> Dict[str, Any]:
    """The ``/v1/points/<digest>/metrics`` body."""
    return {
        "digest": digest,
        "point": point.to_dict(),
        "metrics": metrics.as_dict(),
    }


def error_document(status: int, message: str) -> Dict[str, Any]:
    """The JSON error body every non-2xx/304 response carries."""
    return {"error": {"status": status, "message": message}}


def rows_csv(
    rows: Iterable[Mapping[str, Any]],
    fields: Optional[Sequence[str]] = None,
) -> bytes:
    """Rows as CSV bytes; column order follows the query projection.

    With no explicit ``fields`` the header uses the canonical projection
    order restricted to columns the rows actually carry.
    """
    rows = list(rows)
    if fields:
        header: List[str] = list(fields)
    else:
        present = set()
        for row in rows:
            present.update(row)
        header = [name for name in PROJECTION_FIELDS if name in present]
        header.extend(name for name in sorted(present) if name not in header)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=header, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name) for name in header})
    return buf.getvalue().encode("utf-8")


def figure_document(table: Any) -> Dict[str, Any]:
    """The ``/v1/figures/<name>`` body (a rendered FigureTable slice)."""
    return table.to_doc()
