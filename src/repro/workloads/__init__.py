"""Workloads: trace format, pattern components, and benchmark models.

Synthetic, parameterized stand-ins for the paper's SPLASH-2 and ALPBench
benchmarks (see DESIGN.md §4 for the substitution rationale), plus simple
synthetic workloads for tests and examples.
"""

from .address_space import AddressSpace, Region
from .alpbench import facerec, mpeg2dec, mpeg2enc
from .patterns import (
    ColdStream,
    HotSet,
    LaggedRevisit,
    MigratoryChunk,
    PointerChase,
    ProducerConsumer,
    SharedSweep,
    TrailingRevisit,
)
from .phases import (
    PhaseSpec,
    estimate_cycles_per_access,
    lag_accesses,
    phase_stream,
    phased_workload,
)
from .registry import (
    MULTIMEDIA,
    PAPER_BENCHMARKS,
    SCIENTIFIC,
    get_workload,
    list_workloads,
    register_workload,
)
from .scaling import (
    BASE_ACCESSES_PER_CORE,
    MIN_SUPPORTED_SCALE,
    accesses_per_core,
    check_scale,
    decay_unit,
)
from .splash2 import fmm, volrend, water_ns
from .trace import (
    ILP_DEPENDENT,
    ILP_MODERATE,
    ILP_STREAMING,
    Record,
    Workload,
    WorkloadMeta,
    barrier_record,
    ilp_class,
    is_barrier,
    is_write,
    make_flags,
    validate_stream,
)

__all__ = [
    "AddressSpace",
    "Region",
    "facerec",
    "mpeg2dec",
    "mpeg2enc",
    "ColdStream",
    "HotSet",
    "LaggedRevisit",
    "MigratoryChunk",
    "PointerChase",
    "ProducerConsumer",
    "SharedSweep",
    "TrailingRevisit",
    "PhaseSpec",
    "estimate_cycles_per_access",
    "lag_accesses",
    "phase_stream",
    "phased_workload",
    "MULTIMEDIA",
    "PAPER_BENCHMARKS",
    "SCIENTIFIC",
    "get_workload",
    "list_workloads",
    "register_workload",
    "BASE_ACCESSES_PER_CORE",
    "MIN_SUPPORTED_SCALE",
    "accesses_per_core",
    "check_scale",
    "decay_unit",
    "fmm",
    "volrend",
    "water_ns",
    "ILP_DEPENDENT",
    "ILP_MODERATE",
    "ILP_STREAMING",
    "Record",
    "Workload",
    "WorkloadMeta",
    "barrier_record",
    "ilp_class",
    "is_barrier",
    "is_write",
    "make_flags",
    "validate_stream",
]
