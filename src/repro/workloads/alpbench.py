"""Synthetic models of the three ALPBench multimedia benchmarks.

Behavioural stand-ins for mpeg2enc, mpeg2dec and facerec (DESIGN.md §4).
Multimedia signatures the paper's results rely on:

==============  =====================================================
mpeg2enc        streaming input frames plus a *heavily written*
                reconstruction/output buffer — many Modified lines,
                which Selective Decay refuses to gate, so SD trails
                plain Decay on energy (Fig 6(a)); short motion-window
                reuse keeps IPC loss small.
mpeg2dec        small active footprint (Protocol nearly matches
                Decay, Fig 6(a)); reference-frame reuse at ~1.8× the
                64K decay unit — IPC improves visibly with larger
                decay times (Fig 6(b)).
facerec         streamed read-shared gallery with essentially bimodal
                reuse (very short or none): decay barely hurts IPC,
                and *shorter* decay times improve energy (gating the
                streamed gallery sooner) — the inverse of mpeg2dec.
==============  =====================================================
"""

from __future__ import annotations

from .profiles import ComponentSpec, Profile, RegionSpec, build_profile_workload
from .trace import Workload

MPEG2ENC = Profile(
    name="mpeg2enc",
    suite="alpbench",
    kind="multimedia",
    n_phases=6,
    mean_gap=8.0,
    description="MPEG-2 encode: write-heavy recon buffers, short motion reuse",
    regions=(
        RegionSpec("einframe", 448),
        RegionSpec("erecon", 448),
        RegionSpec("ectl", 16, shared=True),
    ),
    components=(
        ComponentSpec(
            "hot",
            "einframe",
            weight=0.732,
            write_frac=0.50,
            name="hot",
        ),
        ComponentSpec(
            "hot",
            "einframe",
            weight=0.158,
            write_frac=0.25,
            name="tables",
        ),
        ComponentSpec(
            "cold",
            "einframe",
            weight=0.012,
            write_frac=0.05,
            ilp="stream",
            name="cin",
        ),
        # Reconstruction/output: nearly pure stores — Modified lines that
        # Selective Decay never gates (its Fig 6(a) weakness here).
        ComponentSpec(
            "cold",
            "erecon",
            weight=0.012,
            write_frac=0.95,
            ilp="stream",
            name="cout",
        ),
        # Motion-estimation window: far below every decay time.
        ComponentSpec(
            "trail",
            "einframe",
            weight=0.030,
            write_frac=0.05,
            lag_units=0.35,
            ref="cin",
            name="mwin",
        ),
        # Frame-to-frame reference: dies at 64K, survives 128K/512K.
        ComponentSpec(
            "trail",
            "erecon",
            weight=0.006,
            write_frac=0.20,
            lag_units=1.3,
            ref="cout",
            name="fref",
        ),
        ComponentSpec(
            "hot",
            "ectl",
            weight=0.050,
            write_frac=0.50,
            name="ratectl",
        ),
    ),
)

MPEG2DEC = Profile(
    name="mpeg2dec",
    suite="alpbench",
    kind="multimedia",
    n_phases=6,
    mean_gap=9.0,
    description="MPEG-2 decode: small footprint, 1.8-unit reference reuse",
    regions=(
        RegionSpec("dbits", 128),
        RegionSpec("dframe", 192),
        RegionSpec("dctl", 16, shared=True),
    ),
    components=(
        ComponentSpec(
            "hot",
            "dframe",
            weight=0.745,
            write_frac=0.40,
            name="hot",
        ),
        ComponentSpec(
            "hot",
            "dbits",
            weight=0.172,
            write_frac=0.25,
            name="idct",
        ),
        ComponentSpec(
            "cold",
            "dbits",
            weight=0.008,
            write_frac=0.0,
            ilp="stream",
            name="cbits",
        ),
        ComponentSpec(
            "cold",
            "dframe",
            weight=0.012,
            write_frac=0.90,
            ilp="stream",
            name="cout",
        ),
        # Motion compensation reads the previous frame: ~1.8 units — the
        # Fig 6(b) "larger decay visibly helps mpeg2dec".
        ComponentSpec(
            "trail",
            "dframe",
            weight=0.008,
            write_frac=0.10,
            lag_units=1.7,
            ref="cout",
            name="ref",
        ),
        ComponentSpec(
            "hot",
            "dctl",
            weight=0.055,
            write_frac=0.40,
            name="streamctl",
        ),
    ),
)

FACEREC = Profile(
    name="facerec",
    suite="alpbench",
    kind="multimedia",
    n_phases=4,
    mean_gap=11.0,
    description="Face recognition: streamed shared gallery, bimodal reuse",
    regions=(
        RegionSpec("fworkspace", 256),
        RegionSpec("fgallery", 768, shared=True),
        RegionSpec("fresults", 32, shared=True),
    ),
    components=(
        ComponentSpec(
            "hot",
            "fworkspace",
            weight=0.720,
            write_frac=0.30,
            name="hot",
        ),
        ComponentSpec(
            "hot",
            "fworkspace",
            weight=0.156,
            write_frac=0.25,
            name="filters",
        ),
        ComponentSpec("sweep", "fgallery", weight=0.018, name="gal"),
        # Filter-bank correlation re-reads the tile just streamed.
        ComponentSpec(
            "trail",
            "fgallery",
            weight=0.050,
            write_frac=0.0,
            lag_units=0.15,
            ref="gal",
            name="tile",
        ),
        # Almost no mid-range mass: decay costs facerec nearly nothing.
        ComponentSpec(
            "trail",
            "fgallery",
            weight=0.003,
            write_frac=0.0,
            lag_units=1.0,
            ref="gal",
            name="tmid",
        ),
        ComponentSpec(
            "cold",
            "fworkspace",
            weight=0.008,
            write_frac=0.50,
            ilp="stream",
            name="cwork",
        ),
        ComponentSpec(
            "hot",
            "fresults",
            weight=0.045,
            write_frac=0.60,
            name="results",
        ),
    ),
)


def mpeg2enc(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """MPEG-2 encoder: slice-parallel, write-heavy reconstruction buffers."""
    return build_profile_workload(MPEG2ENC, n_cores, scale, seed, line_bytes)


def mpeg2dec(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """MPEG-2 decoder: small footprint, reference-frame reuse."""
    return build_profile_workload(MPEG2DEC, n_cores, scale, seed, line_bytes)


def facerec(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """Face recognition: streamed shared gallery, bimodal reuse."""
    return build_profile_workload(FACEREC, n_cores, scale, seed, line_bytes)
