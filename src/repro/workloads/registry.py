"""Workload registry: name → builder, plus simple synthetic workloads.

``get_workload`` is the single entry point used by the harness, examples
and benches.  Besides the six paper benchmarks it registers three plain
synthetic workloads used in tests and the quickstart example, and
dispatches two addressed families: ``mix:a+b`` names to the
multi-program mix layer (:mod:`repro.workloads.mix`) and
``trace:<file>`` names to the file-backed trace frontend
(:mod:`repro.traces.workload`, imported lazily to keep the package
import-light).  ``trace_root`` anchors relative trace paths — the
harness passes the spec file's directory so shipped specs stay
portable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .address_space import AddressSpace
from .alpbench import facerec, mpeg2dec, mpeg2enc
from .mix import is_mix_name, mix_workload, parse_mix_name
from .patterns import ColdStream, HotSet
from .phases import PhaseSpec, phased_workload
from .scaling import accesses_per_core, check_scale
from .splash2 import fmm, volrend, water_ns
from .trace import ILP_MODERATE, ILP_STREAMING, Workload

Builder = Callable[..., Workload]


def _uniform(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """Uniform random accesses over a private 256 KB region per core."""
    check_scale(scale)
    total = accesses_per_core(scale)
    space = AddressSpace()
    privs = [space.alloc_kb(f"heap{c}", 256) for c in range(n_cores)]

    def phase_factory(cid: int) -> List[PhaseSpec]:
        """One single-phase stream per core."""
        comp = HotSet(
            privs[cid],
            line_bytes,
            seed * 131 + cid,
            write_frac=0.3,
            ilp=ILP_MODERATE,
        )
        return [PhaseSpec([comp], [1.0], total, mean_gap=10.0)]

    return phased_workload(
        name="uniform",
        suite="synthetic",
        kind="synthetic",
        phase_factory=phase_factory,
        n_cores=n_cores,
        accesses_per_core=total,
        footprint_bytes=privs[0].size,
        shared_bytes=0,
        seed=seed,
        description="uniform random over 256KB/core (test workload)",
    )


def _streaming(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """Pure streaming over a large private region (decay's best case)."""
    check_scale(scale)
    total = accesses_per_core(scale)
    space = AddressSpace()
    privs = [space.alloc_kb(f"stream{c}", 2048) for c in range(n_cores)]

    def phase_factory(cid: int) -> List[PhaseSpec]:
        """One single-phase stream per core."""
        comp = ColdStream(
            privs[cid],
            line_bytes,
            seed * 137 + cid,
            write_frac=0.2,
            ilp=ILP_STREAMING,
        )
        return [PhaseSpec([comp], [1.0], total, mean_gap=8.0)]

    return phased_workload(
        name="streaming",
        suite="synthetic",
        kind="synthetic",
        phase_factory=phase_factory,
        n_cores=n_cores,
        accesses_per_core=total,
        footprint_bytes=privs[0].size,
        shared_bytes=0,
        seed=seed,
        description="pure streaming over 2MB/core (test workload)",
    )


def _pingpong(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """All cores read-modify-write one small shared region.

    Worst-case invalidation traffic; exercises the Protocol technique
    heavily.
    """
    check_scale(scale)
    total = accesses_per_core(scale)
    space = AddressSpace()
    shared = space.alloc_kb("pingpong", 64, shared=True)

    def phase_factory(cid: int) -> List[PhaseSpec]:
        """One single-phase shared-region stream per core."""
        comp = HotSet(
            shared,
            line_bytes,
            seed * 139 + cid,
            write_frac=0.5,
            ilp=ILP_MODERATE,
        )
        return [PhaseSpec([comp], [1.0], total, mean_gap=12.0)]

    return phased_workload(
        name="pingpong",
        suite="synthetic",
        kind="synthetic",
        phase_factory=phase_factory,
        n_cores=n_cores,
        accesses_per_core=total,
        footprint_bytes=shared.size,
        shared_bytes=shared.size,
        seed=seed,
        description="64KB shared RMW ping-pong (test workload)",
    )


_REGISTRY: Dict[str, Builder] = {
    # the paper's six benchmarks
    "water_ns": water_ns,
    "fmm": fmm,
    "volrend": volrend,
    "mpeg2enc": mpeg2enc,
    "mpeg2dec": mpeg2dec,
    "facerec": facerec,
    # synthetic workloads for tests/examples
    "uniform": _uniform,
    "streaming": _streaming,
    "pingpong": _pingpong,
}

#: The six benchmarks of the paper's evaluation, figure order.
PAPER_BENCHMARKS = (
    "mpeg2enc",
    "mpeg2dec",
    "facerec",
    "water_ns",
    "fmm",
    "volrend",
)

#: The paper's benchmark groups.
SCIENTIFIC = ("water_ns", "fmm", "volrend")
MULTIMEDIA = ("mpeg2enc", "mpeg2dec", "facerec")


def list_workloads() -> List[str]:
    """All registered workload names (mixes are addressed, not listed)."""
    return sorted(_REGISTRY)


def workload_exists(name: str, trace_root: Optional[str] = None) -> bool:
    """True when ``name`` resolves: registered, a mix, or a readable trace.

    This is the check spec validation uses — it must accept every name
    :func:`get_workload` would build without actually building it.
    ``trace_root`` anchors relative ``trace:`` paths (see
    :func:`check_workload` for the error-message variant).
    """
    try:
        check_workload(name, trace_root=trace_root)
    except ValueError:
        return False
    return True


def check_workload(name: str, trace_root: Optional[str] = None) -> None:
    """Raise a clean ``ValueError`` when ``name`` does not resolve.

    The raising twin of :func:`workload_exists`: strict spec validation
    uses it so a missing or unreadable trace file surfaces as an
    actionable message naming the file, never a traceback.
    """
    from ..traces.workload import check_trace, is_trace_name

    if name in _REGISTRY:
        return
    if is_trace_name(name):
        check_trace(name, trace_root)  # raises TraceError (a ValueError)
        return
    if is_mix_name(name):
        for component in parse_mix_name(name):
            check_workload(component, trace_root=trace_root)
        return
    raise ValueError(
        f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
        f" (or a mix:<a>+<b> co-schedule, or a trace:<file> replay)"
    )


def get_workload(
    name: str,
    n_cores: int = 4,
    scale: float = 1.0,
    seed: int = 1,
    line_bytes: int = 64,
    trace_root: Optional[str] = None,
) -> Workload:
    """Build a workload by name.

    ``mix:a+b`` builds a multi-program mix; ``trace:<file>`` replays a
    captured trace (relative paths resolved against ``trace_root``).
    """
    if is_mix_name(name):
        return mix_workload(
            name,
            n_cores=n_cores,
            scale=scale,
            seed=seed,
            line_bytes=line_bytes,
            trace_root=trace_root,
        )
    from ..traces.workload import is_trace_name, trace_workload

    if is_trace_name(name):
        return trace_workload(
            name,
            n_cores=n_cores,
            scale=scale,
            seed=seed,
            line_bytes=line_bytes,
            trace_root=trace_root,
        )
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
            f" (or a mix:<a>+<b> co-schedule, or a trace:<file> replay)"
        ) from None
    return builder(n_cores=n_cores, scale=scale, seed=seed, line_bytes=line_bytes)


def register_workload(name: str, builder: Builder) -> None:
    """Register a custom workload builder (examples/tests extension point)."""
    if name in _REGISTRY:
        raise ValueError(f"workload {name!r} already registered")
    _REGISTRY[name] = builder
