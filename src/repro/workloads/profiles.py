"""Declarative benchmark profiles and the generic profile-to-workload builder.

Each of the six paper benchmarks is described by a :class:`Profile`: a
list of region declarations and a list of component declarations with
mixture weights.  A single generic builder turns a profile into a
:class:`~repro.workloads.trace.Workload`, which keeps all calibration in
one table per benchmark (weights, write fractions, reuse lags in decay
units) instead of scattered through imperative code.

Weight calibration rationale (from the paper's aggregate numbers):

* L2 *extra* misses under decay are ~1.5 % of L2 accesses (Fig 3(b):
  baseline ≈0.5 % → decay ≈2 %), and IPC loss stays ≤10 % on average
  (Fig 5(b)).  Mid-range reuse mass (lags between the 64K and 512K decay
  times) must therefore be a ~1–2 % sliver of accesses, not a dominant
  component — most traffic is short-reuse (hot sets, L1-resident) or
  streaming.
* occupancy floors and footprint coverage come from hot sets (always
  alive) plus cold streams (alive for one decay time after first touch);
* communication components (migratory, producer/consumer, shared tables)
  set the invalidation rate the Protocol technique feeds on.

Component kinds: ``hot``, ``cold``, ``trail`` (revisit of a cold stream at
a lag given in 64K-decay units), ``pchase`` (pointer chase sized so its
wrap period lands at ``lag_units``), ``sweep`` (shared read stream),
``migratory`` (phase-rotated RMW chunks), ``prodcons`` (phase-rotated
producer/consumer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .address_space import AddressSpace, Region
from .patterns import (
    ColdStream,
    WriteFracOverride,
    HotSet,
    MigratoryChunk,
    PointerChase,
    ProducerConsumer,
    SharedSweep,
    TrailingRevisit,
)
from .phases import PhaseSpec, lag_accesses, phased_workload
from .scaling import accesses_per_core, check_scale, decay_unit, hot_set_lines
from .trace import ILP_DEPENDENT, ILP_MODERATE, ILP_STREAMING, Workload

ILP = {"dep": ILP_DEPENDENT, "mod": ILP_MODERATE, "stream": ILP_STREAMING}


@dataclass(frozen=True)
class RegionSpec:
    """A named region: per-core private unless ``shared``."""

    name: str
    kb: int
    shared: bool = False


@dataclass(frozen=True)
class ComponentSpec:
    """One mixture component of a benchmark profile.

    ``lag_units`` is interpreted per kind: for ``trail`` the revisit lag,
    for ``pchase`` the wrap period — both in units of the (scaled) 64K
    decay time.  ``ref`` names the cold/sweep component a trail follows.
    """

    kind: str
    region: str
    weight: float
    write_frac: float = 0.0
    ilp: str = "mod"
    lag_units: float = 0.0
    ref: Optional[str] = None
    name: str = ""
    hot_lines: Optional[int] = None   # None = auto-size from scaling rule


@dataclass(frozen=True)
class Profile:
    """Complete declarative description of one benchmark.

    ``init_frac``: real applications touch their data structures during
    initialization before iterating on them; profiles model this with a
    leading *init phase* covering ``init_frac`` of the run in which
    cold/sweep components are boosted just enough to cover their regions
    exactly once (see the builder).  The harness skips it via its warmup
    fraction (the paper likewise collects statistics "after skipping
    initialization"), so steady-state occupancy reflects a touched
    footprint rather than a cold-start ramp.
    """

    name: str
    suite: str
    kind: str
    regions: Tuple[RegionSpec, ...]
    components: Tuple[ComponentSpec, ...]
    n_phases: int = 4
    mean_gap: float = 10.0
    description: str = ""
    init_frac: float = 0.15
    init_write_frac: float = 0.35

    def weight_sum(self) -> float:
        """Total mixture weight (should be ≈ 1.0)."""
        return sum(c.weight for c in self.components)

    def suggested_warmup(self) -> float:
        """Warmup fraction that skips the init phase (+ a small margin)."""
        return min(0.45, self.init_frac + 0.02)


def build_profile_workload(
    profile: Profile,
    n_cores: int = 4,
    scale: float = 1.0,
    seed: int = 1,
    line_bytes: int = 64,
) -> Workload:
    """Instantiate a profile as a runnable workload."""
    check_scale(scale)
    total = accesses_per_core(scale)
    init_accesses = int(total * profile.init_frac)
    per_phase = (total - init_accesses) // profile.n_phases
    d_unit = decay_unit(scale)
    gap = profile.mean_gap

    space = AddressSpace()
    shared_regions: Dict[str, Region] = {}
    private_regions: Dict[str, List[Region]] = {}
    for rs in profile.regions:
        if rs.shared:
            shared_regions[rs.name] = space.alloc_kb(rs.name, rs.kb, shared=True)
        else:
            private_regions[rs.name] = [
                space.alloc_kb(f"{rs.name}{c}", rs.kb) for c in range(n_cores)
            ]

    def region_for(name: str, cid: int) -> Region:
        """Resolve a region name to this core's (or the shared) region."""
        if name in shared_regions:
            return shared_regions[name]
        return private_regions[name][cid]

    def phase_factory(cid: int) -> List[PhaseSpec]:
        """Build core ``cid``'s phase list from the profile tables."""
        s0 = seed * 9176 + cid * 997
        built: Dict[str, object] = {}
        weight_of: Dict[str, float] = {}
        fixed: List[Tuple[object, float, str]] = []   # (comp, weight, kind)
        rotating: List[Tuple[ComponentSpec, float]] = []  # phase-dependent

        # First pass: everything except trails (which need their ref).
        for i, cs in enumerate(profile.components):
            key = cs.name or f"{cs.kind}{i}"
            s = s0 + i * 37
            if cs.kind == "hot":
                n = cs.hot_lines or hot_set_lines(cs.weight, cs.write_frac, gap)
                comp = HotSet(
                    region_for(cs.region, cid),
                    line_bytes,
                    s,
                    hot_lines=n,
                    write_frac=cs.write_frac,
                    ilp=ILP[cs.ilp],
                )
            elif cs.kind == "cold":
                comp = ColdStream(
                    region_for(cs.region, cid),
                    line_bytes,
                    s,
                    write_frac=cs.write_frac,
                    ilp=ILP[cs.ilp],
                )
            elif cs.kind == "sweep":
                comp = SharedSweep(
                    shared_regions[cs.region],
                    line_bytes,
                    s,
                    start_frac=cid / max(1, n_cores),
                    write_frac=cs.write_frac,
                    ilp=ILP[cs.ilp],
                )
            elif cs.kind == "pchase":
                region = region_for(cs.region, cid)
                nodes = max(
                    64, int(lag_accesses(cs.lag_units * d_unit, gap) * cs.weight)
                )
                nodes = min(nodes, region.n_lines(line_bytes))
                comp = PointerChase(
                    region, line_bytes, s, n_nodes=nodes, write_frac=cs.write_frac
                )
            elif cs.kind == "trail":
                comp = None  # second pass
            elif cs.kind in ("migratory", "prodcons"):
                rotating.append((cs, cs.weight))
                built[key] = None
                continue
            else:
                raise ValueError(f"unknown component kind {cs.kind!r}")
            built[key] = comp
            weight_of[key] = cs.weight
            if comp is not None:
                fixed.append((comp, cs.weight, cs.kind))

        # Second pass: trails referencing their cold/sweep streams.
        fallback = fixed[0][0] if fixed else None
        for i, cs in enumerate(profile.components):
            if cs.kind != "trail":
                continue
            key = cs.name or f"{cs.kind}{i}"
            s = s0 + 1000 + i * 41
            ref = built[cs.ref]
            cold = ref.inner if isinstance(ref, SharedSweep) else ref
            steps = max(
                1, int(lag_accesses(cs.lag_units * d_unit, gap) * weight_of[cs.ref])
            )
            comp = TrailingRevisit(
                cold,
                s,
                lag_cold_steps=steps,
                write_frac=cs.write_frac,
                ilp=ILP[cs.ilp],
                fallback=fallback,
            )
            built[key] = comp
            fixed.append((comp, cs.weight, cs.kind))

        phases: List[PhaseSpec] = []
        if init_accesses > 0:
            # Initialization pass.  Each stream's init weight is sized so
            # that (init + steady-state) emissions cover its region *once*
            # — never more.  A second pass over initialized lines would
            # manufacture long-lag reuse that decays under every decay
            # time, a pure artifact of the scaled run length (see the
            # facerec post-mortem in EXPERIMENTS.md).  Shared sweeps are
            # staggered per core, so one core initializes one 1/n_cores
            # slice.  Streams initialize with a moderate store fraction
            # (arrays are built from input reads as well as stores), which
            # keeps the Modified share of the footprint — and hence
            # Selective Decay's occupancy floor — realistic.
            cold_kinds = ("cold", "sweep")
            steady_accesses = max(1, total - init_accesses)
            init_w = []
            for c, w, k in fixed:
                if k not in cold_kinds:
                    init_w.append(0.0)
                    continue
                stream = c.inner if isinstance(c, SharedSweep) else c
                lines = stream.n_lines
                if k == "sweep":
                    lines = lines / max(1, n_cores)
                steady_emissions = w * steady_accesses
                target = max(0.0, 0.92 * lines - steady_emissions)
                init_w.append(target / init_accesses)
            w_cold_init = sum(init_w)
            if w_cold_init > 0.8:
                init_w = [w * 0.8 / w_cold_init for w in init_w]
                w_cold_init = 0.8
            w_rest_steady = sum(w for (_, w, k) in fixed if k not in cold_kinds)
            shrink = (1.0 - w_cold_init) / w_rest_steady if w_rest_steady > 0 else 0.0
            init_comps = []
            for idx, ((c, w, k), wi) in enumerate(zip(fixed, init_w)):
                if k in cold_kinds:
                    init_comps.append(
                        WriteFracOverride(c, profile.init_write_frac, s0 + 5000 + idx)
                    )
                else:
                    init_comps.append(c)
                    init_w[idx] = w * shrink
            if sum(init_w) > 0:
                phases.append(PhaseSpec(init_comps, init_w, init_accesses, gap))
        for p in range(profile.n_phases):
            comps = [c for c, _, _ in fixed]
            weights = [w for _, w, _ in fixed]
            for cs, w in rotating:
                s = s0 + 2000 + p * 61
                region = shared_regions[cs.region]
                if cs.kind == "migratory":
                    chunk = region.slice((cid + p) % n_cores, n_cores)
                    comps.append(
                        MigratoryChunk(chunk, line_bytes, s, rmw=True, ilp=ILP[cs.ilp])
                    )
                else:  # prodcons
                    producing = (p % n_cores) == cid
                    comps.append(
                        ProducerConsumer(
                            region, line_bytes, s, producing=producing, ilp=ILP[cs.ilp]
                        )
                    )
                weights.append(w)
            phases.append(PhaseSpec(comps, weights, per_phase, gap))
        return phases

    priv_bytes = sum(r[0].size for r in private_regions.values())
    shared_bytes = sum(r.size for r in shared_regions.values())
    return phased_workload(
        name=profile.name,
        suite=profile.suite,
        kind=profile.kind,
        phase_factory=phase_factory,
        n_cores=n_cores,
        accesses_per_core=total,
        footprint_bytes=priv_bytes + shared_bytes,
        shared_bytes=shared_bytes,
        seed=seed,
        description=profile.description,
    )
