"""Phase/mixture engine: turns pattern components into per-core streams.

A workload is a sequence of *phases* per core.  Within a phase, accesses
are drawn from a weighted mixture of components; phases are separated by
barriers (all cores synchronize, like SPLASH-2's global barriers between
time steps).  Compute gaps between memory operations are geometric with a
configurable mean, giving a realistic exponential-ish inter-access time
distribution.

The per-access loop is the generator hot path; component choices, gaps and
write flags are drawn in pre-generated numpy blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence

import numpy as np

from .trace import (
    Record,
    Workload,
    WorkloadMeta,
    barrier_record,
    make_flags,
)

_BLOCK = 4096


@dataclass
class PhaseSpec:
    """One phase of one core's execution.

    ``components``/``weights`` define the access mixture; ``n_accesses``
    the phase length; ``mean_gap`` the average number of non-memory
    instructions between memory operations.
    """

    components: Sequence
    weights: Sequence[float]
    n_accesses: int
    mean_gap: float = 10.0

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must have equal length")
        if not self.components:
            raise ValueError("phase needs at least one component")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        if self.n_accesses < 0:
            raise ValueError("n_accesses must be non-negative")
        if self.mean_gap < 0:
            raise ValueError("mean_gap must be non-negative")


#: Pre-computed flag words indexed by [ilp][is_write].
_FLAGS = [
    [make_flags(write=False, ilp=i), make_flags(write=True, ilp=i)]
    for i in range(3)
]


def phase_stream(
    phases: Sequence[PhaseSpec], seed: int, barrier_between: bool = True
) -> Iterator[Record]:
    """Generate the record stream of one core across its phases."""
    rng = np.random.default_rng(seed)
    history: List[int] = []
    flags_tab = _FLAGS
    for pi, phase in enumerate(phases):
        comps = list(phase.components)
        w = np.asarray(phase.weights, dtype=np.float64)
        cumw = np.cumsum(w / w.sum())
        p_gap = 1.0 / (phase.mean_gap + 1.0)
        remaining = phase.n_accesses
        while remaining > 0:
            n = min(_BLOCK, remaining)
            remaining -= n
            choices = np.searchsorted(cumw, rng.random(n))
            gaps = rng.geometric(p_gap, n) - 1
            for k in range(n):
                comp = comps[choices[k]]
                addr, is_write, ilp = comp.emit(history)
                history.append(addr)
                yield (int(gaps[k]), addr, flags_tab[ilp][1 if is_write else 0])
        if barrier_between and pi < len(phases) - 1:
            yield barrier_record()


def phased_workload(
    name: str,
    suite: str,
    kind: str,
    phase_factory: Callable[[int], Sequence[PhaseSpec]],
    n_cores: int,
    accesses_per_core: int,
    footprint_bytes: int,
    shared_bytes: int,
    seed: int,
    description: str = "",
) -> Workload:
    """Assemble a :class:`~repro.workloads.trace.Workload`.

    ``phase_factory(core_id)`` must build a fresh, independent phase list
    every call — the workload's ``streams()`` may be invoked repeatedly
    (once per simulated configuration) and component state (stream
    positions, RNG cursors) must not leak across runs.
    """
    meta = WorkloadMeta(
        name=name,
        suite=suite,
        kind=kind,
        accesses_per_core=accesses_per_core,
        footprint_bytes=footprint_bytes,
        shared_bytes=shared_bytes,
        description=description,
    )

    def factory(n: int) -> list:
        """Materialize one record stream per core (validating the count)."""
        if n != n_cores:
            raise ValueError(f"workload {name} built for {n_cores} cores, asked {n}")
        return [
            phase_stream(phase_factory(cid), seed=(seed * 1_000_003 + cid))
            for cid in range(n)
        ]

    return Workload(meta, factory)


def estimate_cycles_per_access(mean_gap: float, issue_width: int = 4) -> float:
    """Rough cycles-per-memory-access used to convert lags cycles→accesses.

    gap/issue-width compute cycles + ~1 issue cycle + a small average
    exposed-memory contribution.  The constant was fitted once against the
    simulator (see ``tests/workloads/test_cpa_estimate.py``) — precision is
    not critical, it only positions reuse-lag mass.
    """
    return mean_gap / issue_width + 1.9


def lag_accesses(lag_cycles: float, mean_gap: float, issue_width: int = 4) -> int:
    """Convert a reuse lag in cycles to a lag in accesses."""
    cpa = estimate_cycles_per_access(mean_gap, issue_width)
    return max(1, int(round(lag_cycles / cpa)))
