"""Address-space layout for synthetic workloads.

Workloads carve a flat byte address space into named regions: per-core
private heaps, shared read-only data, shared read-write (migratory /
producer-consumer) buffers.  Regions are line-aligned and never overlap,
so sharing behaviour is fully determined by which cores' generators draw
from which regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Regions are aligned to this many bytes (≥ any cache line in use).
REGION_ALIGN = 4096


@dataclass(frozen=True)
class Region:
    """A contiguous, line-aligned chunk of the address space."""

    name: str
    base: int
    size: int
    shared: bool

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    def n_lines(self, line_bytes: int) -> int:
        """Number of cache lines the region spans."""
        return self.size // line_bytes

    def line_addr(self, index: int, line_bytes: int) -> int:
        """Byte address of the ``index``-th line (modulo region size)."""
        n = self.size // line_bytes
        return self.base + (index % n) * line_bytes

    def contains(self, byte_addr: int) -> bool:
        """True when ``byte_addr`` falls inside the region."""
        return self.base <= byte_addr < self.end

    def slice(self, k: int, n: int) -> "Region":
        """The ``k``-th of ``n`` equal, aligned sub-regions (chunking)."""
        if not 0 <= k < n:
            raise ValueError(f"slice {k} of {n} out of range")
        step = (self.size // n) // REGION_ALIGN * REGION_ALIGN
        if step == 0:
            raise ValueError(f"region {self.name} too small to slice {n} ways")
        base = self.base + k * step
        size = step if k < n - 1 else self.end - base
        return Region(f"{self.name}[{k}/{n}]", base, size, self.shared)


class AddressSpace:
    """Bump allocator of non-overlapping regions."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int, shared: bool = False) -> Region:
        """Allocate ``size`` bytes (rounded up to the alignment)."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError("region size must be positive")
        size = -(-size // REGION_ALIGN) * REGION_ALIGN
        region = Region(name, self._next, size, shared)
        self._next = region.end
        self._regions[name] = region
        return region

    def alloc_kb(self, name: str, kb: int, shared: bool = False) -> Region:
        """Allocate ``kb`` kilobytes."""
        return self.alloc(name, kb * 1024, shared)

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        return self._regions[name]

    def regions(self) -> List[Region]:
        """All regions in allocation order."""
        return list(self._regions.values())

    @property
    def total_bytes(self) -> int:
        """Total allocated bytes."""
        return sum(r.size for r in self._regions.values())

    def footprint_bytes(self, include_shared: bool = True) -> int:
        """Aggregate footprint, optionally excluding shared regions."""
        return sum(
            r.size for r in self._regions.values() if include_shared or not r.shared
        )

    def check_disjoint(self) -> None:
        """Assert regions do not overlap (test helper)."""
        regs = sorted(self._regions.values(), key=lambda r: r.base)
        for a, b in zip(regs, regs[1:]):
            if a.end > b.base:
                raise AssertionError(f"regions {a.name} and {b.name} overlap")
