"""Multi-program workload mixes: heterogeneous per-core co-schedules.

The paper evaluates homogeneous runs — every core executes the same
benchmark.  Real CMP consolidation co-schedules *different* programs,
and the leakage techniques react to the per-core reuse/sharing profile,
so the scenario subsystem needs heterogeneous matrices: e.g. two cores
of WATER-NS next to two cores of mpeg2dec.

A mix is addressed by name, so it flows through every existing seam
(specs, cache keys, backends) unchanged::

    mix:water_ns+mpeg2dec

``mix:`` is the dispatch prefix; the ``+``-separated components are
assigned to cores round-robin (core ``c`` runs component ``c % len``).
Each component workload is built once at its full core count and the
mix takes core ``c``'s stream from component ``c % len``, rebased into
the component's own disjoint address window (:data:`REBASE_STRIDE`) —
so a core of a mix replays exactly the access stream it would have had
in the homogeneous run, shifted by a constant that preserves line
offsets and set-index bits, and two co-scheduled programs never alias
each other's cache lines.  Mixes stay fully deterministic.

Known modeling caveat — **barriers gang across programs**: the
simulator releases a barrier when no core is runnable, so a mix core
arriving at its program's barrier also waits for the co-scheduled
program's cores to block (real co-scheduled programs share the memory
system but not barriers).  Absolute mix timings therefore include this
cross-program coupling; *relative* metrics stay internally consistent,
because a mix point's baseline twin is the same mix under the same
coupling.  Per-program barrier groups in the engine are a roadmap item.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .trace import FLAG_BARRIER, Record, Workload, WorkloadMeta

#: dispatch prefix of mix workload names
MIX_PREFIX = "mix:"

#: separator between component names inside a mix name
MIX_SEPARATOR = "+"

#: address offset between component programs.  Every workload carves its
#: regions from a fresh bump allocator starting at the same base, so two
#: independently built programs would otherwise overlap — and the MESI
#: simulator would see phantom cross-program sharing.  Rebasing each
#: distinct component by a 4 GiB stride keeps programs disjoint while
#: preserving line offsets and set-index bits (the stride is a multiple
#: of every cache-set span in use); sharing *within* a program is
#: untouched because all of its cores get the same offset.
REBASE_STRIDE = 1 << 32


def is_mix_name(name: str) -> bool:
    """True when ``name`` addresses a workload mix (``mix:a+b``)."""
    return name.startswith(MIX_PREFIX)


def mix_name(components: Sequence[str]) -> str:
    """Canonical mix name of an ordered component list."""
    if not components:
        raise ValueError("a mix needs at least one component workload")
    return MIX_PREFIX + MIX_SEPARATOR.join(components)


def parse_mix_name(name: str) -> List[str]:
    """Split a ``mix:a+b`` name into its ordered component names.

    Raises ``ValueError`` for names without the prefix or with empty
    components (``mix:``, ``mix:a++b``).  Components are *not* checked
    against the registry here — resolution happens when the mix is
    built, so callers can validate names without building workloads.
    """
    if not is_mix_name(name):
        raise ValueError(f"not a mix name (no {MIX_PREFIX!r} prefix): {name!r}")
    components = name[len(MIX_PREFIX) :].split(MIX_SEPARATOR)
    if not components or any(not c for c in components):
        raise ValueError(
            f"bad mix name {name!r}; expected "
            f"{MIX_PREFIX}<workload>{MIX_SEPARATOR}<workload>..."
        )
    return components


def mix_components_exist(name: str, trace_root: Optional[str] = None) -> bool:
    """True when every component of mix ``name`` resolves to a workload.

    Components may be registered names or ``trace:<file>`` replays;
    ``trace_root`` anchors relative trace paths.
    """
    from .registry import workload_exists

    try:
        components = parse_mix_name(name)
    except ValueError:
        return False
    return all(workload_exists(c, trace_root=trace_root) for c in components)


def assignment(components: Sequence[str], n_cores: int) -> List[str]:
    """Round-robin component assigned to each core (len ``n_cores``)."""
    return [components[c % len(components)] for c in range(n_cores)]


def _rebased(stream: Iterator[Record], offset: int) -> Iterator[Record]:
    """Shift a record stream's addresses by ``offset`` (barriers kept)."""
    if offset == 0:
        return stream

    def gen() -> Iterator[Record]:
        for gap, addr, flags in stream:
            if flags & FLAG_BARRIER:
                yield (gap, addr, flags)
            else:
                yield (gap, addr + offset, flags)

    return gen()


def mix_workload(
    name: str,
    n_cores: int = 4,
    scale: float = 1.0,
    seed: int = 1,
    line_bytes: int = 64,
    trace_root: Optional[str] = None,
) -> Workload:
    """Build the heterogeneous workload a ``mix:`` name describes.

    Every *distinct* component is built once through the registry with
    the mix's full ``n_cores``/``scale``/``seed``, then rebased into its
    own 4 GiB address window (:data:`REBASE_STRIDE`) so co-scheduled
    programs never alias each other's cache lines; core ``c`` of the
    mix then consumes core ``c``'s stream of its assigned component.
    The metadata aggregates conservatively: per-core access counts and
    footprints take the maximum over components (the simulator stops
    each core at its own stream's end; see the module docstring for the
    cross-program barrier caveat).
    """
    from .registry import get_workload

    components = parse_mix_name(name)
    assigned = assignment(components, n_cores)
    # first-appearance order: stable offsets however cores are assigned
    distinct = list(dict.fromkeys(components))
    offsets = {c: i * REBASE_STRIDE for i, c in enumerate(distinct)}
    built = {
        c: get_workload(
            c,
            n_cores=n_cores,
            scale=scale,
            seed=seed,
            line_bytes=line_bytes,
            trace_root=trace_root,
        )
        for c in distinct
    }
    meta = WorkloadMeta(
        name=name,
        suite="mix",
        kind="mix",
        accesses_per_core=max(w.meta.accesses_per_core for w in built.values()),
        footprint_bytes=max(w.meta.footprint_bytes for w in built.values()),
        shared_bytes=max(w.meta.shared_bytes for w in built.values()),
        description="multi-program mix: "
        + ", ".join(f"core{c}={assigned[c]}" for c in range(n_cores)),
    )

    def factory(n: int) -> list:
        """Fresh per-core streams, each drawn from its assigned component."""
        if n != n_cores:
            raise ValueError(f"mix {name} built for {n_cores} cores, asked {n}")
        per_component = {c: built[c].streams(n) for c in distinct}
        return [
            _rebased(per_component[assigned[c]][c], offsets[assigned[c]])
            for c in range(n)
        ]

    return Workload(meta, factory)
