"""Synthetic models of the three SPLASH-2 benchmarks the paper evaluates.

Behavioural stand-ins for WATER-NS, FMM and VOLREND (DESIGN.md §4: the
real suites need compiled binaries and an execution-driven simulator).
Each profile composes the pattern components of
:mod:`repro.workloads.patterns` so that the properties the paper's results
hinge on are reproduced:

==============  =====================================================
WATER-NS        migratory sharing of molecule records (protocol
                invalidations → the Protocol technique shines),
                moderate private footprint, reuse mass both inside
                and beyond the decay range.
FMM             pointer-chasing tree traversal (dependent loads →
                decay misses fully exposed), high write fraction into
                tree nodes (Modified lines → Selective Decay cannot
                gate them and clearly trails plain Decay on energy),
                long-lag reuse that only the 512K decay survives.
VOLREND         large read-only shared volume (widely Shared lines,
                zero invalidations on it), visible reuse mass at
                ~2.5× the 64K decay unit — larger decay times
                recover IPC, the Fig 6(b) signature.
==============  =====================================================

Mixture weights follow the calibration rationale in
:mod:`repro.workloads.profiles`: mid-range reuse is a 1–3 % sliver, hot
sets dominate, communication components set the invalidation rate.
"""

from __future__ import annotations

from .profiles import ComponentSpec, Profile, RegionSpec, build_profile_workload
from .trace import Workload

WATER_NS = Profile(
    name="water_ns",
    suite="splash2",
    kind="scientific",
    n_phases=8,
    mean_gap=10.0,
    description="N-body MD: migratory molecule records, 8 barrier phases",
    regions=(
        RegionSpec("wdata", 640),                  # per-core molecule partitions
        RegionSpec("wmolecules", 16, shared=True),  # migratory exchange buffer
        RegionSpec("wforcetab", 64, shared=True),   # read-mostly force tables
    ),
    components=(
        ComponentSpec("hot", "wdata", weight=0.772, write_frac=0.40, name="hot"),
        ComponentSpec("hot", "wforcetab", weight=0.16, write_frac=0.25, name="tables"),
        ComponentSpec("cold", "wdata", weight=0.018, write_frac=0.55, name="cdata"),
        # Inter-timestep molecule revisits: survive 128K/512K, die at 64K.
        ComponentSpec(
            "trail",
            "wdata",
            weight=0.010,
            write_frac=0.50,
            lag_units=1.4,
            ref="cdata",
            name="t1",
        ),
        # Long-range interactions: beyond every decay time.
        ComponentSpec(
            "trail",
            "wdata",
            weight=0.004,
            write_frac=0.05,
            lag_units=12.0,
            ref="cdata",
            ilp="dep",
            name="t2",
        ),
        ComponentSpec("migratory", "wmolecules", weight=0.036, name="mig"),
    ),
)

FMM = Profile(
    name="fmm",
    suite="splash2",
    kind="scientific",
    n_phases=4,
    mean_gap=9.0,
    description="Fast multipole: dependent tree chases, dirty node updates",
    regions=(
        RegionSpec("ftree", 640),                  # per-core octree partitions
        RegionSpec("fparticles", 384),
        RegionSpec("flists", 64, shared=True),     # interaction lists
        RegionSpec("fbuffer", 64, shared=True),    # phase exchange buffer
    ),
    components=(
        ComponentSpec("hot", "fparticles", weight=0.775, write_frac=0.45, name="hot"),
        ComponentSpec("hot", "flists", weight=0.13, write_frac=0.20, name="lists"),
        # Tree traversals: wrap period ~6 decay units — only 512K keeps the
        # tree warm between passes; loads are dependent (fully exposed).
        ComponentSpec(
            "pchase",
            "ftree",
            weight=0.025,
            write_frac=0.60,
            lag_units=2.5,
            name="chase",
        ),
        ComponentSpec("cold", "ftree", weight=0.012, write_frac=0.50, name="ctree"),
        ComponentSpec(
            "cold", "fparticles", weight=0.010, write_frac=0.35, name="cpart"
        ),
        ComponentSpec(
            "trail",
            "fparticles",
            weight=0.008,
            write_frac=0.20,
            lag_units=3.0,
            ref="cpart",
            ilp="dep",
            name="t1",
        ),
        ComponentSpec("prodcons", "fbuffer", weight=0.040, name="exchange"),
    ),
)

VOLREND = Profile(
    name="volrend",
    suite="splash2",
    kind="scientific",
    n_phases=4,
    mean_gap=12.0,
    description="Volume rendering: read-shared volume, decay-time-sensitive reuse",
    regions=(
        RegionSpec("vrays", 256),                  # per-core ray buffers
        RegionSpec("vvolume", 1536, shared=True),  # read-only volume
        RegionSpec("vtaskq", 16, shared=True),     # task queue
    ),
    components=(
        ComponentSpec("hot", "vrays", weight=0.724, write_frac=0.30, name="hot"),
        ComponentSpec("hot", "vrays", weight=0.135, write_frac=0.25, name="octtab"),
        ComponentSpec("sweep", "vvolume", weight=0.018, name="vol"),
        # Octree/transfer-function re-reads at 2.5 decay units: kept only
        # by the 512K decay — the Fig 6(b) "larger decay helps VOLREND".
        ComponentSpec(
            "trail",
            "vvolume",
            weight=0.010,
            write_frac=0.0,
            lag_units=2.5,
            ref="vol",
            name="tmid",
        ),
        ComponentSpec(
            "trail",
            "vvolume",
            weight=0.055,
            write_frac=0.0,
            lag_units=0.3,
            ref="vol",
            name="tshort",
        ),
        ComponentSpec("cold", "vrays", weight=0.008, write_frac=0.40, name="crays"),
        ComponentSpec("hot", "vtaskq", weight=0.050, write_frac=0.50, name="taskq"),
    ),
)


def water_ns(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """WATER-NS: N-body molecular dynamics with migratory molecule records."""
    return build_profile_workload(WATER_NS, n_cores, scale, seed, line_bytes)


def fmm(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """FMM: fast multipole method — tree chase, heavy node updates."""
    return build_profile_workload(FMM, n_cores, scale, seed, line_bytes)


def volrend(
    n_cores: int = 4, scale: float = 1.0, seed: int = 1, line_bytes: int = 64
) -> Workload:
    """VOLREND: ray-casting over a read-only shared volume."""
    return build_profile_workload(VOLREND, n_cores, scale, seed, line_bytes)
