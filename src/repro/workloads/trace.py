"""Trace record format shared by workload generators and the CPU model.

A workload is one access stream per core.  Each record is a plain tuple
``(gap, addr, flags)``:

* ``gap`` — non-memory instructions executed before this operation (the
  core charges them at its issue width);
* ``addr`` — byte address touched (ignored for barriers);
* ``flags`` — bit 0: write; bits 1–2: ILP class (how much of a miss the
  out-of-order window can hide — 0 dependent, 1 moderate, 2 streaming);
  bit 3: barrier marker (global synchronization point).

Tuples instead of objects keep the generator→core hot path allocation-
light; the helpers below are for tests and workload authors, not the
simulator loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

FLAG_WRITE = 0x1
ILP_SHIFT = 1
ILP_MASK = 0x3
FLAG_BARRIER = 0x8

#: ILP classes
ILP_DEPENDENT = 0   #: pointer-chase style loads; little latency hiding
ILP_MODERATE = 1    #: typical compute loops
ILP_STREAMING = 2   #: prefetch-friendly sequential streams

Record = Tuple[int, int, int]


def make_flags(write: bool, ilp: int = ILP_MODERATE, barrier: bool = False) -> int:
    """Compose a flags word."""
    if not 0 <= ilp <= 2:
        raise ValueError(f"ilp class must be 0..2, got {ilp}")
    f = (ilp & ILP_MASK) << ILP_SHIFT
    if write:
        f |= FLAG_WRITE
    if barrier:
        f |= FLAG_BARRIER
    return f


def barrier_record() -> Record:
    """A synchronization record (no memory access)."""
    return (0, 0, FLAG_BARRIER)


def is_write(flags: int) -> bool:
    """True for stores."""
    return bool(flags & FLAG_WRITE)


def ilp_class(flags: int) -> int:
    """ILP class encoded in ``flags``."""
    return (flags >> ILP_SHIFT) & ILP_MASK


def is_barrier(flags: int) -> bool:
    """True for barrier markers."""
    return bool(flags & FLAG_BARRIER)


@dataclass(frozen=True)
class WorkloadMeta:
    """Descriptive metadata attached to a workload.

    ``suite`` is ``"splash2"``/``"alpbench"``/``"synthetic"``; ``kind`` is
    ``"scientific"`` or ``"multimedia"`` (the paper groups results this
    way).  Footprints are per core, in bytes, and include shared regions.
    """

    name: str
    suite: str
    kind: str
    accesses_per_core: int
    footprint_bytes: int
    shared_bytes: int
    description: str = ""


class Workload:
    """A named bundle of per-core access streams.

    ``streams()`` returns fresh, independent iterators — a workload can be
    replayed across techniques/cache sizes, which is how the harness keeps
    comparisons paired.
    """

    def __init__(self, meta: WorkloadMeta, stream_factory) -> None:
        self.meta = meta
        self._factory = stream_factory

    @property
    def name(self) -> str:
        """Workload name (e.g. ``water_ns``)."""
        return self.meta.name

    def streams(self, n_cores: int) -> list:
        """Fresh per-core record iterators."""
        return self._factory(n_cores)


def validate_stream(records: Iterator[Record], max_records: int = 1_000_000) -> dict:
    """Sanity-scan a stream; returns summary stats (test helper).

    Checks gaps are non-negative, flags are well-formed, and addresses are
    non-negative.  Stops after ``max_records``.
    """
    n = writes = barriers = 0
    gaps = 0
    min_addr, max_addr = None, None
    for gap, addr, flags in records:
        if gap < 0:
            raise ValueError(f"negative gap at record {n}")
        if addr < 0:
            raise ValueError(f"negative address at record {n}")
        gaps += gap
        if is_barrier(flags):
            barriers += 1
        else:
            if is_write(flags):
                writes += 1
            min_addr = addr if min_addr is None else min(min_addr, addr)
            max_addr = addr if max_addr is None else max(max_addr, addr)
        n += 1
        if n >= max_records:
            break
    return {
        "records": n,
        "writes": writes,
        "barriers": barriers,
        "total_gap": gaps,
        "min_addr": min_addr,
        "max_addr": max_addr,
    }
