"""Time-dilation support for workload construction (DESIGN.md §5).

The paper runs benchmarks to completion (hundreds of millions of cycles)
with decay times of 64K–512K cycles.  Reproduction runs are shorter by a
factor ``scale``; the harness scales the decay times by the same factor,
and workload builders use the helpers here so every *temporal* pattern
parameter is expressed relative to the scaled decay times:

* ``decay_unit(scale)`` — the scaled 64K-cycle unit ``D``; reuse-lag mass
  is positioned at multiples of ``D`` (e.g. ``2.5 * D`` sits between the
  scaled 128K and 512K decay times, so it survives only the longest);
* hot sets are sized so their reuse stays far below the *smallest* scaled
  decay time (they must never decay at any supported scale);
* phase-periodic patterns (migratory, producer/consumer) are naturally
  invariant: phase lengths and decay times both scale together.

Spatial parameters (footprints) are physical bytes and do *not* scale;
at very small scales a run may not cover a large footprint, which shifts
Protocol-technique occupancy — ``coverage_fraction`` lets callers report
this distortion honestly.
"""

from __future__ import annotations

#: Nominal (unscaled) decay times of the paper, cycles.
NOMINAL_DECAY_SHORT = 64_000
NOMINAL_DECAY_MID = 128_000
NOMINAL_DECAY_LONG = 512_000

#: Accesses per core of a scale-1.0 run.
BASE_ACCESSES_PER_CORE = 2_000_000

#: Smallest scale the workload models are designed for (hot-set L2 reuse
#: keeps a comfortable tail margin below the smallest decay time down to
#: this point).
MIN_SUPPORTED_SCALE = 0.04


def decay_unit(scale: float) -> float:
    """The scaled 64K-cycle decay unit ``D``."""
    return NOMINAL_DECAY_SHORT * scale


def accesses_per_core(scale: float) -> int:
    """Run length per core at ``scale``."""
    return max(1000, int(BASE_ACCESSES_PER_CORE * scale))


def check_scale(scale: float) -> float:
    """Validate a scale factor; returns it unchanged."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale < MIN_SUPPORTED_SCALE:
        raise ValueError(
            f"scale {scale} below supported minimum {MIN_SUPPORTED_SCALE}: "
            f"hot-set reuse would cross the smallest decay time and the "
            f"paper's shapes would no longer be preserved"
        )
    return scale


def hot_set_lines(
    weight: float,
    write_frac: float,
    mean_gap: float,
    issue_width: int = 4,
    tail_margin: float = 7.0,
) -> int:
    """Largest hot set whose L2-visible reuse stays under the smallest decay time.

    The L1 absorbs hot *loads*; the private L2 sees a hot line only when a
    buffered store to it drains.  The per-line L2 touch interval is
    therefore ``N / (weight × write_frac)`` accesses.  Intervals are
    roughly geometric, so requiring

        mean_interval ≤ smallest_scaled_decay / tail_margin

    keeps the probability of a spurious hot-line decay below
    ``exp(-tail_margin)`` (≈1e-3 at the default 7).  Evaluated at
    :data:`MIN_SUPPORTED_SCALE` so the hot set has the same physical size
    at every scale and occupancy floors stay comparable across runs.
    """
    from .phases import estimate_cycles_per_access

    cpa = estimate_cycles_per_access(mean_gap, issue_width)
    budget_cycles = NOMINAL_DECAY_SHORT * MIN_SUPPORTED_SCALE / tail_margin
    touch_rate = max(1e-6, weight * write_frac)
    n = int(budget_cycles * touch_rate / cpa)
    return max(8, n)


def coverage_fraction(
    region_bytes: int, weight: float, n_accesses: int, line_bytes: int
) -> float:
    """Fraction of a cold-swept region a run will touch (≤ 1.0)."""
    lines = region_bytes // line_bytes
    if lines == 0:
        return 1.0
    touched = weight * n_accesses
    return min(1.0, touched / lines)
