"""Composable access-pattern components.

Each component models one kind of memory behaviour observed in the paper's
benchmark suites; a per-core *mixture* (see :mod:`repro.workloads.phases`)
interleaves several components with configurable weights.  Components are
deliberately scale-aware: temporal knobs (revisit lags) are expressed in
cycles and provided already scaled by the harness, while spatial knobs
(footprints) are physical bytes — see DESIGN.md §5 on why this split keeps
the paper's shapes reproducible in short runs.

Component protocol::

    addr, is_write, ilp = component.emit(history)

``history`` is the per-core list of previously emitted byte addresses
(appended by the mixture); :class:`LaggedRevisit` uses it to re-touch lines
last seen a chosen time ago, which is the knob that positions reuse-
interval mass relative to the decay times.

All randomness is drawn from per-component ``numpy`` generators with
derived seeds and is pre-generated in blocks to keep the per-access Python
cost low (hpc-parallel guide: vectorize the hot path where possible).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .address_space import Region
from .trace import ILP_DEPENDENT, ILP_MODERATE, ILP_STREAMING

_BLOCK = 4096  # pre-generation block size


class _Blocked:
    """Shared helper: block-cached random draws."""

    def __init__(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self._wcur = _BLOCK
        self._wblk: Optional[np.ndarray] = None
        self._wfrac = -1.0

    def _write_flag(self, write_frac: float) -> bool:
        """Cheap Bernoulli(write_frac) draw."""
        if self._wcur >= _BLOCK or self._wfrac != write_frac:
            self._wblk = self.rng.random(_BLOCK) < write_frac
            self._wcur = 0
            self._wfrac = write_frac
        v = self._wblk[self._wcur]
        self._wcur += 1
        return bool(v)


class ColdStream(_Blocked):
    """Sequential first-touch sweep over a region (streaming behaviour).

    Models frame buffers, input streams, and large array passes: every line
    is touched in order, in short bursts of ``burst`` consecutive accesses
    per line-step, wrapping at the region end.  Reuse interval of a line is
    the full wrap period — effectively infinite for short runs — so these
    lines are decay-friendly (dead after first use).
    """

    name = "cold_stream"

    def __init__(
        self,
        region: Region,
        line_bytes: int,
        seed: int,
        write_frac: float = 0.0,
        ilp: int = ILP_STREAMING,
        start_line: int = 0,
        stride_lines: int = 1,
    ) -> None:
        super().__init__(seed)
        self.region = region
        self.line_bytes = line_bytes
        self.write_frac = write_frac
        self.ilp = ilp
        self.n_lines = region.n_lines(line_bytes)
        if self.n_lines < 1:
            raise ValueError(f"region {region.name} smaller than one line")
        self.pos = start_line % self.n_lines
        self.stride = stride_lines
        self.wrapped = 0

    def emit(self, history: List[int]) -> tuple:
        """Next streaming access (advance by the stride, wrap at the region end)."""
        addr = self.region.base + self.pos * self.line_bytes
        self.pos += self.stride
        if self.pos >= self.n_lines:
            self.pos %= self.n_lines
            self.wrapped += 1
        return (addr, self._write_flag(self.write_frac), self.ilp)


class HotSet(_Blocked):
    """Uniform or Zipf-skewed accesses over a small resident set.

    Models locks, tables, stack frames, per-thread accumulators: reuse
    intervals far below any decay time, so these lines never decay and
    anchor the occupancy floor.
    """

    name = "hot_set"

    def __init__(
        self,
        region: Region,
        line_bytes: int,
        seed: int,
        hot_lines: Optional[int] = None,
        write_frac: float = 0.3,
        zipf_alpha: float = 0.0,
        ilp: int = ILP_MODERATE,
    ) -> None:
        super().__init__(seed)
        self.region = region
        self.line_bytes = line_bytes
        self.write_frac = write_frac
        self.ilp = ilp
        n = region.n_lines(line_bytes)
        self.hot_lines = n if hot_lines is None else min(hot_lines, n)
        if self.hot_lines < 1:
            raise ValueError("hot set must contain at least one line")
        if zipf_alpha > 0.0:
            ranks = np.arange(1, self.hot_lines + 1, dtype=np.float64)
            p = ranks ** (-zipf_alpha)
            self._p = p / p.sum()
        else:
            self._p = None
        self._icur = _BLOCK
        self._iblk: Optional[np.ndarray] = None

    def _index(self) -> int:
        if self._icur >= _BLOCK:
            if self._p is None:
                self._iblk = self.rng.integers(0, self.hot_lines, _BLOCK)
            else:
                self._iblk = self.rng.choice(self.hot_lines, _BLOCK, p=self._p)
            self._icur = 0
        v = self._iblk[self._icur]
        self._icur += 1
        return int(v)

    def emit(self, history: List[int]) -> tuple:
        """One access to a (possibly Zipf-weighted) hot line."""
        addr = self.region.base + self._index() * self.line_bytes
        return (addr, self._write_flag(self.write_frac), self.ilp)


class LaggedRevisit(_Blocked):
    """Re-touch a line last accessed ≈ ``lag_accesses`` ago.

    This is the reuse-interval shaper: mass placed at lag L (in accesses;
    the builder converts cycles → accesses with the workload's
    cycles-per-access estimate) produces L2 reuse hits in the baseline that
    become misses under any decay time shorter than L — exactly the
    mechanism behind the paper's decay-time sensitivity (Fig 5/6).

    When the history is still shorter than the lag, falls back to the
    provided ``fallback`` component (typically the hot set).
    """

    name = "lagged_revisit"

    def __init__(
        self,
        line_bytes: int,
        seed: int,
        lag_accesses: int,
        jitter_frac: float = 0.2,
        write_frac: float = 0.1,
        ilp: int = ILP_DEPENDENT,
        fallback=None,
    ) -> None:
        super().__init__(seed)
        if lag_accesses < 1:
            raise ValueError("lag_accesses must be >= 1")
        self.line_bytes = line_bytes
        self.lag = lag_accesses
        self.jitter = int(lag_accesses * jitter_frac)
        self.write_frac = write_frac
        self.ilp = ilp
        self.fallback = fallback
        self._jcur = _BLOCK
        self._jblk: Optional[np.ndarray] = None

    def _lag_sample(self) -> int:
        if not self.jitter:
            return self.lag
        if self._jcur >= _BLOCK:
            self._jblk = self.rng.integers(-self.jitter, self.jitter + 1, _BLOCK)
            self._jcur = 0
        v = self._jblk[self._jcur]
        self._jcur += 1
        return self.lag + int(v)

    def emit(self, history: List[int]) -> tuple:
        """Re-touch the address emitted ``lag`` accesses ago (or the fallback)."""
        lag = self._lag_sample()
        idx = len(history) - lag
        if idx < 0:
            if self.fallback is not None:
                return self.fallback.emit(history)
            idx = 0
            if not history:
                # Degenerate: nothing to revisit yet and no fallback.
                return (0, False, self.ilp)
        return (history[idx], self._write_flag(self.write_frac), self.ilp)


class TrailingRevisit(_Blocked):
    """Re-touch lines a :class:`ColdStream` swept a fixed time ago.

    The precise reuse-interval shaper used by the benchmark models: cold
    streams advance one line per emission, so the line emitted ``k`` cold
    steps ago is simply ``pos - k`` (mod region size) — no history scan
    needed.  Given the stream's mixture weight ``w_cold`` and a target lag
    in *global* accesses ``lag_accesses``, the builder passes
    ``lag_cold_steps = lag_accesses * w_cold``.

    Lines revisited this way have a baseline L2 reuse distance of
    ``lag_accesses × cycles-per-access`` cycles; any decay time shorter
    than that turns the revisit into a decay-induced miss.  This is the
    knob that positions the paper's decay-time sensitivity.
    """

    name = "trailing_revisit"

    def __init__(
        self,
        cold: "ColdStream",
        seed: int,
        lag_cold_steps: int,
        jitter_frac: float = 0.15,
        write_frac: float = 0.1,
        ilp: int = ILP_MODERATE,
        fallback=None,
    ) -> None:
        super().__init__(seed)
        if lag_cold_steps < 1:
            raise ValueError("lag_cold_steps must be >= 1")
        self.cold = cold
        self.lag = lag_cold_steps
        self.jitter = int(lag_cold_steps * jitter_frac)
        self.write_frac = write_frac
        self.ilp = ilp
        self.fallback = fallback
        self._jcur = _BLOCK
        self._jblk: Optional[np.ndarray] = None

    def _lag_sample(self) -> int:
        if not self.jitter:
            return self.lag
        if self._jcur >= _BLOCK:
            self._jblk = self.rng.integers(-self.jitter, self.jitter + 1, _BLOCK)
            self._jcur = 0
        v = self._jblk[self._jcur]
        self._jcur += 1
        return max(1, self.lag + int(v))

    def emit(self, history: List[int]) -> tuple:
        """Revisit a line the tracked cold stream touched ``lag`` steps ago."""
        cold = self.cold
        lag = self._lag_sample()
        covered = cold.pos + cold.wrapped * cold.n_lines
        if lag >= covered:
            if self.fallback is not None:
                return self.fallback.emit(history)
            lag = max(1, covered)
            if covered == 0:
                return (cold.region.base, False, self.ilp)
        idx = (cold.pos - lag) % cold.n_lines
        addr = cold.region.base + idx * cold.line_bytes
        return (addr, self._write_flag(self.write_frac), self.ilp)


class SharedSweep(_Blocked):
    """Streaming reads over a shared region (read-only sharing).

    Models VOLREND's volume and facerec's gallery: many cores stream the
    same data, producing widely Shared lines and zero invalidations.
    Each core can start at its own offset so sharing overlaps but is not
    lock-step.
    """

    name = "shared_sweep"

    def __init__(
        self,
        region: Region,
        line_bytes: int,
        seed: int,
        start_frac: float = 0.0,
        write_frac: float = 0.0,
        ilp: int = ILP_STREAMING,
    ) -> None:
        super().__init__(seed)
        self.inner = ColdStream(
            region,
            line_bytes,
            seed ^ 0x5EED,
            write_frac=write_frac,
            ilp=ilp,
            start_line=int(region.n_lines(line_bytes) * start_frac),
        )

    def emit(self, history: List[int]) -> tuple:
        """Delegate to the inner stream component."""
        return self.inner.emit(history)


class MigratoryChunk(_Blocked):
    """Read-modify-write bursts over a shared chunk (migratory sharing).

    The caller points each core at the chunk it *owns this phase*; rotating
    ownership between phases produces the classic migratory pattern: the
    new owner's BusRdX invalidates the previous owner's lines — the food of
    the paper's Protocol technique.
    """

    name = "migratory"

    def __init__(
        self,
        chunk: Region,
        line_bytes: int,
        seed: int,
        rmw: bool = True,
        ilp: int = ILP_MODERATE,
    ) -> None:
        super().__init__(seed)
        self.chunk = chunk
        self.line_bytes = line_bytes
        self.n_lines = chunk.n_lines(line_bytes)
        self.rmw = rmw
        self.ilp = ilp
        self._phase_read = True
        self._pos = 0
        self._icur = _BLOCK
        self._iblk: Optional[np.ndarray] = None

    def _index(self) -> int:
        if self._icur >= _BLOCK:
            self._iblk = self.rng.integers(0, self.n_lines, _BLOCK)
            self._icur = 0
        v = self._iblk[self._icur]
        self._icur += 1
        return int(v)

    def emit(self, history: List[int]) -> tuple:
        """One access of the read-modify-write (or plain) chunk pattern."""
        if self.rmw:
            # Alternate read / write to the same line: load, then store.
            if self._phase_read:
                self._pos = self._index()
                self._phase_read = False
                return (
                    self.chunk.base + self._pos * self.line_bytes,
                    False,
                    self.ilp,
                )
            self._phase_read = True
            return (self.chunk.base + self._pos * self.line_bytes, True, self.ilp)
        return (self.chunk.base + self._index() * self.line_bytes, True, self.ilp)


class ProducerConsumer(_Blocked):
    """One-directional streaming communication through a shared buffer.

    In a *producing* phase the component writes the chunk sequentially; in
    a *consuming* phase it reads it.  Alternating roles across cores and
    phases yields upgrade/invalidation traffic plus cache-to-cache
    transfers (dirty flush on the consumer's BusRd).
    """

    name = "producer_consumer"

    def __init__(
        self,
        chunk: Region,
        line_bytes: int,
        seed: int,
        producing: bool,
        ilp: int = ILP_MODERATE,
    ) -> None:
        super().__init__(seed)
        self.inner = ColdStream(
            chunk,
            line_bytes,
            seed ^ 0xAB1E,
            write_frac=1.0 if producing else 0.0,
            ilp=ilp,
        )
        self.producing = producing

    def emit(self, history: List[int]) -> tuple:
        """Delegate to the inner stream component."""
        return self.inner.emit(history)


class PointerChase(_Blocked):
    """Random-permutation walk over a region (dependent loads).

    Models FMM's tree traversals: every load depends on the previous one
    (ILP class *dependent*, so decay-induced misses are fully exposed),
    and the walk revisits each line once per full cycle of the permutation.
    """

    name = "pointer_chase"

    def __init__(
        self,
        region: Region,
        line_bytes: int,
        seed: int,
        n_nodes: Optional[int] = None,
        write_frac: float = 0.0,
    ) -> None:
        super().__init__(seed)
        self.region = region
        self.line_bytes = line_bytes
        n = region.n_lines(line_bytes)
        self.n_nodes = min(n_nodes or n, n)
        # A single-cycle permutation guarantees full coverage.
        perm = self.rng.permutation(self.n_nodes)
        nxt = np.empty(self.n_nodes, dtype=np.int64)
        nxt[perm[:-1]] = perm[1:]
        nxt[perm[-1]] = perm[0]
        self._next = nxt
        self._cur = int(perm[0])
        self.write_frac = write_frac

    def emit(self, history: List[int]) -> tuple:
        """Follow one pointer hop (dependent load)."""
        addr = self.region.base + self._cur * self.line_bytes
        self._cur = int(self._next[self._cur])
        return (addr, self._write_flag(self.write_frac), ILP_DEPENDENT)


class WriteFracOverride(_Blocked):
    """Delegate to another component but re-draw the write flag.

    Used by the profile builder's *init phase*: the same stateful stream
    component (position must carry over into steady state) is driven with
    a different store fraction — real initialization mixes stores with
    reads of input files, so not every initialized line ends up Modified.
    """

    name = "write_frac_override"

    def __init__(self, inner, write_frac: float, seed: int) -> None:
        super().__init__(seed)
        self.inner = inner
        self.write_frac = write_frac

    def emit(self, history: List[int]) -> tuple:
        """Delegate to the inner component, re-drawing the write flag."""
        addr, _, ilp = self.inner.emit(history)
        return (addr, self._write_flag(self.write_frac), ilp)


def component_names(components: Sequence) -> List[str]:
    """Names of a component list (diagnostics)."""
    return [c.name for c in components]
