"""Protocol-level L2 tests: MESI across private caches, fills, snoops.

These drive the MemorySystem directly (no cores): ``l2.access`` for demand
traffic, checking states, inclusion bits and traffic counters.
"""

import pytest

from repro.coherence.states import E, I, M, OFF, S
from tests.conftest import make_system, tiny_config


def state_of(l2, line):
    f = l2.array.probe(line)
    return l2.array.state[f] if f >= 0 else None


class TestFillStates:
    def test_read_miss_unshared_fills_e(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, now=0, is_write=False)
        assert state_of(sys.l2s[0], 0x100) == E

    def test_read_miss_shared_fills_s_and_demotes_owner(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, False)
        sys.l2s[1].access(0x100, 50, False)
        assert state_of(sys.l2s[0], 0x100) == S
        assert state_of(sys.l2s[1], 0x100) == S

    def test_write_miss_fills_m(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, True)
        assert state_of(sys.l2s[0], 0x100) == M

    def test_write_invalidates_remote_copies(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, False)
        sys.l2s[1].access(0x100, 50, True)
        assert state_of(sys.l2s[0], 0x100) in (None, I, OFF)
        assert state_of(sys.l2s[1], 0x100) == M
        assert sys.l2s[0].stats.snoop_invalidations == 1

    def test_write_hit_e_upgrades_silently(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, False)   # E
        before = sys.bus.stats.transactions
        sys.l2s[0].access(0x100, 10, True)   # E -> M, no bus txn
        assert sys.bus.stats.transactions == before
        assert state_of(sys.l2s[0], 0x100) == M

    def test_write_hit_s_broadcasts_upgrade(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, False)
        sys.l2s[1].access(0x100, 10, False)   # both S
        from repro.coherence.events import BUS_UPGR

        before = sys.bus.stats.count(BUS_UPGR)
        sys.l2s[0].access(0x100, 20, True)
        assert sys.bus.stats.count(BUS_UPGR) == before + 1
        assert state_of(sys.l2s[0], 0x100) == M
        assert state_of(sys.l2s[1], 0x100) in (None, I, OFF)


class TestDirtySharing:
    def test_remote_read_of_m_line_flushes(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, True)    # M in cache 0
        sys.l2s[1].access(0x100, 50, False)  # BusRd: flush + demote
        assert state_of(sys.l2s[0], 0x100) == S
        assert state_of(sys.l2s[1], 0x100) == S
        assert sys.l2s[0].stats.writebacks == 1      # memory picked it up
        assert sys.l2s[1].stats.cache_to_cache == 1  # supplied by sibling

    def test_remote_write_of_m_line_transfers_ownership(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x100, 0, True)
        sys.l2s[1].access(0x100, 50, True)
        assert state_of(sys.l2s[0], 0x100) in (None, I, OFF)
        assert state_of(sys.l2s[1], 0x100) == M


class TestEvictions:
    def test_dirty_eviction_writes_back(self):
        cfg = tiny_config(l2_kb=16)  # 4-way, 64 sets
        sys = make_system(cfg)
        l2 = sys.l2s[0]
        n_sets = l2.geom.n_sets
        # Fill one set beyond capacity with dirty lines.
        for k in range(5):
            l2.access(k * n_sets, k * 10, True)
        assert l2.stats.evictions == 1
        assert l2.stats.writebacks == 1
        assert sys.memory.stats.line_writes >= 1

    def test_clean_eviction_silent(self):
        sys = make_system(tiny_config(l2_kb=16))
        l2 = sys.l2s[0]
        n_sets = l2.geom.n_sets
        for k in range(5):
            l2.access(k * n_sets, k * 10, False)
        assert l2.stats.evictions == 1
        assert l2.stats.writebacks == 0


class TestLatencies:
    def test_hit_faster_than_miss(self):
        sys = make_system(tiny_config())
        l2 = sys.l2s[0]
        miss_lat = l2.access(0x200, 0, False)
        hit_lat = l2.access(0x200, 1000, False)
        assert hit_lat == l2.hit_latency
        assert miss_lat > hit_lat

    def test_cache_to_cache_faster_than_memory(self):
        sys = make_system(tiny_config())
        sys.l2s[0].access(0x300, 0, True)          # M in sibling
        lat_c2c = sys.l2s[1].access(0x300, 100, False)
        lat_mem = sys.l2s[2].access(0x999, 10_000, False)
        assert lat_c2c < lat_mem

    def test_decay_penalty_applied(self):
        base = make_system(tiny_config("baseline"))
        dec = make_system(tiny_config("decay"))
        assert dec.l2s[0].hit_latency == base.l2s[0].hit_latency + 1


class TestInvariantsAfterTraffic:
    def test_single_writer_invariant(self):
        sys = make_system(tiny_config())
        for t, (cid, line, wr) in enumerate(
            [(0, 1, True), (1, 1, False), (2, 1, True), (3, 2, False),
             (0, 2, True), (1, 2, True), (2, 1, False), (3, 1, True)]
        ):
            sys.l2s[cid].access(line, t * 100, wr)
        sys.check_invariants()

    def test_occupancy_tracker_consistent(self):
        sys = make_system(tiny_config("protocol"))
        for t, (cid, line, wr) in enumerate(
            [(0, 5, False), (1, 5, True), (0, 5, False), (2, 9, True),
             (3, 9, True), (1, 9, False)]
        ):
            sys.l2s[cid].access(line, t * 50, wr)
        for l2 in sys.l2s:
            l2.check_invariants()
