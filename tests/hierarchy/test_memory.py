"""External memory channel: latency, bandwidth accounting, contention."""

from repro.hierarchy.memory import MainMemory
from repro.sim.config import MemoryConfig


class TestReads:
    def test_fixed_latency_no_contention(self):
        m = MainMemory(MemoryConfig(latency=100, contention=False), 64)
        assert m.read_line(0) == 100
        assert m.read_line(1) == 101

    def test_traffic_counted(self):
        m = MainMemory(MemoryConfig(latency=100), 64)
        m.read_line(0)
        m.write_line(0)
        assert m.stats.line_reads == 1
        assert m.stats.line_writes == 1
        assert m.stats.total_bytes == 128

    def test_contention_queues(self):
        m = MainMemory(
            MemoryConfig(latency=100, bytes_per_cycle=8.0, contention=True), 64)
        t1 = m.read_line(0)       # occupies channel for 8 cycles
        t2 = m.read_line(0)       # queued behind it
        assert t1 == 100
        assert t2 == 108

    def test_idle_gap_no_queueing(self):
        m = MainMemory(MemoryConfig(latency=100, contention=True), 64)
        m.read_line(0)
        assert m.read_line(1000) == 1100


class TestWrites:
    def test_writes_are_posted(self):
        m = MainMemory(MemoryConfig(latency=100, contention=True), 64)
        accepted = m.write_line(50)
        assert accepted == 50  # nobody waits for the full latency

    def test_writes_still_occupy_channel(self):
        m = MainMemory(
            MemoryConfig(latency=100, bytes_per_cycle=8.0, contention=True), 64)
        m.write_line(0)
        assert m.read_line(0) == 8 + 100

    def test_reset_stats(self):
        m = MainMemory(MemoryConfig(), 64)
        m.read_line(0)
        m.reset_stats()
        assert m.stats.total_bytes == 0
