"""L1 behaviour: write-through, write buffer, MSHR, inclusion maintenance."""

import pytest

from repro.coherence.states import M
from tests.conftest import make_system, tiny_config


class TestLoadPath:
    def test_load_miss_fills_both_levels(self):
        sys = make_system(tiny_config())
        l1, l2 = sys.l1s[0], sys.l2s[0]
        lat, stall = l1.load(0x20, 0)
        assert l1.holds(0x20)
        assert l2.array.probe(0x20) >= 0
        assert lat > l1.hit_latency
        assert stall == 0

    def test_load_hit_is_cheap(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        l1.load(0x20, 0)
        lat, _ = l1.load(0x20, 500)
        assert lat == l1.hit_latency

    def test_inclusion_bit_set_on_l1_fill(self):
        sys = make_system(tiny_config())
        l1, l2 = sys.l1s[0], sys.l2s[0]
        l1.load(0x20, 0)
        frame = l2.array.probe(0x20)
        assert l2.l1_present[frame] == 1

    def test_l1_eviction_clears_inclusion_bit(self):
        cfg = tiny_config(l1_kb=1)  # 16 lines, 2-way -> 8 sets
        sys = make_system(cfg)
        l1, l2 = sys.l1s[0], sys.l2s[0]
        n_sets = l1.geom.n_sets
        l1.load(0, 0)
        l1.load(n_sets, 10)       # same L1 set
        l1.load(2 * n_sets, 20)   # evicts line 0 from L1
        frame = l2.array.probe(0)
        assert frame >= 0
        assert l2.l1_present[frame] == 0

    def test_mshr_merge_on_secondary_miss(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        l1.load(0x20, 0)
        # Fake an outstanding entry by reaching into the MSHR.
        l1.mshr.allocate(0x99, 0, 500, False)
        lat, _ = l1.load(0x99, 10)
        assert l1.stats.mshr_merges == 1
        assert lat == 490  # completes with the primary miss

    def test_mshr_full_stalls(self):
        cfg = tiny_config()
        sys = make_system(cfg)
        l1 = sys.l1s[0]
        cap = l1.mshr.capacity
        for i in range(cap):
            l1.mshr.allocate(0x1000 + i, 0, 10_000 + i, False)
        lat, stall = l1.load(0x20, 0)
        assert stall > 0
        assert l1.mshr.stats.full_stalls == 1


class TestStorePath:
    def test_store_buffers_quickly(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        lat, stall = l1.store(0x30, 0)
        assert lat == 1 and stall == 0
        assert l1.has_pending_write(0x30)

    def test_store_no_allocate_on_miss(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        l1.store(0x30, 0)
        assert not l1.holds(0x30)

    def test_store_hit_updates_l1(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        l1.load(0x30, 0)
        l1.store(0x30, 100)
        assert l1.stats.store_hits == 1
        assert l1.holds(0x30)

    def test_drain_makes_l2_line_modified(self):
        sys = make_system(tiny_config())
        l1, l2 = sys.l1s[0], sys.l2s[0]
        l1.store(0x30, 0)
        assert l1.drain_one(100)
        frame = l2.array.probe(0x30)
        assert l2.array.state[frame] == M
        assert not l1.has_pending_write(0x30)

    def test_drain_respects_ready_time(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        l1.store(0x30, 0)
        ready = l1.next_drain_time()
        assert ready > 0
        assert not l1.drain_one(ready - 1)
        assert l1.drain_one(ready)

    def test_full_buffer_stalls_and_drains(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        cap = l1.write_buffer.capacity
        for i in range(cap):
            l1.store(0x1000 + i * 64, 0)
        lat, stall = l1.store(0x9000, 0)
        assert stall > 0
        assert l1.write_buffer.stats.full_stalls == 1
        # the head was pushed to L2
        assert sys.l2s[0].stats.writes == 1

    def test_coalescing_store_never_stalls(self):
        sys = make_system(tiny_config())
        l1 = sys.l1s[0]
        cap = l1.write_buffer.capacity
        for i in range(cap):
            l1.store(0x1000 + i * 64, 0)
        lat, stall = l1.store(0x1000, 1)  # coalesces with entry 0
        assert stall == 0


class TestInclusionInvalidations:
    def test_remote_write_invalidates_l1_too(self):
        sys = make_system(tiny_config())
        sys.l1s[0].load(0x40, 0)
        assert sys.l1s[0].holds(0x40)
        sys.l2s[1].access(0x40, 100, True)  # remote BusRdX
        assert not sys.l1s[0].holds(0x40)
        sys.l1s[0].check_inclusion()

    def test_l2_capacity_eviction_invalidates_l1(self):
        sys = make_system(tiny_config(l2_kb=16))
        l1, l2 = sys.l1s[0], sys.l2s[0]
        n_sets = l2.geom.n_sets
        l1.load(0, 0)
        for k in range(1, 5):  # fill the set, evicting line 0 from L2
            l2.access(k * n_sets, k * 10, False)
        assert not l1.holds(0)
        l1.check_inclusion()

    def test_inclusion_invariant_after_mixed_traffic(self):
        import random

        rng = random.Random(11)
        sys = make_system(tiny_config())
        t = 0
        for _ in range(400):
            cid = rng.randrange(4)
            line = rng.randrange(48)
            if rng.random() < 0.5:
                sys.l1s[cid].load(line, t)
            else:
                sys.l1s[cid].store(line, t)
                if rng.random() < 0.5:
                    sys.l1s[cid].drain_one(t + 3)
            t += 25
        sys.check_invariants()
