"""Gating behaviour per technique: protocol invalidations, decay turn-offs,
Table I conditions wired into the live hierarchy."""

import pytest

from repro.coherence.states import E, I, M, OFF, S
from tests.conftest import make_system, tiny_config


def state_of(l2, line):
    f = l2.array.probe(line)
    return l2.array.state[f] if f >= 0 else None


class TestColdStart:
    def test_baseline_starts_powered(self):
        sys = make_system(tiny_config("baseline"))
        l2 = sys.l2s[0]
        assert l2.occupancy.on_lines == l2.geom.n_lines
        assert all(s == I for s in l2.array.state)

    @pytest.mark.parametrize("tech", ["protocol", "decay", "selective_decay"])
    def test_gating_techniques_start_gated(self, tech):
        sys = make_system(tiny_config(tech))
        l2 = sys.l2s[0]
        assert l2.occupancy.on_lines == 0
        assert all(s == OFF for s in l2.array.state)

    def test_fill_wakes_frame(self):
        sys = make_system(tiny_config("protocol"))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, False)
        assert l2.occupancy.on_lines == 1
        assert l2.stats.wakes == 1


class TestProtocolGating:
    def test_remote_invalidation_gates(self):
        sys = make_system(tiny_config("protocol"))
        sys.l2s[0].access(0x10, 0, False)
        sys.l2s[1].access(0x10, 100, True)  # invalidates cache 0's copy
        l2 = sys.l2s[0]
        f = [f for f in range(l2.geom.n_lines) if l2.array.state[f] == OFF]
        assert l2.stats.gated_protocol == 1
        assert l2.occupancy.on_lines == 0  # its only line gated

    def test_baseline_does_not_gate_on_invalidation(self):
        sys = make_system(tiny_config("baseline"))
        sys.l2s[0].access(0x10, 0, False)
        sys.l2s[1].access(0x10, 100, True)
        l2 = sys.l2s[0]
        assert l2.stats.gated_protocol == 0
        assert l2.occupancy.on_lines == l2.geom.n_lines

    def test_upgrade_gates_remote_sharers(self):
        sys = make_system(tiny_config("protocol"))
        sys.l2s[0].access(0x10, 0, False)
        sys.l2s[1].access(0x10, 10, False)   # both S
        sys.l2s[1].access(0x10, 20, True)    # upgrade gates cache 0
        assert sys.l2s[0].stats.gated_protocol == 1


class TestDecayTurnOff:
    def test_idle_clean_line_gates_at_deadline(self):
        cfg = tiny_config("decay", decay_cycles=2000)
        sys = make_system(cfg)
        l2 = sys.l2s[0]
        l2.access(0x10, 0, False)  # E
        fired = sys.process_decay_until(5000)
        assert fired == 1
        assert state_of(l2, 0x10) is None
        assert l2.stats.gated_decay_clean == 1
        assert l2.stats.gated_decay_dirty == 0

    def test_idle_dirty_line_writes_back_and_gates(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, True)   # M
        wb_before = sys.memory.stats.line_writes
        sys.process_decay_until(5000)
        assert l2.stats.gated_decay_dirty == 1
        assert sys.memory.stats.line_writes == wb_before + 1

    def test_touched_line_survives(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, False)
        l2.access(0x10, 1500, False)   # reset timer
        sys.process_decay_until(3000)
        assert state_of(l2, 0x10) == E
        sys.process_decay_until(3501)  # 1500 + 2000 elapsed
        assert state_of(l2, 0x10) is None

    def test_decayed_line_access_is_decay_induced_miss(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, False)
        sys.process_decay_until(3000)
        l2.access(0x10, 4000, False)  # would have hit without decay
        assert l2.stats.decay_induced_misses == 1

    def test_natural_eviction_not_decay_induced(self):
        sys = make_system(tiny_config("decay", decay_cycles=10**9))
        l2 = sys.l2s[0]
        n_sets = l2.geom.n_sets
        for k in range(6):  # 4-way set: evicts two lines naturally
            l2.access(k * n_sets, k, False)
        l2.access(0, 100, False)  # miss: naturally evicted, not decay
        assert l2.stats.decay_induced_misses == 0

    def test_m_line_turn_off_invalidates_l1(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l1, l2 = sys.l1s[0], sys.l2s[0]
        l1.load(0x10, 0)              # L1 + L2 fill
        l2.access(0x10, 5, True)      # make L2 copy M
        assert l1.holds(0x10)
        sys.process_decay_until(10_000)
        assert not l1.holds(0x10)
        assert l2.stats.upper_invalidations >= 1


class TestPendingWriteDenial:
    """Table I: clean line with buffered store must not gate."""

    def test_denied_while_store_buffered(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l1, l2 = sys.l1s[0], sys.l2s[0]
        l2.access(0x10, 0, False)         # clean E line in L2
        l1.write_buffer.insert(0x10, 100)  # pending store to same line
        sys.process_decay_until(5000)
        assert l2.stats.gate_denied_pending == 1
        assert state_of(l2, 0x10) == E    # still alive

    def test_gates_after_drain(self):
        sys = make_system(tiny_config("decay", decay_cycles=2000))
        l1, l2 = sys.l1s[0], sys.l2s[0]
        l2.access(0x10, 0, False)
        l1.write_buffer.insert(0x10, 100)
        sys.process_decay_until(5000)      # denied
        l1.drain_one(5000)                 # store drains (touches line, M)
        sys.process_decay_until(20_000)    # decays from the drain touch
        assert state_of(l2, 0x10) is None
        assert l2.stats.gated_decay_dirty == 1


class TestSelectiveDecayInHierarchy:
    def test_m_lines_never_decay(self):
        sys = make_system(tiny_config("selective_decay", decay_cycles=2000))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, True)  # M
        sys.process_decay_until(10**6)
        assert state_of(l2, 0x10) == M

    def test_clean_lines_decay(self):
        sys = make_system(tiny_config("selective_decay", decay_cycles=2000))
        l2 = sys.l2s[0]
        l2.access(0x10, 0, False)  # E
        sys.process_decay_until(5000)
        assert state_of(l2, 0x10) is None

    def test_downgraded_m_line_becomes_decayable(self):
        sys = make_system(tiny_config("selective_decay", decay_cycles=2000))
        sys.l2s[0].access(0x10, 0, True)        # M in cache 0
        sys.l2s[1].access(0x10, 100, False)     # BusRd: M -> S downgrade
        sys.process_decay_until(10_000)
        assert state_of(sys.l2s[0], 0x10) is None  # decayed after downgrade

    def test_sd_occupancy_at_least_decay(self):
        """SD keeps M lines, so its powered-line count >= plain decay."""
        import random

        rng = random.Random(3)
        ops = [(rng.randrange(4), rng.randrange(64), rng.random() < 0.4)
               for _ in range(300)]
        on_lines = {}
        for tech in ("decay", "selective_decay"):
            sys = make_system(tiny_config(tech, decay_cycles=500))
            t = 0
            for cid, ln, wr in ops:
                sys.process_decay_until(t)
                sys.l2s[cid].access(ln, t, wr)
                t += 40
            sys.process_decay_until(t + 5000)
            on_lines[tech] = sum(l2.occupancy.on_lines for l2 in sys.l2s)
        assert on_lines["selective_decay"] >= on_lines["decay"]
