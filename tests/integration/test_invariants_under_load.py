"""Periodic full-invariant checking on real benchmark traffic.

Runs the paper benchmarks with the simulator's invariant-checking mode:
every N events the complete suite (coherence single-writer, L1⊆L2
inclusion, occupancy-tracker/array consistency) is verified while the
techniques gate and wake lines mid-flight.
"""

import pytest

from repro.sim.simulator import Simulator
from repro.workloads.registry import get_workload
from tests.conftest import tiny_config

SCALE = 0.04


@pytest.mark.parametrize("tech", ["protocol", "decay", "selective_decay"])
@pytest.mark.parametrize("wname", ["water_ns", "mpeg2enc"])
def test_invariants_hold_throughout_run(tech, wname):
    wl = get_workload(wname, scale=SCALE)
    cfg = tiny_config(tech, decay_cycles=2500, l2_kb=32)
    sim = Simulator(cfg)
    res = sim.run(wl, warmup_fraction=0.17, check_invariants_every=20_000)
    sim.system.check_invariants()  # and once more at the very end
    assert res.total_cycles > 0


def test_invariants_with_hierarchical_counters():
    wl = get_workload("fmm", scale=SCALE)
    cfg = tiny_config("decay", decay_cycles=2560,
                      counter_mode="hierarchical", l2_kb=32)
    sim = Simulator(cfg)
    sim.run(wl, check_invariants_every=25_000)
    sim.system.check_invariants()
