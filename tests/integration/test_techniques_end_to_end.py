"""End-to-end technique comparisons on the paper benchmarks (small scale).

These are the repository's "does the reproduction reproduce?" tests: the
qualitative claims of the paper's §VI, checked on fast scaled-down runs.
"""

import pytest

from repro import CMPConfig, TechniqueConfig, simulate
from repro.power.energy import EnergyModel, energy_reduction
from repro.workloads.registry import get_workload

SCALE = 0.04
DECAY_LONG = int(512_000 * SCALE)
DECAY_SHORT = int(64_000 * SCALE)


@pytest.fixture(scope="module")
def water_results():
    """water_ns at 4MB across the four techniques (module-cached)."""
    wl = get_workload("water_ns", scale=SCALE)
    out = {}
    for label, tech in [
        ("baseline", TechniqueConfig(name="baseline")),
        ("protocol", TechniqueConfig(name="protocol")),
        ("decay", TechniqueConfig(name="decay", decay_cycles=DECAY_LONG)),
        ("decay_short", TechniqueConfig(name="decay",
                                        decay_cycles=DECAY_SHORT)),
        ("sd", TechniqueConfig(name="selective_decay",
                               decay_cycles=DECAY_LONG)),
    ]:
        cfg = CMPConfig().with_total_l2_mb(4).with_technique(tech)
        res = simulate(cfg, wl, warmup_fraction=0.17)
        out[label] = (res, EnergyModel(cfg).evaluate(res))
    return out


class TestPaperSection6Claims:
    def test_occupancy_ordering(self, water_results):
        r = {k: v[0].occupancy for k, v in water_results.items()}
        assert r["baseline"] == pytest.approx(1.0)
        assert r["decay"] < r["sd"] < r["protocol"] < 1.0

    def test_protocol_zero_performance_loss(self, water_results):
        base = water_results["baseline"][0]
        prot = water_results["protocol"][0]
        assert prot.ipc == pytest.approx(base.ipc, rel=1e-9)

    def test_decay_hurts_ipc_sd_hurts_less(self, water_results):
        base = water_results["baseline"][0].ipc
        decay_loss = 1 - water_results["decay"][0].ipc / base
        sd_loss = 1 - water_results["sd"][0].ipc / base
        assert decay_loss > 0.01
        assert sd_loss < decay_loss

    def test_shorter_decay_hurts_more(self, water_results):
        base = water_results["baseline"][0].ipc
        long_loss = 1 - water_results["decay"][0].ipc / base
        short_loss = 1 - water_results["decay_short"][0].ipc / base
        assert short_loss > long_loss

    def test_energy_savings_positive_and_ordered(self, water_results):
        base_e = water_results["baseline"][1]
        red = {k: energy_reduction(base_e, v[1])
               for k, v in water_results.items() if k != "baseline"}
        assert red["decay"] > red["protocol"] > 0
        assert red["sd"] > 0

    def test_decay_increases_memory_traffic(self, water_results):
        base = water_results["baseline"][0].memory_bytes_per_cycle
        dec = water_results["decay_short"][0].memory_bytes_per_cycle
        assert dec > base

    def test_protocol_does_not_increase_traffic(self, water_results):
        base = water_results["baseline"][0].memory_bytes_per_cycle
        prot = water_results["protocol"][0].memory_bytes_per_cycle
        assert prot == pytest.approx(base, rel=1e-9)

    def test_amat_ordering(self, water_results):
        base = water_results["baseline"][0].amat
        assert water_results["decay_short"][0].amat > base
        assert water_results["protocol"][0].amat == pytest.approx(
            base, rel=1e-9)


class TestCacheSizeTrend:
    def test_protocol_occupancy_decreases_with_size(self):
        wl = get_workload("mpeg2dec", scale=SCALE)
        occ = []
        for mb in (1, 4):
            cfg = CMPConfig().with_total_l2_mb(mb).with_technique(
                TechniqueConfig(name="protocol"))
            occ.append(simulate(cfg, wl, warmup_fraction=0.17).occupancy)
        assert occ[1] < occ[0]

    def test_energy_reduction_grows_with_size(self):
        wl = get_workload("mpeg2dec", scale=SCALE)
        reds = []
        for mb in (1, 8):
            base_cfg = CMPConfig().with_total_l2_mb(mb)
            dec_cfg = base_cfg.with_technique(
                TechniqueConfig(name="decay", decay_cycles=DECAY_LONG))
            base = simulate(base_cfg, wl, warmup_fraction=0.17)
            dec = simulate(dec_cfg, wl, warmup_fraction=0.17)
            e_base = EnergyModel(base_cfg).evaluate(base)
            e_dec = EnergyModel(dec_cfg).evaluate(dec)
            reds.append(energy_reduction(e_base, e_dec))
        assert reds[1] > reds[0]


class TestHierarchicalCounters:
    def test_quantized_decay_gates_no_later_than_nominal(self):
        wl = get_workload("uniform", scale=SCALE)
        from tests.conftest import tiny_config

        ideal = simulate(
            tiny_config("decay", decay_cycles=2048, counter_mode="ideal"),
            wl)
        quant = simulate(
            tiny_config("decay", decay_cycles=2048,
                        counter_mode="hierarchical"), wl)
        # quantized intervals are in (0.75, 1.0] x nominal -> occupancy <=
        assert quant.occupancy <= ideal.occupancy + 0.01
