"""Time-dilation invariance (DESIGN.md §5): joint scaling of run length
and decay times preserves the technique shapes."""

import pytest

from repro import CMPConfig, TechniqueConfig, simulate
from repro.workloads.registry import get_workload

#: multi-scale re-simulation of the matrix: nightly-lane material
pytestmark = pytest.mark.slow


def occupancies(scale):
    wl = get_workload("mpeg2dec", scale=scale)
    out = {}
    for name in ("protocol", "decay", "selective_decay"):
        cfg = CMPConfig().with_total_l2_mb(4).with_technique(
            TechniqueConfig(
                name=name,
                decay_cycles=max(64, int(512_000 * scale))))
        res = simulate(cfg, wl, warmup_fraction=0.17)
        out[name] = res.occupancy
    return out


class TestScaleInvariance:
    def test_occupancy_shapes_stable_across_scales(self):
        small = occupancies(0.04)
        large = occupancies(0.08)
        # orderings preserved
        assert small["decay"] < small["selective_decay"] < small["protocol"]
        assert large["decay"] < large["selective_decay"] < large["protocol"]
        # decay/SD occupancies (window-driven) stay close across scales
        assert small["decay"] == pytest.approx(large["decay"], abs=0.03)
        assert small["selective_decay"] == pytest.approx(
            large["selective_decay"], abs=0.07)

    def test_ipc_loss_shape_stable(self):
        losses = {}
        for scale in (0.04, 0.08):
            wl = get_workload("volrend", scale=scale)
            base = simulate(CMPConfig().with_total_l2_mb(4), wl,
                            warmup_fraction=0.17)
            pair = []
            for nominal in (64_000, 512_000):
                cfg = CMPConfig().with_total_l2_mb(4).with_technique(
                    TechniqueConfig(name="decay",
                                    decay_cycles=max(64,
                                                     int(nominal * scale))))
                res = simulate(cfg, wl, warmup_fraction=0.17)
                pair.append(1 - res.ipc / base.ipc)
            losses[scale] = pair
        # the decay-time sensitivity signature survives scaling:
        # 64K hurts volrend visibly more than 512K at every scale
        for scale, (short, long_) in losses.items():
            assert short > long_ + 0.02, (scale, short, long_)
