"""CLI surface of the scenario subsystem: scenario, spec diff, --replicas."""

import os

import pytest

from repro.harness.cli import main
from repro.harness.spec import load_spec, save_spec
from repro.scenarios.templates import build_scenario

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SPECS_DIR = os.path.join(REPO_ROOT, "specs")
SMOKE = os.path.join(SPECS_DIR, "smoke.toml")


class TestScenarioCommand:
    def test_list_names_every_family(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("multiprogram_mix", "mix_smoke", "sizing_sensitivity",
                     "core_scaling"):
            assert name in out

    def test_expand_prints_points_and_replicas(self, capsys):
        assert main(["scenario", "expand", "mix_smoke"]) == 0
        out = capsys.readouterr().out
        assert "3 points" in out
        assert "2 replica(s)" in out
        assert "mix:water_ns+mpeg2dec" in out

    def test_expand_is_sorted_by_digest(self, capsys):
        assert main(["scenario", "expand", "core_scaling"]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if "digest=" in line
        ]
        digests = [line.rsplit("digest=", 1)[1] for line in lines]
        assert digests == sorted(digests)

    def test_unknown_scenario_fails(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_subcommand_usage(self, capsys):
        assert main(["scenario", "bogus"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_save_freezes_a_spec_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "frozen.toml")
        assert main(["scenario", "save", "core_scaling", out_path]) == 0
        frozen = load_spec(out_path)
        assert frozen.to_dict() == build_scenario("core_scaling").to_dict()

    def test_save_bad_path_is_a_clean_error(self, tmp_path, capsys):
        bad = str(tmp_path / "frozen.txt")
        assert main(["scenario", "save", "core_scaling", bad]) == 2
        assert "spec files must end" in capsys.readouterr().err

    def test_expand_seeds_honor_the_spec_run_seed(self, capsys):
        """scenario expand previews the same seeds scenario run uses."""
        from repro.harness.spec import grid_spec
        from repro.scenarios.templates import register_scenario

        class SeededTemplate:
            name = "seeded_family_test"
            description = "test-only family with a pinned run seed"

            def build(self, **params):
                return grid_spec(
                    name=self.name,
                    workloads=["uniform"],
                    sizes_mb=[1],
                    techniques=["baseline"],
                    run={"seed": 7},
                    ensemble={"replicas": 2},
                )

        register_scenario(SeededTemplate())
        assert main(["scenario", "expand", "seeded_family_test"]) == 0
        out = capsys.readouterr().out
        assert "seeds [7, 8]" in out
        # an explicit --seed flag still beats the spec's [run] seed
        assert main(["scenario", "expand", "seeded_family_test",
                     "--seed", "3"]) == 0
        assert "seeds [3, 4]" in capsys.readouterr().out

    @pytest.mark.slow
    def test_run_with_replicas_emits_ci_table(self, tmp_path, capsys):
        csv_path = str(tmp_path / "ens.csv")
        code = main([
            "run", SMOKE, "--replicas", "2", "--quiet",
            "--cache-dir", str(tmp_path / "cache"), "--csv", csv_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replica(s)" in out
        assert "±" in out
        with open(csv_path) as fh:
            text = fh.read()
        assert "±" in text and "protocol" in text


class TestSpecExpandOrdering:
    def test_expand_output_sorted_by_digest(self, capsys):
        matrix = os.path.join(SPECS_DIR, "paper_matrix.toml")
        assert main(["spec", "expand", matrix]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if "digest=" in line
        ]
        assert len(lines) == 192
        digests = [line.rsplit("digest=", 1)[1] for line in lines]
        assert digests == sorted(digests)


class TestSpecDiff:
    def test_identical_specs_exit_zero(self, capsys):
        assert main(["spec", "diff", SMOKE, SMOKE]) == 0
        assert "identical" in capsys.readouterr().out

    def test_added_and_removed_points(self, tmp_path, capsys):
        spec = load_spec(SMOKE)
        bigger = type(spec)(
            name=spec.name,
            workloads=(*spec.workloads, "pingpong"),
            sizes_mb=spec.sizes_mb,
            techniques=spec.techniques,
            run=dict(spec.run),
        )
        other = str(tmp_path / "bigger.toml")
        save_spec(bigger, other)
        assert main(["spec", "diff", SMOKE, other]) == 1
        out = capsys.readouterr().out
        assert "+ pingpong" in out
        assert "differ:" in out and "2 added" in out

    def test_changed_points_detected(self, tmp_path, capsys):
        """Same triples, different resolved hardware: reported as changed."""
        from repro.harness.spec import grid_spec

        def decay_spec(scale):
            return grid_spec(
                name="retune",
                workloads=["uniform"],
                sizes_mb=[1],
                techniques=["decay64K"],
                run={"scale": scale},
            )

        a = str(tmp_path / "a.toml")
        b = str(tmp_path / "b.toml")
        save_spec(decay_spec(0.04), a)
        save_spec(decay_spec(0.5), b)
        assert main(["spec", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "~ uniform 1MB decay64K" in out
        assert "1 changed" in out

    def test_added_point_sharing_a_triple_still_detected(self, tmp_path,
                                                         capsys):
        """An extra B point whose triple also exists in A must not hide."""
        from repro.harness.spec import ExperimentSpec

        base_point = {"workload": "uniform", "size_mb": 1,
                      "technique": "baseline"}
        a_spec = ExperimentSpec(name="a", points=(base_point,))
        b_spec = ExperimentSpec(
            name="a", points=(base_point, {**base_point, "n_cores": 8})
        )
        a, b = str(tmp_path / "a.toml"), str(tmp_path / "b.toml")
        save_spec(a_spec, a)
        save_spec(b_spec, b)
        assert main(["spec", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "1 added" in out
        assert main(["spec", "diff", b, a]) == 1
        assert "1 removed" in capsys.readouterr().out

    def test_surplus_same_triple_points_counted(self, tmp_path, capsys):
        """A lost 1 digest of a triple, B gained 2: 1 changed + 1 added."""
        from repro.harness.spec import ExperimentSpec

        def pt(**over):
            return {"workload": "uniform", "size_mb": 1,
                    "technique": "decay64K", **over}

        a_spec = ExperimentSpec(name="s", points=(pt(n_cores=2),))
        b_spec = ExperimentSpec(name="s", points=(pt(n_cores=4),
                                                  pt(n_cores=8)))
        a, b = str(tmp_path / "a.toml"), str(tmp_path / "b.toml")
        save_spec(a_spec, a)
        save_spec(b_spec, b)
        assert main(["spec", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "1 added" in out and "1 changed" in out
        assert out.count("uniform 1MB decay64K") == 2  # one ~, one +

    def test_usage_errors(self, capsys):
        assert main(["spec", "diff", SMOKE]) == 2
        assert main(["spec", "diff", SMOKE, "/nonexistent.toml"]) == 2


class TestPinnedBaseSeed:
    def test_one_replica_ensemble_still_pins_base_seed(self, tmp_path,
                                                       capsys):
        """replicas=1 + base_seed must simulate the pinned seed."""
        from repro.harness.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="pinned",
            points=({"workload": "uniform", "size_mb": 1,
                     "technique": "baseline"},),
            run={"scale": 0.04},
            ensemble={"base_seed": 100},
        )
        path = str(tmp_path / "pinned.toml")
        save_spec(spec, path)
        assert main(["run", path, "--quiet", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "seeds 100..100" in out


class TestReplicasFlagValidation:
    def test_zero_replicas_is_a_clean_usage_error(self, capsys):
        assert main(["run", SMOKE, "--replicas", "0", "--no-cache"]) == 2
        assert "replicas" in capsys.readouterr().err

    def test_scenario_expand_rejects_bad_replicas(self, capsys):
        assert main(["scenario", "expand", "mix_smoke",
                     "--replicas", "-1"]) == 2
        assert "replicas" in capsys.readouterr().err


class TestCoresColumn:
    def test_core_scaling_rows_are_distinguishable(self):
        """n_cores reaches the metric rows and the rendered tables."""
        from repro.harness.cli import _metrics_table
        from repro.harness.figures import ensemble_table
        from repro.harness.metrics import PointMetrics
        from repro.scenarios.stats import aggregate_metrics

        def pm(n_cores):
            return PointMetrics(
                workload="uniform", total_mb=4, technique="protocol",
                occupancy=0.9, miss_rate=0.1, bandwidth_increase=0.0,
                amat_increase=0.0, ipc_loss=0.0, energy_reduction=0.1,
                l2_leakage_share=0.5, n_cores=n_cores,
            )

        metrics = [pm(2), pm(8)]
        table = _metrics_table("cs", metrics)
        assert "cores" in table.columns
        idx = table.columns.index("cores")
        assert [table.cells[r][idx] for r in table.rows] == ["2", "8"]

        rows = aggregate_metrics([metrics, metrics])
        assert [r.n_cores for r in rows] == [2, 8]
        ens = ensemble_table("cs", rows)
        assert "cores" in ens.columns

    def test_cores_column_absent_for_plain_specs(self):
        from repro.harness.cli import _metrics_table
        from repro.harness.metrics import PointMetrics

        m = PointMetrics(
            workload="uniform", total_mb=4, technique="protocol",
            occupancy=0.9, miss_rate=0.1, bandwidth_increase=0.0,
            amat_increase=0.0, ipc_loss=0.0, energy_reduction=0.1,
            l2_leakage_share=0.5,
        )
        assert "cores" not in _metrics_table("plain", [m]).columns
