"""Ensemble statistics: summarize, t-table, aggregation shapes."""

import math

import pytest

from repro.harness.metrics import PointMetrics
from repro.scenarios.stats import (
    METRIC_ATTRS,
    SummaryStat,
    aggregate_metrics,
    summarize,
    t_critical_95,
)


def _metrics(workload="uniform", mb=1, tech="protocol", **vals) -> PointMetrics:
    base = dict(
        occupancy=0.9,
        miss_rate=0.1,
        bandwidth_increase=0.0,
        amat_increase=0.0,
        ipc_loss=0.0,
        energy_reduction=0.1,
        l2_leakage_share=0.5,
    )
    base.update(vals)
    return PointMetrics(workload=workload, total_mb=mb, technique=tech, **base)


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stddev == pytest.approx(1.0)  # sample stddev, n-1
        # t(2, 95%) = 4.303; ci = 4.303 * 1 / sqrt(3)
        assert s.ci95 == pytest.approx(4.303 / math.sqrt(3))
        assert s.n == 3

    def test_single_value_degenerates(self):
        s = summarize([0.42])
        assert s == SummaryStat(mean=0.42, stddev=0.0, ci95=0.0, n=1)
        assert s.format_pct() == "42.0%"

    def test_format_pct_with_ci(self):
        s = summarize([0.10, 0.20])
        assert "%±" in s.format_pct()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_identical_replicas_have_zero_spread(self):
        s = summarize([0.5, 0.5, 0.5, 0.5])
        assert s.stddev == 0.0
        assert s.ci95 == 0.0


class TestTCritical:
    def test_tabulated_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(4) == pytest.approx(2.776)
        assert t_critical_95(30) == pytest.approx(2.042)

    def test_large_df_is_normal(self):
        assert t_critical_95(31) == pytest.approx(1.96)
        assert t_critical_95(1000) == pytest.approx(1.96)

    def test_monotone_decreasing(self):
        vals = [t_critical_95(df) for df in range(1, 40)]
        assert vals == sorted(vals, reverse=True)

    def test_bad_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestAggregate:
    def test_shape_and_values(self):
        per_replica = [
            [_metrics(energy_reduction=0.10), _metrics(tech="decay64K")],
            [_metrics(energy_reduction=0.20), _metrics(tech="decay64K")],
        ]
        rows = aggregate_metrics(per_replica)
        assert [r.technique for r in rows] == ["protocol", "decay64K"]
        assert rows[0].n == 2
        assert rows[0].stats["energy_reduction"].mean == pytest.approx(0.15)
        assert set(rows[0].stats) == set(METRIC_ATTRS)

    def test_flat_dict_export(self):
        rows = aggregate_metrics([[_metrics()], [_metrics()]])
        d = rows[0].as_dict()
        assert d["replicas"] == 2
        assert "energy_reduction_mean" in d
        assert "energy_reduction_ci95" in d

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([[_metrics()], []])

    def test_misaligned_points_rejected(self):
        with pytest.raises(ValueError):
            aggregate_metrics([[_metrics(tech="protocol")],
                               [_metrics(tech="decay64K")]])

    def test_empty_ensemble(self):
        assert aggregate_metrics([]) == []


class TestAggregateWithQuery:
    def _replicas(self):
        def replica(e1, e2):
            return [
                _metrics(tech="protocol", energy_reduction=e1),
                _metrics(tech="decay64K", energy_reduction=e2),
            ]

        return [replica(0.10, 0.30), replica(0.12, 0.32)]

    def test_query_filters_columns_before_aggregation(self):
        from repro.harness.query import ResultQuery

        rows = aggregate_metrics(
            self._replicas(), query=ResultQuery(techniques=("decay64K",))
        )
        assert [r.technique for r in rows] == ["decay64K"]
        assert math.isclose(rows[0].stats["energy_reduction"].mean, 0.31)

    def test_query_arranges_aggregated_rows_by_stat_mean(self):
        from repro.harness.query import ResultQuery

        rows = aggregate_metrics(
            self._replicas(), query=ResultQuery(sort=("-energy_reduction",))
        )
        assert [r.technique for r in rows] == ["decay64K", "protocol"]

    def test_query_on_ragged_input_still_rejected(self):
        from repro.harness.query import ResultQuery

        with pytest.raises(ValueError, match="replica"):
            aggregate_metrics(
                [[_metrics()], []], query=ResultQuery(techniques=("protocol",))
            )
