"""Scenario library: registry, built-in families, shipped spec twins."""

import os

import pytest

from repro.harness.spec import SpecError, load_spec
from repro.scenarios.templates import (
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SPECS_DIR = os.path.join(REPO_ROOT, "specs")

#: families frozen as shipped spec files (regression-tested below)
SHIPPED = ("mix_smoke", "sizing_sensitivity", "core_scaling")


class TestRegistry:
    def test_ships_at_least_three_families(self):
        names = scenario_names()
        assert len(names) >= 3
        assert {"multiprogram_mix", "sizing_sensitivity",
                "core_scaling"} <= set(names)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="multiprogram_mix"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(get_scenario("core_scaling"))

    def test_every_family_builds_a_strictly_valid_spec(self):
        for name in scenario_names():
            spec = build_scenario(name)
            spec.validate(strict=True)
            assert spec.expand(), name


class TestFamilies:
    def test_multiprogram_mix_crosses_suites(self):
        spec = build_scenario("multiprogram_mix")
        assert all(wl.startswith("mix:") for wl in spec.workloads)
        assert "mix:water_ns+mpeg2dec" in spec.workloads
        assert len(spec.workloads) == 9  # 3 scientific x 3 multimedia

    def test_multiprogram_mix_custom_pairs(self):
        spec = build_scenario(
            "multiprogram_mix", pairs=[("uniform", "pingpong")], sizes_mb=(1,)
        )
        assert spec.workloads == ("mix:uniform+pingpong",)

    def test_sizing_sensitivity_scales_custom_cycles(self):
        spec = build_scenario("sizing_sensitivity", scale=0.1)
        assert spec.run["scale"] == 0.1
        assert spec.custom_techniques["decay@16K"].decay_cycles == 1600
        assert spec.custom_techniques["sel_decay@512K"].decay_cycles == 51200
        # a denser decay axis than the paper's three nominal times
        decay_labels = [t for t in spec.techniques if t.startswith("decay@")]
        assert len(decay_labels) == 4

    def test_core_scaling_pins_n_cores(self):
        spec = build_scenario("core_scaling")
        counts = {p["n_cores"] for p in spec.points}
        assert counts == {2, 4, 8}
        points = spec.expand()
        assert {p.n_cores for p in points} == {2, 4, 8}
        assert all(p.total_mb == 4 for p in points)

    def test_mix_smoke_declares_an_ensemble(self):
        spec = build_scenario("mix_smoke")
        assert spec.ensemble == {"replicas": 2}
        assert spec.run["scale"] == 0.05


class TestShippedSpecFiles:
    """The checked-in specs/ files are frozen template defaults."""

    @pytest.mark.parametrize("name", SHIPPED)
    def test_shipped_file_matches_template_default(self, name):
        shipped = load_spec(os.path.join(SPECS_DIR, f"{name}.toml"))
        assert shipped.to_dict() == build_scenario(name).to_dict()

    @pytest.mark.parametrize("name", SHIPPED)
    def test_shipped_file_is_strictly_valid(self, name):
        spec = load_spec(os.path.join(SPECS_DIR, f"{name}.toml"))
        spec.validate(strict=True)


class TestEnsembleSpecTable:
    def test_unknown_ensemble_keys_rejected(self):
        from repro.harness.spec import ExperimentSpec

        with pytest.raises(SpecError, match="ensemble"):
            ExperimentSpec(
                name="x",
                points=({"workload": "uniform", "size_mb": 1,
                         "technique": "baseline"},),
                ensemble={"bogus": 1},
            )

    def test_bad_replicas_rejected(self):
        from repro.harness.spec import ExperimentSpec

        for bad in (0, -1, "two", True):
            with pytest.raises(SpecError):
                ExperimentSpec(
                    name="x",
                    points=({"workload": "uniform", "size_mb": 1,
                             "technique": "baseline"},),
                    ensemble={"replicas": bad},
                )

    def test_zero_stride_rejected(self):
        from repro.harness.spec import ExperimentSpec

        with pytest.raises(SpecError, match="seed_stride"):
            ExperimentSpec(
                name="x",
                points=({"workload": "uniform", "size_mb": 1,
                         "technique": "baseline"},),
                ensemble={"seed_stride": 0},
            )

    def test_round_trip_through_toml_and_json(self):
        from repro.harness.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="ens",
            points=({"workload": "uniform", "size_mb": 1,
                     "technique": "baseline"},),
            ensemble={"replicas": 5, "base_seed": 100, "seed_stride": 7},
        )
        assert ExperimentSpec.from_toml(spec.to_toml()).ensemble == spec.ensemble
        assert ExperimentSpec.from_json(spec.to_json()).ensemble == spec.ensemble
