"""Ensemble engine: expansion semantics and backend determinism.

The satellite contract: the same :class:`EnsembleSpec` + seeds through
the serial runner and through :class:`LocalBackend` workers yields
byte-identical per-replica cache blobs and identical aggregated CI
tables.
"""

import pytest

from repro.harness.executor import ParallelSweepRunner
from repro.harness.figures import ensemble_table
from repro.harness.runner import SweepRunner
from repro.harness.spec import SpecError, grid_spec
from repro.scenarios.ensemble import EnsembleSpec, run_ensemble

SCALE = 0.04

#: 2 points x 2 replicas (+2 baseline twins per replica seed) = 8 sims
ENSEMBLE_SPEC = grid_spec(
    name="ens_matrix",
    workloads=["uniform", "pingpong"],
    sizes_mb=[1],
    techniques=["protocol"],
    ensemble={"replicas": 2},
)


class TestExpansion:
    def test_replica_shape_and_seeds(self):
        ens = EnsembleSpec(spec=ENSEMBLE_SPEC, replicas=3, seed_stride=10)
        replicas = ens.expand(scale=SCALE, runner_seed=5)
        assert len(replicas) == 3
        assert [len(r) for r in replicas] == [2, 2, 2]
        assert [r[0].seed for r in replicas] == [5, 15, 25]
        # replicas differ only in seed
        for r in replicas:
            assert [p.triple for p in r] == [p.triple for p in replicas[0]]

    def test_base_seed_pins_the_ensemble(self):
        ens = EnsembleSpec(spec=ENSEMBLE_SPEC, replicas=2, base_seed=100)
        assert ens.replica_seeds(runner_seed=1) == [100, 101]

    def test_point_with_own_seed_strides_from_it(self):
        spec = grid_spec(
            name="seeded",
            workloads=(),
            sizes_mb=(),
            techniques=(),
            points=(
                {"workload": "uniform", "size_mb": 1,
                 "technique": "baseline", "seed": 42},
            ),
        )
        ens = EnsembleSpec(spec=spec, replicas=3)
        replicas = ens.expand(runner_seed=1)
        assert [r[0].seed for r in replicas] == [42, 43, 44]

    def test_from_spec_reads_table_and_cli_override_wins(self):
        ens = EnsembleSpec.from_spec(ENSEMBLE_SPEC)
        assert ens.replicas == 2
        assert EnsembleSpec.from_spec(ENSEMBLE_SPEC, replicas=5).replicas == 5

    def test_invalid_policies_rejected(self):
        with pytest.raises(SpecError):
            EnsembleSpec(spec=ENSEMBLE_SPEC, replicas=0)
        with pytest.raises(SpecError):
            EnsembleSpec(spec=ENSEMBLE_SPEC, seed_stride=0)


class TestDeterminism:
    @pytest.mark.slow
    def test_serial_and_local_backend_byte_identical(self, tmp_path):
        """Same ensemble through serial and pool workers: same bytes."""
        serial = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "serial"), verbose=False
        )
        ens = EnsembleSpec.from_spec(ENSEMBLE_SPEC)
        serial_result = run_ensemble(serial, ens)

        parallel = ParallelSweepRunner(
            scale=SCALE,
            cache_dir=str(tmp_path / "pool"),
            verbose=False,
            backend="local",
            jobs=2,
        )
        pool_result = run_ensemble(parallel, ens)

        # identical replica expansion...
        assert pool_result.replicas == serial_result.replicas
        # ...byte-identical per-replica cache blobs...
        compared = 0
        for replica in serial_result.replicas:
            for point in replica:
                for p in (point, point.baseline_twin()):
                    key = serial.point_key(p)
                    assert parallel.point_key(p) == key
                    ours = serial.cache.read_bytes(key)
                    theirs = parallel.cache.read_bytes(key)
                    assert ours is not None
                    assert ours == theirs, p.describe()
                    compared += 1
        assert compared >= 8
        # ...and identical aggregated CI tables
        assert pool_result.metrics == serial_result.metrics
        assert pool_result.aggregated == serial_result.aggregated
        serial_tbl = ensemble_table("ens", serial_result.aggregated)
        pool_tbl = ensemble_table("ens", pool_result.aggregated)
        assert pool_tbl.render() == serial_tbl.render()
        assert pool_tbl.to_csv() == serial_tbl.to_csv()

    def test_single_replica_matches_single_run(self, tmp_path):
        """A 1-replica ensemble is exactly the plain spec run."""
        runner = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        spec = grid_spec(
            name="single",
            workloads=["uniform"],
            sizes_mb=[1],
            techniques=["protocol"],
        )
        result = run_ensemble(runner, EnsembleSpec(spec=spec, replicas=1))
        direct = runner.run_spec(spec)
        assert result.metrics == [direct]
        row = result.aggregated[0]
        assert row.n == 1
        m = direct[0]
        assert row.stats["energy_reduction"].mean == m.energy_reduction
        assert row.stats["energy_reduction"].ci95 == 0.0


class TestProvenance:
    def test_simulated_entries_record_provenance(self, tmp_path):
        runner = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "cache"), verbose=False
        )
        point = runner.point("uniform", 1, "baseline")
        runner.run_point(point)
        key = runner.point_key(point)
        prov = runner.cache.get_provenance(key)
        assert prov is not None
        assert prov["backend"] == "serial"
        assert prov["worker"] == runner.worker_id
        assert "installed_at" in prov and "host" in prov
        # the manifest folds the sidecar into its row
        runner.cache.write_manifest()
        manifest = runner.cache.read_manifest()
        assert manifest["entries"][key]["provenance"] == prov

    def test_provenance_never_touches_the_blob(self, tmp_path):
        """Result bytes are identical with and without a cache sidecar."""
        with_cache = SweepRunner(
            scale=SCALE, cache_dir=str(tmp_path / "a"), verbose=False
        )
        memo_only = SweepRunner(scale=SCALE, cache_dir=None, verbose=False)
        point = with_cache.point("uniform", 1, "baseline")
        res_a = with_cache.run_point(point)
        res_b = memo_only.run_point(point)
        assert res_a[0].to_dict() == res_b[0].to_dict()
