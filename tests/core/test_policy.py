"""Leakage policies: arming rules of §IV."""

import pytest

from repro.coherence.states import E, I, M, S
from repro.core.policy import (
    AlwaysOnPolicy,
    FixedDecayPolicy,
    ProtocolOffPolicy,
    SelectiveDecayPolicy,
    make_leakage_policy,
)
from repro.core.counters import DecayTimer
from repro.sim.config import (
    BASELINE,
    DECAY,
    PROTOCOL,
    SELECTIVE_DECAY,
    TechniqueConfig,
)


def timer(decay=1000):
    return DecayTimer(decay)


class TestAlwaysOn:
    def test_flags(self):
        p = AlwaysOnPolicy(16)
        assert p.start_powered
        assert not p.gates_on_invalidation
        assert not p.decay_enabled

    def test_never_has_deadline(self):
        p = AlwaysOnPolicy(16)
        p.on_fill(0, E, 10)
        p.on_touch(0, E, 20)
        assert p.deadline(0) == -1


class TestProtocolOff:
    def test_flags(self):
        p = ProtocolOffPolicy(16)
        assert not p.start_powered
        assert p.gates_on_invalidation
        assert not p.decay_enabled

    def test_no_decay_deadlines(self):
        p = ProtocolOffPolicy(16)
        p.on_fill(3, M, 5)
        assert p.deadline(3) == -1


class TestFixedDecay:
    def test_arms_on_fill_any_state(self):
        p = FixedDecayPolicy(16, timer())
        for state in (S, E, M):
            p.on_fill(1, state, 100)
            assert p.is_armed(1)
            assert p.deadline(1) == 1100

    def test_touch_resets_timer(self):
        p = FixedDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_touch(1, E, 400)
        assert p.deadline(1) == 1400

    def test_modified_lines_still_decay(self):
        # Plain Decay does NOT exempt M lines — that is SD's difference.
        p = FixedDecayPolicy(16, timer())
        p.on_fill(1, M, 0)
        p.on_state_change(1, E, M, 0)
        assert p.is_armed(1)

    def test_clear_disarms(self):
        p = FixedDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_clear(1)
        assert p.deadline(1) == -1

    def test_counter_resets_counted(self):
        p = FixedDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_touch(1, E, 10)
        p.on_touch(1, E, 20)
        assert p.counter_resets == 3


class TestSelectiveDecay:
    """'a line is let to decay on the transitions leading to S or E'."""

    def test_arms_on_clean_fill(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, S, 0)
        assert p.is_armed(1)
        p.on_fill(2, E, 0)
        assert p.is_armed(2)

    def test_does_not_arm_on_m_fill(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, M, 0)
        assert not p.is_armed(1)
        assert p.deadline(1) == -1

    def test_disarms_entering_m(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_state_change(1, E, M, 10)   # silent write upgrade
        assert not p.is_armed(1)

    def test_disarms_on_upgrade_from_s(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, S, 0)
        p.on_state_change(1, S, M, 10)
        assert not p.is_armed(1)

    def test_rearms_on_downgrade(self):
        # Remote BusRd flushed our dirty line: M -> S, clean again.
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, M, 0)
        p.on_state_change(1, M, S, 500)
        assert p.is_armed(1)
        assert p.deadline(1) == 1500

    def test_touch_does_not_arm_m_line(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, M, 0)
        p.on_touch(1, M, 100)
        assert not p.is_armed(1)

    def test_touch_resets_armed_line(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_touch(1, E, 700)
        assert p.deadline(1) == 1700

    def test_e_to_s_demotion_keeps_armed(self):
        p = SelectiveDecayPolicy(16, timer())
        p.on_fill(1, E, 0)
        p.on_state_change(1, E, S, 100)
        assert p.is_armed(1)


class TestFactory:
    def test_baseline(self):
        p = make_leakage_policy(TechniqueConfig(name=BASELINE), 8)
        assert isinstance(p, AlwaysOnPolicy)

    def test_protocol(self):
        p = make_leakage_policy(TechniqueConfig(name=PROTOCOL), 8)
        assert isinstance(p, ProtocolOffPolicy)

    def test_decay_gets_timer(self):
        p = make_leakage_policy(
            TechniqueConfig(name=DECAY, decay_cycles=4096), 8)
        assert isinstance(p, FixedDecayPolicy)
        assert p.timer.decay_cycles == 4096

    def test_selective_decay(self):
        p = make_leakage_policy(
            TechniqueConfig(name=SELECTIVE_DECAY, decay_cycles=4096), 8)
        assert isinstance(p, SelectiveDecayPolicy)
