"""Decay timers: ideal vs. hierarchical-counter quantization."""

import pytest

from repro.core.counters import DecayTimer
from repro.sim.config import COUNTER_HIERARCHICAL, COUNTER_IDEAL


class TestIdealTimer:
    def test_exact_deadline(self):
        t = DecayTimer(10_000, COUNTER_IDEAL)
        assert t.deadline(0) == 10_000
        assert t.deadline(777) == 10_777

    def test_bounds_degenerate(self):
        t = DecayTimer(10_000, COUNTER_IDEAL)
        assert t.interval_bounds() == (10_000, 10_000)

    def test_no_ticks(self):
        assert DecayTimer(1000, COUNTER_IDEAL).ticks_in(100_000) == 0


class TestHierarchicalTimer:
    def test_global_tick_period(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        assert t.global_tick == 2048
        assert t.n_states == 4

    def test_deadline_quantized_to_ticks(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        for last in (0, 1, 100, 2047, 2048, 5000):
            dl = t.deadline(last)
            assert dl % t.global_tick == 0

    def test_deadline_on_tick_boundary(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        # Touched exactly on a tick: gates 4 ticks later.
        assert t.deadline(2048) == 2048 + 4 * 2048

    def test_observed_interval_in_bounds(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        lo, hi = t.interval_bounds()
        assert lo == 3 * 2048 + 1
        assert hi == 4 * 2048
        for last in range(0, 8192, 97):
            interval = t.deadline(last) - last
            assert lo <= interval <= hi

    def test_nominal_time_is_upper_bound(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        for last in range(0, 5000, 131):
            assert t.deadline(last) - last <= 8192

    def test_more_bits_tighter_quantization(self):
        t2 = DecayTimer(65_536, COUNTER_HIERARCHICAL, bits=2)
        t4 = DecayTimer(65_536, COUNTER_HIERARCHICAL, bits=4)
        lo2, hi2 = t2.interval_bounds()
        lo4, hi4 = t4.interval_bounds()
        assert (hi4 - lo4) < (hi2 - lo2)

    def test_ticks_in_window(self):
        t = DecayTimer(8192, COUNTER_HIERARCHICAL, bits=2)
        assert t.ticks_in(2048 * 10) == 10


class TestValidation:
    def test_rejects_zero_decay(self):
        with pytest.raises(ValueError):
            DecayTimer(0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DecayTimer(1000, "approximate")

    def test_rejects_decay_below_resolution(self):
        with pytest.raises(ValueError):
            DecayTimer(2, COUNTER_HIERARCHICAL, bits=2)
