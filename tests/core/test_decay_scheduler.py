"""DecayScheduler: lazy re-arm heap semantics."""

from repro.core.counters import DecayTimer
from repro.core.decay import DecayScheduler
from repro.core.policy import FixedDecayPolicy
from repro.coherence.states import E


def make(decay=1000, n_lines=8, n_caches=2):
    policies = [FixedDecayPolicy(n_lines, DecayTimer(decay))
                for _ in range(n_caches)]
    return policies, DecayScheduler(policies)


class TestEnsure:
    def test_push_once(self):
        ps, sch = make()
        ps[0].on_fill(3, E, 0)
        sch.ensure(0, 3)
        sch.ensure(0, 3)
        assert sch.outstanding() == 1
        assert sch.has_pending(0, 3)

    def test_ignores_unarmed(self):
        ps, sch = make()
        sch.ensure(0, 3)  # never armed
        assert sch.outstanding() == 0

    def test_next_due(self):
        ps, sch = make(decay=500)
        ps[0].on_fill(1, E, 100)
        sch.ensure(0, 1)
        assert sch.next_due() == 600
        assert DecayScheduler(ps).next_due() is None


class TestProcessing:
    def test_fires_idle_line_at_exact_deadline(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append((c, f, t)))
        assert fired == [(0, 2, 1000)]

    def test_does_not_fire_early(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(999, lambda *a: fired.append(a))
        assert fired == []
        assert sch.has_pending(0, 2)

    def test_lazy_rearm_after_touch(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_touch(2, E, 800)  # no explicit ensure needed
        fired = []
        sch.process_until(1500, lambda c, f, t: fired.append(t))
        assert fired == []           # refreshed, not fired
        assert sch.refreshes == 1
        sch.process_until(1800, lambda c, f, t: fired.append(t))
        assert fired == [1800]

    def test_disarmed_event_dropped(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_clear(2)  # invalidated
        fired = []
        sch.process_until(5000, lambda *a: fired.append(a))
        assert fired == []
        assert not sch.has_pending(0, 2)

    def test_multiple_caches_ordered_by_deadline(self):
        ps, sch = make(decay=1000, n_caches=2)
        ps[0].on_fill(1, E, 500)
        ps[1].on_fill(1, E, 100)
        sch.ensure(0, 1)
        sch.ensure(1, 1)
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append((c, t)))
        assert fired == [(1, 1100), (0, 1500)]

    def test_rearm_after_fire_via_fill(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        def fire(c, f, t):
            ps[c].on_clear(f)   # the L2 would gate the frame
        sch.process_until(2000, fire)
        # refill later: a fresh event must be accepted
        ps[0].on_fill(2, E, 3000)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(10_000, lambda c, f, t: fired.append(t))
        assert fired == [4000]

    def test_stats_counters(self):
        ps, sch = make(decay=100)
        ps[0].on_fill(0, E, 0)
        sch.ensure(0, 0)
        sch.process_until(1000, lambda c, f, t: ps[c].on_clear(f))
        assert sch.pops == 1
        assert sch.fires == 1
