"""DecayScheduler: lazy re-arm heap semantics."""

from repro.core.counters import DecayTimer
from repro.core.decay import DecayScheduler
from repro.core.policy import FixedDecayPolicy
from repro.coherence.states import E


def make(decay=1000, n_lines=8, n_caches=2):
    policies = [FixedDecayPolicy(n_lines, DecayTimer(decay))
                for _ in range(n_caches)]
    return policies, DecayScheduler(policies)


class TestEnsure:
    def test_push_once(self):
        ps, sch = make()
        ps[0].on_fill(3, E, 0)
        sch.ensure(0, 3)
        sch.ensure(0, 3)
        assert sch.outstanding() == 1
        assert sch.has_pending(0, 3)

    def test_ignores_unarmed(self):
        ps, sch = make()
        sch.ensure(0, 3)  # never armed
        assert sch.outstanding() == 0

    def test_next_due(self):
        ps, sch = make(decay=500)
        ps[0].on_fill(1, E, 100)
        sch.ensure(0, 1)
        assert sch.next_due() == 600
        assert DecayScheduler(ps).next_due() is None


class TestProcessing:
    def test_fires_idle_line_at_exact_deadline(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append((c, f, t)))
        assert fired == [(0, 2, 1000)]

    def test_does_not_fire_early(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(999, lambda *a: fired.append(a))
        assert fired == []
        assert sch.has_pending(0, 2)

    def test_lazy_rearm_after_touch(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_touch(2, E, 800)  # no explicit ensure needed
        fired = []
        sch.process_until(1500, lambda c, f, t: fired.append(t))
        assert fired == []           # refreshed, not fired
        assert sch.refreshes == 1
        sch.process_until(1800, lambda c, f, t: fired.append(t))
        assert fired == [1800]

    def test_disarmed_event_dropped(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_clear(2)  # invalidated
        fired = []
        sch.process_until(5000, lambda *a: fired.append(a))
        assert fired == []
        assert not sch.has_pending(0, 2)

    def test_multiple_caches_ordered_by_deadline(self):
        ps, sch = make(decay=1000, n_caches=2)
        ps[0].on_fill(1, E, 500)
        ps[1].on_fill(1, E, 100)
        sch.ensure(0, 1)
        sch.ensure(1, 1)
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append((c, t)))
        assert fired == [(1, 1100), (0, 1500)]

    def test_rearm_after_fire_via_fill(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        def fire(c, f, t):
            ps[c].on_clear(f)   # the L2 would gate the frame
        sch.process_until(2000, fire)
        # refill later: a fresh event must be accepted
        ps[0].on_fill(2, E, 3000)
        sch.ensure(0, 2)
        fired = []
        sch.process_until(10_000, lambda c, f, t: fired.append(t))
        assert fired == [4000]

    def test_stats_counters(self):
        ps, sch = make(decay=100)
        ps[0].on_fill(0, E, 0)
        sch.ensure(0, 0)
        sch.process_until(1000, lambda c, f, t: ps[c].on_clear(f))
        assert sch.pops == 1
        assert sch.fires == 1


class TestAccounting:
    """pops/refreshes/fires bookkeeping: the amortized-O(1) contract.

    The flat-array engine inlines both sides of the scheduler protocol
    (the L2 pushes events and the scheduler recomputes deadlines from the
    policy columns), so these tests pin the exact counter accounting under
    touch-after-arm, disarm-before-fire, and re-arm storms — any change in
    amortized behavior shows up as a counter drift.
    """

    def test_touch_after_arm_costs_one_refresh(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        for t in range(100, 900, 100):  # 8 touches, no ensure needed
            ps[0].on_touch(2, E, t)
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append(t))
        # one stale pop -> one refresh, then the refreshed event fires
        assert fired == [1800]
        assert (sch.pops, sch.refreshes, sch.fires) == (2, 1, 1)

    def test_disarm_before_fire_pops_without_firing(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_clear(2)  # invalidated before the deadline
        assert sch.process_until(5000, lambda *a: 1 / 0) == 0
        assert (sch.pops, sch.refreshes, sch.fires) == (1, 0, 0)
        assert sch.outstanding() == 0
        assert not sch.has_pending(0, 2)

    def test_disarm_then_rearm_before_pop_refreshes(self):
        # A clear+refill between scheduling and the pop must behave like a
        # touch: the stale event refreshes to the new deadline, it never
        # fires at the dead line's deadline.
        ps, sch = make(decay=1000)
        ps[0].on_fill(2, E, 0)
        sch.ensure(0, 2)
        ps[0].on_clear(2)          # line dies at t=400 ...
        ps[0].on_fill(2, E, 500)   # ... frame refilled at t=500
        sch.ensure(0, 2)           # no-op: event still pending
        assert sch.outstanding() == 1
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append(t))
        assert fired == [1500]
        assert (sch.pops, sch.refreshes, sch.fires) == (2, 1, 1)

    def test_rearm_storm_keeps_one_event_and_two_pops(self):
        ps, sch = make(decay=1000)
        ps[0].on_fill(0, E, 0)
        sch.ensure(0, 0)
        for t in range(1, 500):  # 499 touches back-to-back
            ps[0].on_touch(0, E, t)
        assert sch.outstanding() == 1  # storms never grow the heap
        sch.process_until(1400, lambda *a: 1 / 0)
        assert (sch.pops, sch.refreshes, sch.fires) == (1, 1, 0)
        assert sch.outstanding() == 1  # refreshed to t=1499
        fired = []
        sch.process_until(1499, lambda c, f, t: fired.append(t))
        assert fired == [1499]
        assert (sch.pops, sch.refreshes, sch.fires) == (2, 1, 1)

    def test_selective_disarm_by_modified_then_downgrade(self):
        from repro.core.policy import SelectiveDecayPolicy
        from repro.coherence.states import M, S

        pol = SelectiveDecayPolicy(8, DecayTimer(1000))
        sch = DecayScheduler([pol])
        pol.on_fill(3, E, 0)
        sch.ensure(0, 3)
        pol.on_state_change(3, E, M, 400)  # store: decay must stop
        assert sch.process_until(5000, lambda *a: 1 / 0) == 0
        assert (sch.pops, sch.refreshes, sch.fires) == (1, 0, 0)
        pol.on_state_change(3, M, S, 6000)  # downgrade re-arms
        sch.ensure(0, 3)
        fired = []
        sch.process_until(7000, lambda c, f, t: fired.append(t))
        assert fired == [7000]
        assert (sch.pops, sch.refreshes, sch.fires) == (2, 0, 1)

    def test_builtin_subclass_overrides_are_honored(self):
        # A subclass of a built-in policy may override deadline(); the
        # scheduler must dispatch virtually instead of hijacking it with
        # the inlined fixed-decay column formula.
        class GracePeriod(FixedDecayPolicy):
            def deadline(self, frame):
                base = super().deadline(frame)
                return base if base < 0 else base + 1000

        pol = GracePeriod(8, DecayTimer(1000))
        sch = DecayScheduler([pol])
        pol.on_fill(2, E, 0)
        sch.ensure(0, 2)
        assert sch.next_due() == 2000  # override, not the built-in 1000
        fired = []
        sch.process_until(5000, lambda c, f, t: fired.append(t))
        assert fired == [2000]
