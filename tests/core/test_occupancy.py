"""Occupancy tracker: exact powered line-cycle integrals."""

import pytest

from repro.core.occupancy import OccupancyTracker


class TestBasicIntegral:
    def test_always_on(self):
        t = OccupancyTracker(10, start_powered=True)
        assert t.finalize(100) == 1000
        assert t.occupancy(100) == 1.0

    def test_starts_gated(self):
        t = OccupancyTracker(10, start_powered=False)
        assert t.finalize(100) == 0
        assert t.occupancy(100) == 0.0

    def test_single_wake(self):
        t = OccupancyTracker(4, start_powered=False)
        t.wake(10)
        assert t.finalize(20) == 10  # 1 line for 10 cycles
        assert t.occupancy(20) == pytest.approx(10 / 80)

    def test_wake_then_gate(self):
        t = OccupancyTracker(4, start_powered=False)
        t.wake(0)
        t.gate(25)
        assert t.finalize(100) == 25

    def test_multiple_lines(self):
        t = OccupancyTracker(4, start_powered=False)
        t.wake(0)
        t.wake(10)   # 2 lines on from 10
        t.gate(20)   # back to 1
        total = t.finalize(30)
        assert total == 10 * 1 + 10 * 2 + 10 * 1

    def test_gate_without_power_raises(self):
        t = OccupancyTracker(2, start_powered=False)
        with pytest.raises(RuntimeError):
            t.gate(5)

    def test_wake_beyond_capacity_raises(self):
        t = OccupancyTracker(1, start_powered=True)
        with pytest.raises(RuntimeError):
            t.wake(5)

    def test_clamps_small_backwards_steps(self):
        t = OccupancyTracker(4, start_powered=False)
        t.wake(100)
        t.wake(90)  # snoop stamped slightly in the past: clamped
        assert t.clamped_events == 1
        assert t.on_lines == 2


class TestRebase:
    def test_rebase_discards_history(self):
        t = OccupancyTracker(4, start_powered=True)
        t.gate(10)
        t.rebase(50)
        assert t.finalize(150) == 3 * 100
        assert t.gates == 0

    def test_rebase_keeps_power_state(self):
        t = OccupancyTracker(4, start_powered=False)
        t.wake(0)
        t.wake(5)
        t.rebase(10)
        assert t.on_lines == 2


class TestBucketIntegrals:
    def test_exact_bucket_distribution(self):
        t = OccupancyTracker(4, start_powered=False, sample_interval=10)
        t.wake(5)     # on from 5
        t.gate(25)    # off at 25
        t.finalize(40)
        buckets = t.bucket_integrals()
        # bucket 0: cycles 5..10 -> 5; bucket 1: 10..20 -> 10; bucket 2: 20..25 -> 5
        assert buckets[0] == 5
        assert buckets[1] == 10
        assert buckets[2] == 5
        assert sum(buckets) == t.on_line_cycles

    def test_bucket_sum_matches_integral(self):
        t = OccupancyTracker(8, start_powered=False, sample_interval=7)
        events = [(3, "w"), (10, "w"), (20, "g"), (33, "w"), (60, "g")]
        for time, kind in events:
            (t.wake if kind == "w" else t.gate)(time)
        t.finalize(100)
        assert sum(t.bucket_integrals()) == t.on_line_cycles

    def test_mean_on_lines(self):
        t = OccupancyTracker(4, start_powered=True, sample_interval=10)
        t.finalize(20)
        assert t.bucket_mean_on_lines() == [4.0, 4.0]

    def test_no_sampling_returns_empty(self):
        t = OccupancyTracker(4, start_powered=True)
        t.finalize(10)
        assert t.bucket_mean_on_lines() == []


class TestValidation:
    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            OccupancyTracker(0, True)

    def test_occupancy_zero_cycles(self):
        t = OccupancyTracker(4, True)
        assert t.occupancy(0) == 0.0
