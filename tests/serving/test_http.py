"""HTTP-layer tests: the content-addressed serving contract."""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor

from repro.harness.query import ResultQuery, ResultStore
from repro.serving import BackgroundServer, ResultService

from serving_utils import get_json, http_get, serving_spec


def first_digest(port: int) -> str:
    """The digest of some cached row, via the query endpoint."""
    status, doc = get_json(port, "/v1/query?technique=protocol")
    assert status == 200 and doc["rows"]
    return doc["rows"][0]["digest"]


class TestPointMetrics:
    def test_etag_and_immutable_cache_policy(self, server):
        digest = first_digest(server.port)
        status, headers, body = http_get(
            server.port, f"/v1/points/{digest}/metrics"
        )
        assert status == 200
        assert headers["etag"] == f'"{digest}"'
        assert "immutable" in headers["cache-control"]
        assert json.loads(body)["digest"] == digest

    def test_repeated_fetches_are_byte_identical(self, server):
        digest = first_digest(server.port)
        path = f"/v1/points/{digest}/metrics"
        _, h1, b1 = http_get(server.port, path)
        _, h2, b2 = http_get(server.port, path)
        assert b1 == b2
        assert h1["etag"] == h2["etag"]
        assert int(h1["content-length"]) == len(b1)

    def test_byte_identity_across_server_restarts(self, populated_cache):
        """The acceptance property: a digest's body survives a restart."""
        cache_dir, _ = populated_cache
        fetched = []
        for _ in range(2):  # two independent stores + servers
            store = ResultStore.open(cache_dir, serving_spec())
            with BackgroundServer(ResultService(store).handle) as bg:
                digest = first_digest(bg.port)
                fetched.append(
                    http_get(bg.port, f"/v1/points/{digest}/metrics")
                )
        (s1, h1, b1), (s2, h2, b2) = fetched
        assert s1 == s2 == 200
        assert b1 == b2
        assert h1["etag"] == h2["etag"]

    def test_if_none_match_yields_304_with_empty_body(self, server):
        digest = first_digest(server.port)
        path = f"/v1/points/{digest}/metrics"
        _, headers, _ = http_get(server.port, path)
        status, h304, body = http_get(
            server.port, path, {"If-None-Match": headers["etag"]}
        )
        assert status == 304
        assert body == b""
        assert h304["etag"] == headers["etag"]
        assert "immutable" in h304["cache-control"]

    def test_stale_validator_serves_the_full_body(self, server):
        digest = first_digest(server.port)
        status, _, body = http_get(
            server.port,
            f"/v1/points/{digest}/metrics",
            {"If-None-Match": '"somethingelse"'},
        )
        assert status == 200 and body

    def test_unknown_digest_404s_with_json_error(self, server):
        status, doc = get_json(
            server.port, "/v1/points/" + "0" * 40 + "/metrics"
        )
        assert status == 404
        assert doc["error"]["status"] == 404

    def test_known_point_missing_from_cache_404s(self, tmp_path):
        store = ResultStore.open(str(tmp_path / "empty"), serving_spec())
        digest = store.points()[0].digest()
        with BackgroundServer(ResultService(store).handle) as bg:
            status, doc = get_json(bg.port, f"/v1/points/{digest}/metrics")
        assert status == 404
        assert "cache" in doc["error"]["message"]


class TestQueryEndpoint:
    def test_query_filters_rows(self, server):
        status, doc = get_json(server.port, "/v1/query?technique=protocol")
        assert status == 200
        assert doc["count"] == len(doc["rows"]) == 1
        assert doc["rows"][0]["technique"] == "protocol"
        assert doc["query"] == {"techniques": ["protocol"]}

    def test_query_echoes_totals(self, server, store):
        _, doc = get_json(server.port, "/v1/query")
        assert doc["total"] == len(store.points())
        assert doc["missing"] == 0

    def test_malformed_query_400s_with_json_error(self, server):
        status, doc = get_json(server.port, "/v1/query?bogus=1")
        assert status == 400
        assert doc["error"]["status"] == 400
        assert "bogus" in doc["error"]["message"]

    def test_bad_value_400s(self, server):
        status, doc = get_json(server.port, "/v1/query?size=big")
        assert status == 400
        assert "integer" in doc["error"]["message"]

    def test_csv_format(self, server):
        status, headers, body = http_get(
            server.port, "/v1/query?format=csv&fields=digest,technique"
        )
        assert status == 200
        assert "text/csv" in headers["content-type"]
        lines = body.decode().splitlines()
        assert lines[0] == "digest,technique"
        assert len(lines) == 3  # header + two rows

    def test_sort_and_fields_and_limit(self, server, store):
        top = max(store.metrics(), key=lambda m: m.energy_reduction)
        _, doc = get_json(
            server.port,
            "/v1/query?sort=-energy_reduction&fields=technique&limit=1",
        )
        assert doc["rows"] == [{"technique": top.technique}]


class TestOtherEndpoints:
    def test_index_describes_the_service(self, server, store):
        status, doc = get_json(server.port, "/")
        assert status == 200
        assert doc["spec"] == "serving_smoke"
        assert doc["cached"] == len(store.metrics())
        assert any("/v1/query" in e for e in doc["endpoints"])

    def test_unknown_path_404s(self, server):
        status, doc = get_json(server.port, "/v1/nope")
        assert status == 404
        assert doc["error"]["status"] == 404

    def test_manifest_lists_cached_entries(self, server, store):
        status, doc = get_json(server.port, "/v1/manifest")
        assert status == 200
        assert doc["count"] == len(doc["entries"]) == len(store.metrics())

    def test_manifest_is_fresh_not_the_stale_snapshot(self, tmp_path):
        """A key whose blob vanished is never served, even when the
        on-disk ``index.json`` still lists it."""
        store = ResultStore.open(
            str(tmp_path / "c"), serving_spec(), simulate_missing=True
        )
        store.metrics()  # populate the cache
        cache = store.runner.cache
        cache.write_manifest()
        victim = next(iter(cache.build_manifest()["entries"]))
        import os

        os.unlink(cache.path_for(victim))
        # the stale snapshot still lists it; the served manifest must not
        assert victim in (cache.read_manifest() or {}).get("entries", {})
        with BackgroundServer(ResultService(store).handle) as bg:
            status, doc = get_json(bg.port, "/v1/manifest")
        assert status == 200
        assert victim not in doc["entries"]

    def test_provenance_endpoint(self, server, store):
        point = store.points()[0]
        store.runner.cache.put_provenance(
            store.runner.point_key(point), {"worker": "w9"}
        )
        status, doc = get_json(
            server.port, f"/v1/provenance/{point.digest()}"
        )
        assert status == 200
        assert doc["provenance"] == {"worker": "w9"}
        status, _ = get_json(server.port, "/v1/provenance/" + "0" * 40)
        assert status == 404

    def test_figure_endpoint_renders_from_cache(self, server):
        status, doc = get_json(server.port, "/v1/figures/fig3a")
        assert status == 200
        assert doc["exp_id"] == "fig3a"
        assert doc["columns"] == ["1MB"]
        assert "baseline" in doc["rows"] and "protocol" in doc["rows"]

    def test_figure_csv_and_table1_and_404(self, server):
        status, headers, body = http_get(
            server.port, "/v1/figures/fig5a?format=csv"
        )
        assert status == 200 and "text/csv" in headers["content-type"]
        assert body.decode().startswith("fig5a,")
        status, doc = get_json(server.port, "/v1/figures/table1")
        assert status == 200 and doc["columns"] == ["clean", "dirty"]
        status, _ = get_json(server.port, "/v1/figures/fig99")
        assert status == 404


class TestProtocol:
    def test_post_is_405_with_allow_header(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("POST", "/v1/query", body=b"{}")
            resp = conn.getresponse()
            assert resp.status == 405
            assert "GET" in resp.getheader("Allow", "")
            resp.read()
        finally:
            conn.close()

    def test_head_returns_headers_without_body(self, server):
        import http.client

        digest = first_digest(server.port)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("HEAD", f"/v1/points/{digest}/metrics")
            resp = conn.getresponse()
            body = resp.read()
            assert resp.status == 200
            assert body == b""
            assert int(resp.getheader("Content-Length")) > 0
        finally:
            conn.close()

    def test_malformed_request_line_400s(self, server):
        with socket.create_connection(("127.0.0.1", server.port), 10) as s:
            s.sendall(b"NONSENSE\r\n\r\n")
            data = s.recv(4096)
        assert data.startswith(b"HTTP/1.1 400 ")

    def test_keep_alive_serves_sequential_requests(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/query")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()

    def test_slow_request_times_out_with_408(self, store):
        """A client that stalls mid-request is 408'd and disconnected."""
        with BackgroundServer(
            ResultService(store).handle, read_timeout=0.3
        ) as bg:
            with socket.create_connection(("127.0.0.1", bg.port), 10) as s:
                s.settimeout(10)
                s.sendall(b"GET /v1/query HTTP/1.1\r\nHost: x")  # never finish
                data = b""
                while True:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    data += chunk
        assert data.startswith(b"HTTP/1.1 408 ")
        assert b"Connection: close" in data

    def test_idle_keep_alive_connection_times_out(self, store):
        """A connection idle between requests is also reclaimed."""
        with BackgroundServer(
            ResultService(store).handle, read_timeout=0.3
        ) as bg:
            with socket.create_connection(("127.0.0.1", bg.port), 10) as s:
                s.settimeout(10)
                s.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
                first = s.recv(65536)
                data = b""
                while True:  # send nothing; wait for the 408 + close
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    data += chunk
        assert first.startswith(b"HTTP/1.1 200 ")
        assert data.startswith(b"HTTP/1.1 408 ")

    def test_max_requests_caps_a_keep_alive_connection(self, store):
        import http.client

        with BackgroundServer(
            ResultService(store).handle, max_requests=2
        ) as bg:
            conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=10)
            try:
                conn.request("GET", "/v1/query")
                resp = conn.getresponse()
                assert resp.status == 200
                assert resp.getheader("Connection") == "keep-alive"
                resp.read()
                conn.request("GET", "/v1/query")
                resp = conn.getresponse()
                assert resp.status == 200
                assert resp.getheader("Connection") == "close"
                resp.read()
            finally:
                conn.close()

    def test_concurrent_clients_smoke(self, server):
        digest = first_digest(server.port)
        paths = [
            "/v1/query",
            f"/v1/points/{digest}/metrics",
            "/v1/manifest",
            "/v1/query?technique=protocol",
        ] * 5

        def fetch(path):
            return http_get(server.port, path)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(fetch, paths))
        assert all(status == 200 for status, _, _ in results)
        bodies = {
            body
            for (status, _, body), path in zip(results, paths)
            if path.endswith("/metrics")
        }
        assert len(bodies) == 1  # identical bytes under concurrency
