"""ResultStore semantics: read-only metrics over the cached spec."""

from __future__ import annotations

import pytest

from repro.harness.query import ResultQuery, ResultStore
from repro.harness.runner import SweepRunner

from serving_utils import SERVING_RUN, serving_spec


class TestStoreReads:
    def test_metrics_match_a_fresh_run(self, populated_cache, store):
        """Store rows equal what running the same spec computes."""
        cache_dir, _ = populated_cache
        runner = SweepRunner(
            scale=SERVING_RUN["scale"],
            seed=SERVING_RUN["seed"],
            cache_dir=cache_dir,
            verbose=False,
        )
        assert store.metrics() == runner.run_spec(serving_spec())
        assert store.missing_points() == []

    def test_digest_index_covers_every_point(self, store):
        idx = store.digest_index()
        assert len(idx) == len(store.points())
        for digest, point in idx.items():
            assert point.digest() == digest

    def test_metrics_for_digest(self, store):
        digest = store.points()[0].digest()
        point, metrics = store.metrics_for_digest(digest)
        assert point.digest() == digest
        assert metrics is not None
        assert store.metrics_for_digest("0" * 40) is None

    def test_provenance_roundtrip(self, store):
        point = store.points()[0]
        key = store.runner.point_key(point)
        store.runner.cache.put_provenance(key, {"worker": "w0"})
        assert store.provenance_for_digest(point.digest()) == {"worker": "w0"}

    def test_missing_points_are_skipped_not_simulated(self, tmp_path):
        """An empty cache yields no rows — the store must never simulate."""
        store = ResultStore.open(str(tmp_path / "empty"), serving_spec())
        assert store.metrics() == []
        assert len(store.missing_points()) == len(store.points())
        result = store.run_query(ResultQuery())
        assert result.rows == []
        assert result.missing == result.total > 0

    def test_simulate_missing_fills_on_demand(self, tmp_path):
        store = ResultStore.open(
            str(tmp_path / "sim"), serving_spec(), simulate_missing=True
        )
        assert len(store.metrics()) == len(store.points())


class TestRunQuery:
    def test_rows_carry_digest_and_all_columns(self, store):
        result = store.run_query(ResultQuery())
        assert result.matched == len(store.metrics())
        digests = set(store.digest_index())
        for row, m in zip(result.rows, result.metrics):
            assert row["digest"] in digests
            assert row["workload"] == m.workload
            assert row["energy_reduction"] == m.energy_reduction

    def test_projection_restricts_row_columns(self, store):
        q = ResultQuery(fields=("digest", "technique"))
        rows = store.run_query(q).rows
        assert rows and all(set(r) == {"digest", "technique"} for r in rows)

    def test_filter_and_sort_funnel_through_apply(self, store):
        q = ResultQuery(techniques=("protocol",), sort=("-energy_reduction",))
        result = store.run_query(q)
        assert result.metrics == q.apply(store.metrics())
        assert all(r["technique"] == "protocol" for r in result.rows)

    def test_context_mismatch_sees_nothing(self, populated_cache):
        """A different seed resolves different cache keys: all missing."""
        cache_dir, _ = populated_cache
        store = ResultStore.open(cache_dir, serving_spec(), seed=999)
        assert store.metrics() == []

    @pytest.mark.parametrize("limit", [1, 2])
    def test_limit(self, store, limit):
        assert store.run_query(ResultQuery(limit=limit)).matched == min(
            limit, len(store.metrics())
        )
