"""Shared fixtures of the serving-layer tests.

One tiny spec is simulated once per session into a shared cache
directory; every HTTP/store/CLI test then mounts that cache read-only —
exactly the deployment shape ``repro-cmp serve-results`` serves.
"""

from __future__ import annotations

from typing import Tuple

import pytest
from serving_utils import SERVING_RUN, serving_spec

from repro.harness.query import ResultStore
from repro.harness.runner import SweepRunner
from repro.harness.spec import save_spec
from repro.serving import BackgroundServer, ResultService


@pytest.fixture(scope="session")
def populated_cache(tmp_path_factory) -> Tuple[str, str]:
    """Simulate the serving spec once; return (cache_dir, spec_path)."""
    root = tmp_path_factory.mktemp("serving")
    cache_dir = str(root / "cache")
    spec = serving_spec()
    runner = SweepRunner(
        scale=SERVING_RUN["scale"],
        seed=SERVING_RUN["seed"],
        cache_dir=cache_dir,
        verbose=False,
    )
    metrics = runner.run_spec(spec)
    assert metrics, "smoke spec must produce rows"
    assert runner.cache is not None
    runner.cache.write_manifest()
    spec_path = str(root / "serving_smoke.toml")
    save_spec(spec, spec_path)
    return cache_dir, spec_path


@pytest.fixture()
def store(populated_cache) -> ResultStore:
    """A read-only store mounted over the shared cache."""
    cache_dir, _ = populated_cache
    return ResultStore.open(cache_dir, serving_spec())


@pytest.fixture()
def server(store):
    """A running background HTTP server over the shared cache."""
    with BackgroundServer(ResultService(store).handle) as bg:
        yield bg
