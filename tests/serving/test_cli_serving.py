"""CLI/HTTP parity: one ResultQuery, identical rows on every surface."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main
from repro.harness.query import ResultQuery, ResultStore
from repro.serving import BackgroundServer, ResultService

from serving_utils import http_get, serving_spec

FILTER = "technique=protocol sort=-energy_reduction"


def cli_json(capsys, args):
    """Run ``repro-cmp`` and return its raw stdout."""
    assert main(args) == 0
    return capsys.readouterr().out


class TestParity:
    def test_cli_json_is_byte_identical_to_http(
        self, populated_cache, capsys
    ):
        """The acceptance property: same filter, same bytes, both doors."""
        cache_dir, spec_path = populated_cache
        out = cli_json(
            capsys,
            [
                "query", FILTER, spec_path,
                "--cache-dir", cache_dir, "--json", "--quiet",
            ],
        )
        store = ResultStore.open(cache_dir, serving_spec())
        with BackgroundServer(ResultService(store).handle) as bg:
            _, _, body = http_get(
                bg.port,
                "/v1/query?technique=protocol&sort=-energy_reduction",
            )
        assert out.encode("utf-8") == body

    def test_cli_http_and_figures_select_identical_rows(
        self, populated_cache, store
    ):
        """CLI selection == figures selection == HTTP rows, same query."""
        query = ResultQuery.parse(FILTER)
        # the CLI/store door
        store_rows = store.run_query(query)
        # the figures door: the same .apply over the same metric list
        figure_rows = query.apply(store.metrics())
        assert store_rows.metrics == figure_rows
        # the HTTP door
        with BackgroundServer(ResultService(store).handle) as bg:
            _, _, body = http_get(
                bg.port,
                "/v1/query?technique=protocol&sort=-energy_reduction",
            )
        http_rows = json.loads(body)["rows"]
        digests = store.digest_index()
        assert [
            {"digest": d, **m.as_dict()}
            for d, m in (
                (next(dg for dg, p in digests.items()
                      if store.metrics_for_digest(dg)[1] == m), m)
                for m in figure_rows
            )
        ] == http_rows


class TestQueryCommand:
    def test_table_output_and_summary(self, populated_cache, capsys):
        cache_dir, spec_path = populated_cache
        out = cli_json(
            capsys, ["query", "", spec_path, "--cache-dir", cache_dir]
        )
        assert "serving_smoke" in out
        assert "[query] 2 row(s) of 2 spec point(s); 0 not cached" in out

    def test_csv_output(self, populated_cache, capsys, tmp_path):
        cache_dir, spec_path = populated_cache
        csv_path = str(tmp_path / "rows.csv")
        cli_json(
            capsys,
            [
                "query", "fields=digest,technique", spec_path,
                "--cache-dir", cache_dir, "--csv", csv_path, "--quiet",
            ],
        )
        with open(csv_path) as fh:
            lines = fh.read().splitlines()
        assert lines[0] == "digest,technique"
        assert len(lines) == 3

    def test_bad_filter_exits_2(self, populated_cache, capsys):
        cache_dir, spec_path = populated_cache
        assert main(
            ["query", "bogus=1", spec_path, "--cache-dir", cache_dir]
        ) == 2
        assert "unknown query key" in capsys.readouterr().err

    def test_usage_error_exits_2(self, capsys):
        assert main(["query"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_no_cache_without_simulate_rejected(
        self, populated_cache, capsys
    ):
        _, spec_path = populated_cache
        with pytest.raises(SystemExit, match="--no-cache"):
            main(["query", "", spec_path, "--no-cache"])


class TestServeResultsCommand:
    def test_usage_error_exits_2(self, capsys):
        assert main(["serve-results", "a.toml", "extra"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_missing_spec_file_exits_1(self, capsys, tmp_path):
        assert main(
            ["serve-results", str(tmp_path / "nope.toml"),
             "--cache-dir", str(tmp_path)]
        ) == 1


class TestRunQueryFlag:
    def test_run_with_query_restricts_the_table(
        self, populated_cache, capsys
    ):
        cache_dir, spec_path = populated_cache
        out = cli_json(
            capsys,
            [
                "run", spec_path, "--cache-dir", cache_dir,
                "--query", "technique=protocol", "--quiet",
            ],
        )
        assert "protocol" in out
        assert "baseline" not in out

    def test_run_with_bad_query_flag_exits_nonzero(
        self, populated_cache, capsys
    ):
        cache_dir, spec_path = populated_cache
        with pytest.raises(SystemExit, match="bad --query"):
            main(
                [
                    "run", spec_path, "--cache-dir", cache_dir,
                    "--query", "bogus=1", "--quiet",
                ]
            )
