"""Shared helpers of the serving-layer tests (spec + HTTP client)."""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple

from repro.harness.spec import grid_spec

#: the run context the serving smoke spec pins (fast, deterministic)
SERVING_RUN = {"scale": 0.04, "seed": 1}


def serving_spec():
    """The spec whose results every serving test reads."""
    return grid_spec(
        name="serving_smoke",
        description="uniform x 1MB x (baseline, protocol), tiny scale",
        workloads=("uniform",),
        sizes_mb=(1,),
        techniques=("baseline", "protocol"),
        run=dict(SERVING_RUN),
    )


def http_get(
    port: int, path: str, headers: Optional[Dict[str, str]] = None
) -> Tuple[int, Dict[str, str], bytes]:
    """One GET against a test server: ``(status, headers, body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path, headers=headers or {})
        resp = conn.getresponse()
        body = resp.read()
        return resp.status, {k.lower(): v for k, v in resp.getheaders()}, body
    finally:
        conn.close()


def get_json(port: int, path: str):
    """GET + JSON-decode; asserts a JSON content type."""
    status, headers, body = http_get(port, path)
    assert "application/json" in headers["content-type"]
    return status, json.loads(body)
