"""Shared fixtures and factories for the test-suite."""

from __future__ import annotations

import pytest

from repro.sim.config import (
    BASELINE,
    DECAY,
    PROTOCOL,
    SELECTIVE_DECAY,
    CMPConfig,
    CoreConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    TechniqueConfig,
)


def tiny_config(
    technique: str = BASELINE,
    decay_cycles: int = 2_000,
    n_cores: int = 4,
    l2_kb: int = 16,
    l1_kb: int = 1,
    counter_mode: str = "ideal",
    **overrides,
) -> CMPConfig:
    """A miniature CMP for protocol-level tests.

    Small caches keep tests fast while exercising real replacement,
    inclusion and coherence behaviour.
    """
    return CMPConfig(
        n_cores=n_cores,
        core=CoreConfig(
            write_buffer_drain_cycles=2,
            l1_mshr_entries=4,
            write_buffer_entries=4,
        ),
        l1=L1Config(size_bytes=l1_kb * 1024, assoc=2, line_bytes=64),
        l2=L2Config(size_bytes=l2_kb * 1024, assoc=4, line_bytes=64,
                    hit_latency=8),
        memory=MemoryConfig(latency=50, contention=False),
        technique=TechniqueConfig(
            name=technique, decay_cycles=decay_cycles,
            counter_mode=counter_mode),
        **overrides,
    )


@pytest.fixture
def baseline_cfg() -> CMPConfig:
    """Tiny baseline config."""
    return tiny_config(BASELINE)


@pytest.fixture
def protocol_cfg() -> CMPConfig:
    """Tiny protocol-technique config."""
    return tiny_config(PROTOCOL)


@pytest.fixture
def decay_cfg() -> CMPConfig:
    """Tiny fixed-decay config (2000-cycle decay)."""
    return tiny_config(DECAY)


@pytest.fixture
def sd_cfg() -> CMPConfig:
    """Tiny selective-decay config."""
    return tiny_config(SELECTIVE_DECAY)


def make_system(cfg: CMPConfig):
    """Fresh MemorySystem for a config."""
    from repro.hierarchy.system import MemorySystem

    return MemorySystem(cfg)


def line(n: int) -> int:
    """n-th distinct line address (spread across sets)."""
    return 0x4000 + n
