"""Configuration dataclasses and the paper's technique matrix."""

import pytest

from repro.sim.config import (
    BASELINE,
    DECAY,
    PAPER_DECAY_CYCLES,
    PAPER_TOTAL_L2_MB,
    PROTOCOL,
    SELECTIVE_DECAY,
    CMPConfig,
    CoreConfig,
    L1Config,
    L2Config,
    TechniqueConfig,
    paper_technique_order,
    paper_techniques,
)


class TestTechniqueConfig:
    def test_labels(self):
        assert TechniqueConfig(name=BASELINE).label() == "baseline"
        assert TechniqueConfig(name=PROTOCOL).label() == "protocol"
        assert TechniqueConfig(name=DECAY, decay_cycles=64_000).label() == \
            "decay64K"
        assert TechniqueConfig(
            name=SELECTIVE_DECAY, decay_cycles=512_000).label() == \
            "sel_decay512K"

    def test_flags(self):
        assert not TechniqueConfig(name=BASELINE).gates_lines
        assert TechniqueConfig(name=PROTOCOL).gates_lines
        assert not TechniqueConfig(name=PROTOCOL).is_decay_based
        assert TechniqueConfig(name=DECAY).is_decay_based

    def test_validation(self):
        with pytest.raises(ValueError):
            TechniqueConfig(name="drowsy")
        with pytest.raises(ValueError):
            TechniqueConfig(name=DECAY, decay_cycles=0)
        with pytest.raises(ValueError):
            TechniqueConfig(counter_mode="fuzzy")
        with pytest.raises(ValueError):
            TechniqueConfig(counter_bits=0)


class TestCMPConfig:
    def test_total_l2(self):
        cfg = CMPConfig().with_total_l2_mb(4)
        assert cfg.total_l2_bytes == 4 * 1024 * 1024
        assert cfg.l2.size_bytes == 1024 * 1024  # per core

    def test_with_technique_is_pure(self):
        a = CMPConfig()
        b = a.with_technique(TechniqueConfig(name=PROTOCOL))
        assert a.technique.name == BASELINE
        assert b.technique.name == PROTOCOL

    def test_key_distinguishes_configs(self):
        a = CMPConfig().with_total_l2_mb(4)
        b = CMPConfig().with_total_l2_mb(8)
        c = a.with_technique(TechniqueConfig(name=PROTOCOL))
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CMPConfig(l1=L1Config(line_bytes=32), l2=L2Config(line_bytes=64))

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            CMPConfig(n_cores=0)


class TestPaperMatrix:
    def test_sizes(self):
        assert PAPER_TOTAL_L2_MB == (1, 2, 4, 8)

    def test_decay_times(self):
        assert PAPER_DECAY_CYCLES == (512_000, 128_000, 64_000)

    def test_seven_techniques(self):
        techs = paper_techniques()
        assert len(techs) == 7
        assert set(paper_technique_order()) == set(techs)

    def test_scaling_decay_times(self):
        techs = paper_techniques(scale=0.1)
        assert techs["decay64K"].decay_cycles == 6400
        assert techs["decay64K"].label() == "decay6K"  # scaled label
        assert techs["sel_decay512K"].decay_cycles == 51_200

    def test_order_matches_figures(self):
        order = paper_technique_order()
        assert order[0] == "protocol"
        assert order[1:4] == ("decay512K", "decay128K", "decay64K")


class TestCoreConfig:
    def test_overlap_lookup(self):
        c = CoreConfig()
        assert c.overlap_for(0) == c.overlap_dependent
        assert c.overlap_for(1) == c.overlap_moderate
        assert c.overlap_for(2) == c.overlap_streaming
