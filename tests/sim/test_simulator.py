"""End-to-end simulator runs on small synthetic workloads."""

import pytest

from repro import CMPConfig, Simulator, TechniqueConfig, simulate
from repro.sim.stats import SimResult
from repro.workloads.registry import get_workload
from tests.conftest import tiny_config

SCALE = 0.04


@pytest.fixture(scope="module")
def uniform_wl():
    return get_workload("uniform", scale=SCALE)


class TestBasicRun:
    def test_completes_and_counts(self, uniform_wl):
        res = simulate(tiny_config(), uniform_wl)
        expected = uniform_wl.meta.accesses_per_core
        for core in res.cores:
            assert core.loads + core.stores == expected
        assert res.total_cycles > 0
        assert res.ipc > 0

    def test_baseline_occupancy_is_one(self, uniform_wl):
        res = simulate(tiny_config("baseline"), uniform_wl)
        assert res.occupancy == pytest.approx(1.0)

    def test_deterministic(self, uniform_wl):
        a = simulate(tiny_config(), uniform_wl)
        b = simulate(tiny_config(), uniform_wl)
        assert a.total_cycles == b.total_cycles
        assert a.l2_miss_rate == b.l2_miss_rate
        assert a.ipc == b.ipc

    def test_serialization_roundtrip(self, uniform_wl):
        res = simulate(tiny_config(), uniform_wl)
        again = SimResult.from_dict(res.to_dict())
        assert again.total_cycles == res.total_cycles
        assert again.occupancy == res.occupancy
        assert again.ipc == res.ipc

    def test_summary_renders(self, uniform_wl):
        res = simulate(tiny_config(), uniform_wl)
        s = res.summary()
        assert "IPC" in s and "occupancy" in s

    def test_event_heap_loses_no_drains(self, uniform_wl):
        # every buffered store must drain by completion: a dropped or
        # stale-swallowed heap entry would leave a pending deadline
        sim = Simulator(tiny_config())
        res = sim.run(uniform_wl)
        for l1 in sim.system.l1s:
            assert l1.next_drain_time() == -1
            assert l1.consume_drain_event() is None
        drains = sum(l1.write_buffer.stats.drains for l1 in sim.system.l1s)
        inserts = sum(l1.write_buffer.stats.inserts for l1 in sim.system.l1s)
        coalesced = sum(
            l1.write_buffer.stats.coalesced for l1 in sim.system.l1s
        )
        assert drains == inserts - coalesced
        assert sum(s.writes for s in res.l2) == drains


class TestBarrierWorkloads:
    def test_phased_workload_completes(self):
        wl = get_workload("water_ns", scale=SCALE)
        res = simulate(tiny_config(), wl)
        assert all(c.barriers >= 8 for c in res.cores)
        # all cores end within one barrier release of each other
        cycles = [c.cycles for c in res.cores]
        assert max(cycles) > 0


class TestWarmup:
    def test_warmup_reduces_counted_work(self, uniform_wl):
        full = simulate(tiny_config(), uniform_wl)
        warm = simulate(tiny_config(), uniform_wl, warmup_fraction=0.5)
        assert warm.total_instructions < full.total_instructions
        assert warm.total_cycles < full.total_cycles

    def test_warmup_validation(self, uniform_wl):
        with pytest.raises(ValueError):
            simulate(tiny_config(), uniform_wl, warmup_fraction=1.5)

    def test_event_budget_guard(self, uniform_wl):
        with pytest.raises(RuntimeError):
            simulate(tiny_config(), uniform_wl, max_events=10)


class TestTechniqueInvariants:
    """Cross-technique orderings that must hold on any workload."""

    @pytest.fixture(scope="class")
    def results(self):
        wl = get_workload("uniform", scale=SCALE)
        out = {}
        for tech, kw in [
            ("baseline", {}),
            ("protocol", {}),
            ("decay", {"decay_cycles": 3000}),
            ("selective_decay", {"decay_cycles": 3000}),
        ]:
            out[tech] = simulate(
                tiny_config(tech, l2_kb=64, **kw), wl)
        return out

    def test_occupancy_ordering(self, results):
        assert results["baseline"].occupancy == pytest.approx(1.0)
        assert results["protocol"].occupancy <= 1.0
        assert results["decay"].occupancy <= results["selective_decay"].occupancy
        assert results["selective_decay"].occupancy <= \
            results["protocol"].occupancy + 1e-9

    def test_protocol_matches_baseline_performance(self, results):
        # "This technique does not incur in any performance loss."
        assert results["protocol"].ipc == pytest.approx(
            results["baseline"].ipc, rel=1e-6)
        assert results["protocol"].l2_miss_rate == pytest.approx(
            results["baseline"].l2_miss_rate, rel=1e-6)

    def test_decay_misses_at_least_baseline(self, results):
        assert results["decay"].l2_miss_rate >= \
            results["baseline"].l2_miss_rate - 1e-9

    def test_decay_not_faster(self, results):
        assert results["decay"].ipc <= results["baseline"].ipc + 1e-9

    def test_sampling_collects(self):
        wl = get_workload("uniform", scale=SCALE)
        cfg = tiny_config()
        cfg = CMPConfig(
            n_cores=cfg.n_cores, core=cfg.core, l1=cfg.l1, l2=cfg.l2,
            memory=cfg.memory, technique=cfg.technique,
            sample_interval=5_000)
        res = simulate(cfg, wl)
        assert len(res.samples) > 0
        total_instr = sum(sum(s.core_instructions) for s in res.samples)
        assert total_instr == res.total_instructions
