"""SimResult aggregation: the paper-metric properties on synthetic stats."""

import pytest

from repro.sim.stats import (
    CoreStats,
    L1Stats,
    L2Stats,
    MemoryStats,
    SimResult,
)


def make_result(**overrides):
    res = SimResult(config_key="k", workload_name="w", total_cycles=1000,
                    n_lines_per_l2=100)
    res.l2 = [L2Stats(), L2Stats()]
    res.l1 = [L1Stats(), L1Stats()]
    res.cores = [CoreStats(), CoreStats()]
    res.memory = MemoryStats()
    for k, v in overrides.items():
        setattr(res, k, v)
    return res


class TestOccupancyDefinition:
    def test_paper_formula(self):
        res = make_result()
        res.l2[0].on_line_cycles = 50_000   # half of 100 lines x 1000 cyc
        res.l2[1].on_line_cycles = 100_000  # fully on
        assert res.occupancy == pytest.approx(0.75)

    def test_zero_guards(self):
        res = make_result(total_cycles=0)
        assert res.occupancy == 0.0
        assert SimResult("k", "w").occupancy == 0.0


class TestMissRate:
    def test_aggregate_over_caches(self):
        res = make_result()
        res.l2[0].reads, res.l2[0].read_misses = 80, 8
        res.l2[1].writes, res.l2[1].write_misses = 20, 2
        assert res.l2_miss_rate == pytest.approx(0.10)

    def test_no_accesses(self):
        assert make_result().l2_miss_rate == 0.0


class TestL2StatsDerived:
    def test_gated_total(self):
        s = L2Stats(gated_protocol=3, gated_decay_clean=4,
                    gated_decay_dirty=5)
        assert s.gated_total == 12

    def test_accesses(self):
        s = L2Stats(reads=7, writes=5)
        assert s.accesses == 12
        assert s.misses == 0


class TestL1StatsDerived:
    def test_amat(self):
        s = L1Stats(loads=10, load_latency_sum=50)
        assert s.amat == 5.0

    def test_load_miss_rate(self):
        s = L1Stats(loads=10, load_misses=2)
        assert s.load_miss_rate == pytest.approx(0.2)


class TestSystemMetrics:
    def test_ipc(self):
        res = make_result()
        res.cores[0].instructions = 1500
        res.cores[1].instructions = 500
        assert res.ipc == pytest.approx(2.0)

    def test_amat_weighted_by_loads(self):
        res = make_result()
        res.l1[0].loads, res.l1[0].load_latency_sum = 10, 100
        res.l1[1].loads, res.l1[1].load_latency_sum = 30, 60
        assert res.amat == pytest.approx(160 / 40)

    def test_memory_bytes_per_cycle(self):
        res = make_result()
        res.memory.bytes_read = 600
        res.memory.bytes_written = 400
        assert res.memory_bytes_per_cycle == pytest.approx(1.0)

    def test_core_stats_ipc(self):
        c = CoreStats(instructions=100, cycles=50)
        assert c.ipc == 2.0
        assert CoreStats().ipc == 0.0
