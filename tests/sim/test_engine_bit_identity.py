"""Bit-identity of the flat-array engine against the seed engine.

The struct-of-arrays rewrite (flat tag/state/stamp columns, fused
L1-hit/store fast paths, inlined decay bookkeeping) must be a pure
performance change: the metric blobs it writes into the result cache have
to be **byte-identical** to the ones the object-per-line seed engine
produced.  ``tests/golden/seed_engine_blobs.json`` pins the sha256 of
every raw cache blob for a smoke slice of ``specs/paper_matrix.toml``
(all 8 technique configs at one size, a second size, plus warmup
overrides), captured from the seed engine at the commit boundary.

If a deliberate semantic change ever invalidates these digests, recapture
them *from a trusted engine build* and bump
``repro.harness.runner.CACHE_VERSION`` in the same commit — the golden
file and the cache schema version must move together.
"""

import hashlib
import json
import os
from dataclasses import replace

import pytest

from repro.harness.runner import SweepRunner
from repro.harness.spec import load_spec

HERE = os.path.dirname(__file__)
GOLDEN_PATH = os.path.join(HERE, "..", "golden", "seed_engine_blobs.json")
SPEC_PATH = os.path.join(HERE, "..", "..", "specs", "paper_matrix.toml")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def make_runner(golden, tmp_path_factory, name):
    return SweepRunner(
        scale=golden["scale"],
        seed=golden["seed"],
        n_cores=golden["n_cores"],
        cache_dir=str(tmp_path_factory.mktemp(name) / "cache"),
        verbose=False,
    )


def blob_digest(runner, point):
    runner.run_point(point)
    key = runner.point_key(point)
    with open(runner.cache.path_for(key), "rb") as fh:
        return key, hashlib.sha256(fh.read()).hexdigest()


def matrix_slice(runner, workload, total_mb):
    """The paper-matrix points for one (workload, size) cell, all 8 techs."""
    spec = load_spec(SPEC_PATH)
    points = [
        p
        for p in runner.expand_spec(spec)
        if p.workload == workload and p.total_mb == total_mb
    ]
    assert len(points) == 8, "paper matrix must expand to 8 technique configs"
    return points


class TestBlobIdentity:
    def test_smoke_slice_all_techniques(self, golden, tmp_path_factory):
        """mpeg2enc @ 1MB across every technique config of the matrix."""
        runner = make_runner(golden, tmp_path_factory, "fast")
        produced = dict(
            blob_digest(runner, p) for p in matrix_slice(runner, "mpeg2enc", 1)
        )
        assert produced == golden["fast"]

    @pytest.mark.slow
    def test_second_size_and_warmup_overrides(self, golden, tmp_path_factory):
        """water_ns @ 2MB (all techniques) + warmup-0 override points."""
        runner = make_runner(golden, tmp_path_factory, "slow")
        points = matrix_slice(runner, "water_ns", 2)
        points += [
            replace(runner.point("mpeg2enc", 1, tech), warmup=0.0)
            for tech in ("protocol", "decay64K")
        ]
        produced = dict(blob_digest(runner, p) for p in points)
        assert produced == golden["slow"]
