"""CacheArray: lookup/install/evict machinery and integrity checks."""

import pytest

from repro.cache.array import INVALID, CacheArray
from repro.cache.geometry import CacheGeometry


def small_array(sets=4, assoc=2, line=64):
    return CacheArray(CacheGeometry(sets * assoc * line, line, assoc))


class TestProbeInstall:
    def test_probe_empty(self):
        a = small_array()
        assert a.probe(0x100) == -1

    def test_install_then_probe(self):
        a = small_array()
        frame = a.choose_victim(0x100)
        a.install(0x100, frame, state=1)
        assert a.probe(0x100) == frame
        assert a.tag_of(frame) == 0x100
        assert a.state_of(frame) == 1

    def test_install_evicts_old_tag(self):
        a = small_array(sets=1, assoc=1)
        f = a.choose_victim(0)
        a.install(0, f, 1)
        old = a.install(1, f, 2)
        assert old == (0, 1)
        assert a.probe(0) == -1
        assert a.probe(1) == f

    def test_same_set_different_tags(self):
        a = small_array(sets=4, assoc=2)
        # lines 0 and 4 map to set 0 (4 sets)
        f0 = a.choose_victim(0)
        a.install(0, f0, 1)
        f1 = a.choose_victim(4)
        a.install(4, f1, 1)
        assert f0 != f1
        assert a.set_of_frame(f0) == a.set_of_frame(f1) == 0

    def test_frame_index_roundtrip(self):
        a = small_array(sets=4, assoc=2)
        for s in range(4):
            for w in range(2):
                f = a.frame_index(s, w)
                assert a.set_of_frame(f) == s
                assert a.way_of_frame(f) == w


class TestVictimSelection:
    def test_prefers_empty_frame(self):
        a = small_array(sets=1, assoc=4)
        f = a.choose_victim(0)
        a.install(0, f, 1)
        v = a.choose_victim(1)
        assert a.tag_of(v) == -1  # empty preferred over LRU victim

    def test_lru_when_full(self):
        a = small_array(sets=1, assoc=2)
        f0 = a.choose_victim(0); a.install(0, f0, 1)
        f1 = a.choose_victim(1); a.install(1, f1, 1)
        a.lookup(0)  # make line 0 most recent
        v = a.choose_victim(2)
        assert a.tag_of(v) == 1

    def test_blocked_frames_skipped(self):
        a = small_array(sets=1, assoc=2)
        f0 = a.choose_victim(0); a.install(0, f0, 1)
        f1 = a.choose_victim(1); a.install(1, f1, 1)
        v = a.choose_victim(2, blocked=lambda f: f == f0)
        assert v == f1

    def test_all_blocked(self):
        a = small_array(sets=1, assoc=2)
        for n in range(2):
            f = a.choose_victim(n)
            a.install(n, f, 1)
        assert a.choose_victim(5, blocked=lambda f: True) == -1


class TestEvict:
    def test_evict_clears(self):
        a = small_array()
        f = a.choose_victim(0x42)
        a.install(0x42, f, 3)
        tag, state = a.evict(f)
        assert (tag, state) == (0x42, 3)
        assert a.probe(0x42) == -1
        assert a.state_of(f) == INVALID

    def test_evict_empty_frame(self):
        a = small_array()
        tag, state = a.evict(0)
        assert tag == -1

    def test_evicted_frame_becomes_preferred_victim(self):
        a = small_array(sets=1, assoc=4)
        for n in range(4):
            a.install(n, a.choose_victim(n), 1)
        a.evict(2)
        assert a.choose_victim(9) == 2


class TestIntrospection:
    def test_resident_lines(self):
        a = small_array(sets=2, assoc=2)
        a.install(0, a.choose_victim(0), 1)
        a.install(1, a.choose_victim(1), 2)
        resident = {(la, st) for _, la, st in a.resident_lines()}
        assert resident == {(0, 1), (1, 2)}

    def test_count_in_state(self):
        a = small_array(sets=2, assoc=2)
        a.install(0, a.choose_victim(0), 3)
        a.install(1, a.choose_victim(1), 3)
        a.install(2, a.choose_victim(2), 1)
        assert a.count_in_state(3) == 2
        assert a.count_in_state(1) == 1

    def test_integrity_clean(self):
        a = small_array()
        for n in range(6):
            f = a.choose_victim(n)
            a.install(n, f, 1)
        a.check_integrity()

    def test_integrity_detects_corruption(self):
        a = small_array()
        f = a.choose_victim(0)
        a.install(0, f, 1)
        a.tags[f] = 99  # corrupt behind the lookup's back
        with pytest.raises(AssertionError):
            a.check_integrity()


class TestSetStateDoesNotMoveTags:
    def test_set_state(self):
        a = small_array()
        f = a.choose_victim(7)
        a.install(7, f, 1)
        a.set_state(f, 4)
        assert a.state_of(f) == 4
        assert a.probe(7) == f
