"""Write buffer: coalescing FIFO semantics and the pending-write check."""

import pytest

from repro.cache.write_buffer import WriteBuffer


class TestInsertCoalesce:
    def test_insert(self):
        wb = WriteBuffer(4, drain_latency=3)
        assert not wb.insert(0x10, now=5)
        assert len(wb) == 1
        assert wb.head_ready_time() == 8

    def test_coalesce_same_line(self):
        wb = WriteBuffer(2, drain_latency=1)
        wb.insert(1, 0)
        assert wb.insert(1, 5)  # coalesced
        assert len(wb) == 1
        assert wb.stats.coalesced == 1
        assert wb.stats.inserts == 2

    def test_coalesce_does_not_extend_ready(self):
        wb = WriteBuffer(2, drain_latency=1)
        wb.insert(1, 0)
        wb.insert(1, 100)
        assert wb.head_ready_time() == 1  # original entry timing kept

    def test_full_and_can_accept(self):
        wb = WriteBuffer(2, drain_latency=1)
        wb.insert(1, 0)
        wb.insert(2, 0)
        assert wb.is_full()
        assert wb.can_accept(1)      # coalesce still possible
        assert not wb.can_accept(3)

    def test_insert_on_full_raises(self):
        wb = WriteBuffer(1, drain_latency=1)
        wb.insert(1, 0)
        with pytest.raises(RuntimeError):
            wb.insert(2, 0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)


class TestDrain:
    def test_pop_ready_fifo_order(self):
        wb = WriteBuffer(4, drain_latency=1)
        wb.insert(10, 0)
        wb.insert(20, 0)
        assert wb.pop_ready(100) == 10
        assert wb.pop_ready(100) == 20
        assert wb.pop_ready(100) == -1

    def test_pop_respects_ready_time(self):
        wb = WriteBuffer(4, drain_latency=10)
        wb.insert(10, 0)
        assert wb.pop_ready(5) == -1
        assert wb.pop_ready(10) == 10

    def test_head_ready_time_empty(self):
        assert WriteBuffer(2).head_ready_time() == -1

    def test_drain_stats(self):
        wb = WriteBuffer(4, drain_latency=0)
        wb.insert(1, 0)
        wb.pop_ready(0)
        assert wb.stats.drains == 1


class TestPendingWriteCheck:
    """Table I's 'if no pending write' condition."""

    def test_pending_while_buffered(self):
        wb = WriteBuffer(4, drain_latency=5)
        wb.insert(0x77, 0)
        assert wb.has_pending(0x77)
        assert not wb.has_pending(0x78)

    def test_not_pending_after_drain(self):
        wb = WriteBuffer(4, drain_latency=1)
        wb.insert(0x77, 0)
        wb.pop_ready(10)
        assert not wb.has_pending(0x77)

    def test_pending_lines_order(self):
        wb = WriteBuffer(4, drain_latency=1)
        wb.insert(3, 0)
        wb.insert(1, 0)
        wb.insert(2, 0)
        assert wb.pending_lines() == [3, 1, 2]

    def test_clear(self):
        wb = WriteBuffer(4)
        wb.insert(1, 0)
        wb.clear()
        assert len(wb) == 0
        assert not wb.has_pending(1)
