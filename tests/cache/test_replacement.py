"""Replacement policies: LRU exactness, PLRU behaviour, blocked victims."""

import pytest

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_last_way(self):
        p = LRUPolicy(4, 4)
        assert p.victim(0) == 3

    def test_access_promotes(self):
        p = LRUPolicy(1, 4)
        p.on_access(0, 3)
        assert p.victim(0) == 2
        assert p.recency_order(0)[0] == 3

    def test_victim_is_least_recent(self):
        p = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3, 0, 1):
            p.on_access(0, way)
        assert p.victim(0) == 2

    def test_invalidate_demotes(self):
        p = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            p.on_access(0, way)
        p.on_invalidate(0, 3)
        assert p.victim(0) == 3

    def test_blocked_victim_skipped(self):
        p = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            p.on_access(0, way)
        assert p.victim(0, blocked=lambda w: w == 0) == 1

    def test_all_blocked_returns_minus_one(self):
        p = LRUPolicy(1, 2)
        assert p.victim(0, blocked=lambda w: True) == -1

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.on_access(0, 1)
        assert p.victim(0) == 0
        assert p.victim(1) == 1

    def test_lru_sequence_matches_reference(self):
        # Reference model: list ordered by recency.
        import random

        rng = random.Random(7)
        p = LRUPolicy(1, 8)
        ref = list(range(8))  # LRU at position 0 is front=MRU? keep explicit
        order = list(range(8))  # index 0 = MRU
        for _ in range(500):
            w = rng.randrange(8)
            p.on_access(0, w)
            order.remove(w)
            order.insert(0, w)
            assert p.victim(0) == order[-1]


class TestTreePLRU:
    def test_requires_pow2(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(1, 3)

    def test_single_way(self):
        p = TreePLRUPolicy(1, 1)
        assert p.victim(0) == 0

    def test_victim_not_most_recent(self):
        p = TreePLRUPolicy(1, 4)
        for _ in range(20):
            v = p.victim(0)
            p.on_access(0, v)
            assert p.victim(0) != v

    def test_covers_all_ways_under_pressure(self):
        p = TreePLRUPolicy(1, 8)
        seen = set()
        for _ in range(8):
            v = p.victim(0)
            seen.add(v)
            p.on_access(0, v)
        # PLRU guarantees full coverage when always touching the victim
        assert seen == set(range(8))

    def test_blocked_fallback(self):
        p = TreePLRUPolicy(1, 4)
        v = p.victim(0, blocked=lambda w: w != 2)
        assert v == 2

    def test_invalidate_prefers_way(self):
        p = TreePLRUPolicy(1, 4)
        for w in range(4):
            p.on_access(0, w)
        p.on_invalidate(0, 1)
        assert p.victim(0) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=42)
        b = RandomPolicy(1, 8, seed=42)
        assert [a.victim(0) for _ in range(50)] == [b.victim(0) for _ in range(50)]

    def test_respects_blocked(self):
        p = RandomPolicy(1, 4, seed=1)
        for _ in range(50):
            assert p.victim(0, blocked=lambda w: w != 3) == 3

    def test_all_blocked(self):
        p = RandomPolicy(1, 4, seed=1)
        assert p.victim(0, blocked=lambda w: True) == -1


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_policy("lru", 2, 2), LRUPolicy)
        assert isinstance(make_policy("tree-plru", 2, 2), TreePLRUPolicy)
        assert isinstance(make_policy("random", 2, 2), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mru", 2, 2)
