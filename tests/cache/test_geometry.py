"""Cache geometry: address decomposition and validation."""

import pytest

from repro.cache.geometry import CacheGeometry, geometry_kb, is_pow2, log2_exact


class TestPow2Helpers:
    def test_is_pow2_accepts_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_is_pow2_rejects_non_powers(self):
        for x in (0, -1, -2, 3, 6, 12, 100):
            assert not is_pow2(x)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        assert log2_exact(1 << 20) == 20

    def test_log2_exact_rejects(self):
        with pytest.raises(ValueError):
            log2_exact(48)


class TestGeometryDerived:
    def test_basic_quantities(self):
        g = CacheGeometry(size_bytes=256 * 1024, line_bytes=64, assoc=8)
        assert g.n_lines == 4096
        assert g.n_sets == 512
        assert g.line_shift == 6
        assert g.index_bits == 9
        assert g.offset_bits == 6

    def test_fully_associative(self):
        g = CacheGeometry(size_bytes=4096, line_bytes=64, assoc=64)
        assert g.n_sets == 1
        assert g.set_mask == 0

    def test_direct_mapped(self):
        g = CacheGeometry(size_bytes=4096, line_bytes=64, assoc=1)
        assert g.n_sets == 64

    def test_geometry_kb_helper(self):
        g = geometry_kb(1024, line_bytes=64, assoc=8)
        assert g.size_bytes == 1024 * 1024


class TestAddressDecomposition:
    def test_line_addr(self):
        g = geometry_kb(16, 64, 4)
        assert g.line_addr(0) == 0
        assert g.line_addr(63) == 0
        assert g.line_addr(64) == 1
        assert g.line_addr(6400) == 100

    def test_set_index_wraps(self):
        g = geometry_kb(16, 64, 4)  # 64 sets
        assert g.set_index(0) == 0
        assert g.set_index(64 * 64) == 0  # one full wrap of the index
        assert g.set_index(64 * 65) == 1

    def test_set_index_of_line_consistent(self):
        g = geometry_kb(16, 64, 4)
        for addr in (0, 64, 1000, 12345, 1 << 30):
            assert g.set_index(addr) == g.set_index_of_line(g.line_addr(addr))

    def test_base_of_line_roundtrip(self):
        g = geometry_kb(16, 64, 4)
        for la in (0, 1, 77, 1 << 20):
            assert g.line_addr(g.base_of_line(la)) == la

    def test_same_line(self):
        g = geometry_kb(16, 64, 4)
        assert g.same_line(128, 190)
        assert not g.same_line(128, 192)

    def test_describe_mentions_sets(self):
        g = geometry_kb(256, 64, 8)
        assert "256KB" in g.describe()
        assert "512 sets" in g.describe()


class TestGeometryValidation:
    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024, line_bytes=48, assoc=2)

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, line_bytes=64, assoc=2)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=3 * 64 * 2, line_bytes=64, assoc=2)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024, line_bytes=64, assoc=0)
