"""MSHR file: allocation, merging, stalls, lazy release."""

import pytest

from repro.cache.mshr import MSHR


class TestAllocation:
    def test_allocate_and_len(self):
        m = MSHR(2)
        m.allocate(0x10, issue_time=0, complete_time=100, is_write=False)
        assert len(m) == 1
        assert not m.is_full()

    def test_full(self):
        m = MSHR(2)
        m.allocate(1, 0, 100, False)
        m.allocate(2, 0, 110, False)
        assert m.is_full()

    def test_allocate_on_full_raises(self):
        m = MSHR(1)
        m.allocate(1, 0, 100, False)
        with pytest.raises(RuntimeError):
            m.allocate(2, 0, 100, False)

    def test_duplicate_allocation_raises(self):
        m = MSHR(2)
        m.allocate(1, 0, 100, False)
        with pytest.raises(ValueError):
            m.allocate(1, 0, 200, False)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHR(0)


class TestMergeAndRelease:
    def test_outstanding_lookup(self):
        m = MSHR(2)
        e = m.allocate(5, 0, 50, False)
        assert m.outstanding(5) is e
        assert m.outstanding(6) is None

    def test_merge_counts(self):
        m = MSHR(2)
        m.allocate(5, 0, 50, False)
        m.merge(5)
        m.merge(5)
        assert m.outstanding(5).merged == 2
        assert m.stats.merges == 2

    def test_release_until_frees_completed(self):
        m = MSHR(4)
        m.allocate(1, 0, 50, False)
        m.allocate(2, 0, 80, False)
        freed = m.release_until(60)
        assert freed == 1
        assert m.outstanding(1) is None
        assert m.outstanding(2) is not None

    def test_release_boundary_inclusive(self):
        m = MSHR(1)
        m.allocate(1, 0, 50, False)
        assert m.release_until(50) == 1

    def test_earliest_completion(self):
        m = MSHR(4)
        m.allocate(1, 0, 90, False)
        m.allocate(2, 0, 40, False)
        assert m.earliest_completion() == 40

    def test_earliest_on_empty_raises(self):
        with pytest.raises(ValueError):
            MSHR(1).earliest_completion()


class TestStats:
    def test_peak_occupancy(self):
        m = MSHR(4)
        for i in range(3):
            m.allocate(i, 0, 100 + i, False)
        m.release_until(200)
        m.allocate(9, 0, 300, False)
        assert m.stats.peak_occupancy == 3

    def test_full_stall_accounting(self):
        m = MSHR(1)
        m.note_full_stall(12)
        assert m.stats.full_stalls == 1
        assert m.stats.full_stall_cycles == 12

    def test_entries_snapshot_and_clear(self):
        m = MSHR(2)
        m.allocate(1, 0, 10, True)
        assert len(m.entries()) == 1
        m.clear()
        assert len(m) == 0
