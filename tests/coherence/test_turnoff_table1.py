"""Table I (the turn-off legality matrix) and the TC/TD sequencer."""

import pytest

from repro.coherence.states import E, I, M, OFF, S, TC, TD
from repro.coherence.turnoff import (
    ALREADY_OFF,
    DEFERRED,
    DENIED_PENDING,
    DONE,
    IN_TRANSIENT,
    MULTIPROCESSOR_WT,
    ORGANISATIONS,
    UNIPROCESSOR_WB,
    UNIPROCESSOR_WT,
    TurnOffSequencer,
    decide,
    table_rows,
)


class TestTableI:
    """The six cells, verbatim from the paper."""

    def test_uni_wb_clean(self):
        d = decide(UNIPROCESSOR_WB, dirty=False)
        assert d.allowed and not d.needs_writeback
        assert not d.needs_upper_invalidate
        assert not d.requires_no_pending_write

    def test_uni_wb_dirty_writes_back(self):
        d = decide(UNIPROCESSOR_WB, dirty=True)
        assert d.allowed and d.needs_writeback
        assert not d.needs_upper_invalidate

    def test_uni_wt_clean_needs_no_pending_write(self):
        d = decide(UNIPROCESSOR_WT, dirty=False)
        assert d.allowed and d.requires_no_pending_write
        assert not d.needs_writeback

    def test_uni_wt_dirty(self):
        d = decide(UNIPROCESSOR_WT, dirty=True)
        assert d.allowed and d.requires_no_pending_write and d.needs_writeback

    def test_cmp_clean_invalidates_upper(self):
        d = decide(MULTIPROCESSOR_WT, dirty=False)
        assert d.allowed and d.needs_upper_invalidate
        assert d.requires_no_pending_write
        assert not d.needs_writeback

    def test_cmp_dirty_invalidates_upper_and_writes_back(self):
        d = decide(MULTIPROCESSOR_WT, dirty=True)
        assert d.allowed and d.needs_upper_invalidate and d.needs_writeback
        assert not d.requires_no_pending_write

    def test_all_cells_allow_turnoff(self):
        # Table I's point: a turn-off mechanism exists for every design.
        for org, dirty, d in table_rows():
            assert d.allowed, (org, dirty)

    def test_table_rows_covers_matrix(self):
        rows = table_rows()
        assert len(rows) == 6
        assert {org for org, _, _ in rows} == set(ORGANISATIONS)

    def test_unknown_organisation(self):
        with pytest.raises(ValueError):
            decide("smp-L1WB", dirty=False)

    def test_describe_mentions_conditions(self):
        assert "pending write" in decide(UNIPROCESSOR_WT, False).describe()
        assert "upper level" in decide(MULTIPROCESSOR_WT, True).describe()


class TestSequencerImmediate:
    """auto_grant=True — the timing simulator's mode."""

    @pytest.fixture
    def seq(self):
        return TurnOffSequencer()

    def test_modified_line(self, seq):
        state, r = seq.initiate(M)
        assert state == OFF and r.outcome == DONE
        assert r.invalidate_upper and r.writeback

    @pytest.mark.parametrize("start", [S, E])
    def test_clean_line(self, seq, start):
        state, r = seq.initiate(start)
        assert state == OFF and r.outcome == DONE
        assert r.invalidate_upper and not r.writeback

    def test_invalid_gates_for_free(self, seq):
        state, r = seq.initiate(I)
        assert state == OFF and r.outcome == DONE
        assert not r.invalidate_upper and not r.writeback

    def test_already_off(self, seq):
        state, r = seq.initiate(OFF)
        assert state == OFF and r.outcome == ALREADY_OFF

    @pytest.mark.parametrize("start", [S, E])
    def test_pending_write_denies_clean_gating(self, seq, start):
        state, r = seq.initiate(start, pending_write=True)
        assert state == start
        assert r.outcome == DENIED_PENDING

    def test_pending_write_does_not_block_dirty(self, seq):
        # The M case invalidates the L1 copy, intercepting the store.
        state, r = seq.initiate(M, pending_write=True)
        assert state == OFF and r.outcome == DONE

    @pytest.mark.parametrize("start", [TC, TD])
    def test_transient_defers(self, seq, start):
        state, r = seq.initiate(start)
        assert state == start and r.outcome == DEFERRED


class TestSequencerTwoPhase:
    """auto_grant=False — observable TC/TD parking."""

    @pytest.fixture
    def seq(self):
        return TurnOffSequencer()

    def test_m_parks_in_td(self, seq):
        state, r = seq.initiate(M, auto_grant=False)
        assert state == TD and r.outcome == IN_TRANSIENT
        assert r.invalidate_upper and r.writeback

    def test_s_parks_in_tc(self, seq):
        state, r = seq.initiate(S, auto_grant=False)
        assert state == TC and r.outcome == IN_TRANSIENT

    def test_grant_from_td(self, seq):
        state, _ = seq.initiate(M, auto_grant=False)
        final, r = seq.grant(state)
        assert final == OFF and r.outcome == DONE and r.writeback

    def test_grant_from_tc(self, seq):
        state, _ = seq.initiate(E, auto_grant=False)
        final, r = seq.grant(state)
        assert final == OFF and r.outcome == DONE

    def test_grant_rejects_stationary(self, seq):
        with pytest.raises(ValueError):
            seq.grant(M)

    def test_can_act_now(self, seq):
        assert all(seq.can_act_now(s) for s in (S, E, M, I, OFF))
        assert not any(seq.can_act_now(s) for s in (TC, TD))

    def test_gated_property(self, seq):
        _, r = seq.initiate(S)
        assert r.gated
        _, r = seq.initiate(S, pending_write=True)
        assert not r.gated
