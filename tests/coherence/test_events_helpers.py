"""Event/action helper coverage: names, masks, classifications."""

from repro.coherence.events import (
    A_FLUSH,
    A_GATE,
    A_INV_UPPER,
    A_NONE,
    A_WRITEBACK,
    BUS_FLUSH,
    BUS_RD,
    BUS_RDX,
    BUS_UPGR,
    BUS_WB,
    DATA_TXNS,
    MEMORY_TXNS,
    action_names,
    txn_name,
)


class TestTxnClassification:
    def test_names(self):
        assert txn_name(BUS_RD) == "BusRd"
        assert txn_name(BUS_RDX) == "BusRdX"
        assert txn_name(BUS_UPGR) == "BusUpgr"
        assert txn_name(BUS_WB) == "BusWB"
        assert txn_name(BUS_FLUSH) == "Flush"
        assert "?" in txn_name(99)

    def test_upgrade_is_address_only(self):
        assert BUS_UPGR not in DATA_TXNS

    def test_data_txns(self):
        assert {BUS_RD, BUS_RDX, BUS_WB, BUS_FLUSH} == set(DATA_TXNS)

    def test_flush_not_memory_txn(self):
        # cache-to-cache supply does not touch the external port by itself
        assert BUS_FLUSH not in MEMORY_TXNS
        assert BUS_WB in MEMORY_TXNS


class TestActionNames:
    def test_empty(self):
        assert action_names(A_NONE) == "-"

    def test_single(self):
        assert action_names(A_FLUSH) == "Flush"
        assert action_names(A_GATE) == "Gate"

    def test_combined(self):
        s = action_names(A_INV_UPPER | A_WRITEBACK)
        assert "InvUpp" in s and "WritebackMem" in s and "|" in s
